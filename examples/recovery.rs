//! Crash recovery: checkpoint the bounded auxiliary state mid-stream,
//! "crash", restore, and continue — producing exactly the reports an
//! uninterrupted checker would have produced.
//!
//! This is the operational payoff of the paper's space bound: the state a
//! real-time checker must persist to survive restarts is the current
//! database plus a few timestamps per live key, *not* the history.
//!
//! Run with: `cargo run --example recovery`

use std::sync::Arc;

use rtic::core::checkpoint::{restore, save};
use rtic::core::{Checker, EncodingOptions, IncrementalChecker};
use rtic::workload::Monitor;

fn main() {
    let spec = Monitor {
        steps: 100,
        sensors: 5,
        raise_rate: 0.12,
        ack_window: 4,
        violation_rate: 0.25,
        spike_rate: 0.0,
        seed: 17,
    };
    let generated = spec.generate();
    let constraint = generated.constraints[0].clone(); // unacked alarms
    println!("constraint: {constraint}");

    // Reference: an uninterrupted run.
    let mut reference =
        IncrementalChecker::new(constraint.clone(), Arc::clone(&generated.catalog)).unwrap();
    let reference_reports = reference.run(generated.transitions.clone()).unwrap();

    // Interrupted run: process half, checkpoint, drop the checker ("crash"),
    // restore from the text, continue.
    let half = generated.transitions.len() / 2;
    let mut first_half =
        IncrementalChecker::new(constraint.clone(), Arc::clone(&generated.catalog)).unwrap();
    let mut reports = first_half
        .run(generated.transitions[..half].to_vec())
        .unwrap();
    let checkpoint_text = save(&first_half);
    println!(
        "\ncheckpoint after {} transitions: {} bytes, {} lines \
         (the whole recoverable state)",
        half,
        checkpoint_text.len(),
        checkpoint_text.lines().count()
    );
    for line in checkpoint_text.lines().take(6) {
        println!("  {line}");
    }
    println!("  …");
    drop(first_half); // the crash

    let mut resumed = restore(
        constraint,
        Arc::clone(&generated.catalog),
        EncodingOptions::default(),
        &checkpoint_text,
    )
    .unwrap();
    reports.extend(resumed.run(generated.transitions[half..].to_vec()).unwrap());

    assert_eq!(
        reports, reference_reports,
        "resumed run must be indistinguishable from the uninterrupted one"
    );
    let violations: usize = reports.iter().map(|r| r.violation_count()).sum();
    println!(
        "\nresumed run matches the uninterrupted one: {} reports, {} violation witnesses",
        reports.len(),
        violations
    );
    println!("final space: {}", resumed.space());
}
