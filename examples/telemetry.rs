//! Instrumented run: the reservations workload checked with a metrics
//! registry attached, printing the space trajectory and a summary report.
//!
//! Run with: `cargo run --release --example telemetry`

use std::sync::Arc;

use rtic::core::observe::step_all;
use rtic::core::{Checker, IncrementalChecker, NaiveChecker};
use rtic::obs::{MetricsRegistry, SpaceSampler};
use rtic::workload::Reservations;

fn main() {
    let spec = Reservations {
        steps: 500,
        new_per_step: 3,
        deadline: 5,
        violation_rate: 0.04,
        seed: 7,
    };
    let generated = spec.generate();
    println!("workload:   {spec:?}");
    println!("constraint: {}", generated.constraints[0]);
    println!();

    // Same workload through both backends, each with its own registry, so
    // the trajectories can be compared side by side.
    let constraint = generated.constraints[0].clone();
    type Run = (&'static str, Vec<Box<dyn Checker>>, MetricsRegistry);
    let mut runs: Vec<Run> = vec![
        (
            "incremental",
            vec![Box::new(
                IncrementalChecker::new(constraint.clone(), Arc::clone(&generated.catalog))
                    .unwrap(),
            )],
            MetricsRegistry::new(),
        ),
        (
            "naive",
            vec![Box::new(
                NaiveChecker::new(constraint, Arc::clone(&generated.catalog)).unwrap(),
            )],
            MetricsRegistry::new(),
        ),
    ];

    for (_, checkers, registry) in &mut runs {
        let mut sampler = SpaceSampler::new(50);
        for (index, tr) in generated.transitions.iter().enumerate() {
            step_all(checkers, tr.time, &tr.update, registry).unwrap();
            sampler.after_step(checkers, tr.time, index as u64, registry);
        }
    }

    println!("space trajectory (retained units every 50 steps)");
    println!("{:>8}  {:>12}  {:>12}", "step", runs[0].0, runs[1].0);
    let samples: Vec<Vec<(u64, usize)>> = runs
        .iter()
        .map(|(_, checkers, registry)| {
            let _ = checkers;
            registry
                .to_json()
                .get("space_samples")
                .and_then(|s| s.as_arr().map(<[_]>::to_vec))
                .unwrap_or_default()
                .iter()
                .map(|row| {
                    (
                        row.get("step").and_then(|v| v.as_u64()).unwrap_or(0),
                        row.get("retained_units")
                            .and_then(|v| v.as_u64())
                            .unwrap_or(0) as usize,
                    )
                })
                .collect()
        })
        .collect();
    for (a, b) in samples[0].iter().zip(&samples[1]) {
        println!("{:>8}  {:>12}  {:>12}", a.0, a.1, b.1);
    }
    println!();
    println!(
        "incremental plateaus while naive grows with history — the paper's claim, measured live."
    );
    println!();

    for (name, _, registry) in &runs {
        println!(
            "[{name}] steps={} violations={} p95_step={:.1}us",
            registry.steps(),
            registry.violations(),
            registry.step_latency().quantile_us(0.95),
        );
    }
}
