//! Instrumented run: the reservations workload checked with a metrics
//! registry attached, printing the space trajectory, a summary report,
//! the per-plan-node profile (the library side of `rtic check
//! --profile`), and a Chrome trace viewable in Perfetto (the library
//! side of `--trace FILE --trace-format chrome`).
//!
//! Run with: `cargo run --release --example telemetry`

use std::sync::Arc;

use rtic::core::observe::{sample_plan_profiles, step_all};
use rtic::core::{explain, Checker, EncodingOptions, IncrementalChecker, NaiveChecker};
use rtic::obs::{ChromeTraceWriter, MetricsRegistry, SpaceSampler};
use rtic::workload::Reservations;

fn main() {
    let spec = Reservations {
        steps: 500,
        new_per_step: 3,
        deadline: 5,
        violation_rate: 0.04,
        seed: 7,
    };
    let generated = spec.generate();
    println!("workload:   {spec:?}");
    println!("constraint: {}", generated.constraints[0]);
    println!();

    // Same workload through both backends, each with its own registry, so
    // the trajectories can be compared side by side.
    let constraint = generated.constraints[0].clone();
    type Run = (&'static str, Vec<Box<dyn Checker>>, MetricsRegistry);
    // The incremental run carries plan-node profiling (the library side
    // of `rtic check --profile`): per-node inclusive time, cardinality,
    // and memo-cache counters, at a single branch of cost when disabled.
    let mut runs: Vec<Run> = vec![
        (
            "incremental",
            vec![Box::new(
                IncrementalChecker::with_options(
                    constraint.clone(),
                    Arc::clone(&generated.catalog),
                    EncodingOptions {
                        profile_plans: true,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )],
            MetricsRegistry::new(),
        ),
        (
            "naive",
            vec![Box::new(
                NaiveChecker::new(constraint, Arc::clone(&generated.catalog)).unwrap(),
            )],
            MetricsRegistry::new(),
        ),
    ];

    // The incremental run also streams to a Chrome trace: open the
    // written file in https://ui.perfetto.dev to see the step → dispatch
    // → eval span hierarchy plus a per-constraint plan-profile track.
    let trace_path = std::env::temp_dir().join("rtic-telemetry.trace.json");
    let mut chrome = Some(ChromeTraceWriter::to_file(&trace_path).unwrap());

    for (name, checkers, registry) in &mut runs {
        let mut sampler = SpaceSampler::new(50);
        for (index, tr) in generated.transitions.iter().enumerate() {
            if let Some(trace) = chrome.as_mut().filter(|_| *name == "incremental") {
                let mut both = rtic::obs::MultiObserver::new().with(registry);
                both.push(trace);
                step_all(checkers, tr.time, &tr.update, &mut both).unwrap();
                sampler.after_step(checkers, tr.time, index as u64, &mut both);
            } else {
                step_all(checkers, tr.time, &tr.update, registry).unwrap();
                sampler.after_step(checkers, tr.time, index as u64, registry);
            }
        }
        if *name == "incremental" {
            if let Some(trace) = chrome.as_mut() {
                // The accumulated profile becomes nested plan-node spans
                // on the trace's per-constraint track...
                sample_plan_profiles(checkers, trace);
            }
        }
    }
    if let Some(trace) = chrome.take() {
        trace.finish().unwrap();
    }

    println!("space trajectory (retained units every 50 steps)");
    println!("{:>8}  {:>12}  {:>12}", "step", runs[0].0, runs[1].0);
    let samples: Vec<Vec<(u64, usize)>> = runs
        .iter()
        .map(|(_, checkers, registry)| {
            let _ = checkers;
            registry
                .to_json()
                .get("space_samples")
                .and_then(|s| s.as_arr().map(<[_]>::to_vec))
                .unwrap_or_default()
                .iter()
                .map(|row| {
                    (
                        row.get("step").and_then(|v| v.as_u64()).unwrap_or(0),
                        row.get("retained_units")
                            .and_then(|v| v.as_u64())
                            .unwrap_or(0) as usize,
                    )
                })
                .collect()
        })
        .collect();
    for (a, b) in samples[0].iter().zip(&samples[1]) {
        println!("{:>8}  {:>12}  {:>12}", a.0, a.1, b.1);
    }
    println!();
    println!(
        "incremental plateaus while naive grows with history — the paper's claim, measured live."
    );
    println!();

    for (name, _, registry) in &runs {
        println!(
            "[{name}] steps={} violations={} p50_step={:.1}us p90_step={:.1}us p95_step={:.1}us",
            registry.steps(),
            registry.violations(),
            registry.step_latency().quantile_us(0.50),
            registry.step_latency().quantile_us(0.90),
            registry.step_latency().quantile_us(0.95),
        );
    }
    println!();

    // ...and is also renderable as the EXPLAIN-ANALYZE table `rtic check
    // --profile` prints: where the incremental checker's time went,
    // node by node.
    for checker in &runs[0].1 {
        if let Some(profile) = checker.plan_profile() {
            println!("plan-node profile of the incremental run:");
            print!("{}", explain::render_profile(&profile));
        }
    }
    println!();
    println!(
        "chrome trace written to {} — open it in https://ui.perfetto.dev",
        trace_path.display()
    );
}
