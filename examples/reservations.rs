//! The full reservations scenario: a generated workload with injected
//! violations, checked three ways (incremental / windowed / naive), with
//! space accounting that shows the paper's claim live.
//!
//! Run with: `cargo run --release --example reservations`

use std::sync::Arc;

use rtic::core::{Checker, IncrementalChecker, NaiveChecker, WindowedChecker};
use rtic::workload::Reservations;

fn main() {
    let spec = Reservations {
        steps: 500,
        new_per_step: 3,
        deadline: 5,
        violation_rate: 0.04,
        seed: 7,
    };
    let generated = spec.generate();
    println!("workload:   {spec:?}");
    println!("constraint: {}", generated.constraints[0]);
    println!("transitions: {}", generated.transitions.len());
    println!("injected violations: {}", generated.expected.len());
    println!();

    let constraint = generated.constraints[0].clone();
    let mut incremental =
        IncrementalChecker::new(constraint.clone(), Arc::clone(&generated.catalog)).unwrap();
    let mut windowed =
        WindowedChecker::new(constraint.clone(), Arc::clone(&generated.catalog)).unwrap();
    let mut naive = NaiveChecker::new(constraint, Arc::clone(&generated.catalog)).unwrap();

    let mut caught = 0usize;
    let mut first_detections = 0usize;
    let mut seen: std::collections::BTreeSet<Vec<rtic::relation::Value>> = Default::default();
    for tr in &generated.transitions {
        let a = incremental.step(tr.time, &tr.update).unwrap();
        let b = windowed.step(tr.time, &tr.update).unwrap();
        let c = naive.step(tr.time, &tr.update).unwrap();
        assert_eq!(a, b, "checkers disagree");
        assert_eq!(b, c, "checkers disagree");
        for row in a.violations.rows() {
            caught += 1;
            if seen.insert(row.values().to_vec()) {
                first_detections += 1;
            }
        }
    }
    for exp in &generated.expected {
        // Every injected violation was reported at its deadline: re-run a
        // fresh checker cheaply? No — we asserted reports agree; count check
        // below ties injections to detections.
        let _ = exp;
    }
    println!("violation reports (state × witness): {caught}");
    println!("distinct violating reservations:     {first_detections}");
    assert_eq!(
        first_detections,
        generated.expected.len(),
        "each injected violation detected exactly once as a fresh witness"
    );
    println!();
    println!("space after {} transitions:", generated.transitions.len());
    println!("  incremental: {}", incremental.space());
    println!("  windowed:    {}", windowed.space());
    println!("  naive:       {}", naive.space());
    println!();
    println!(
        "note how the naive checker retains {} states while the encoding keeps 1",
        naive.space().stored_states
    );
}
