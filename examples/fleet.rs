//! A constraint *fleet*: many constraints over one shared database, with
//! relevance dispatch deciding per step which constraints actually need
//! evaluation and optional worker threads stepping the affected slice.
//!
//! Run with: `cargo run --example fleet`

use std::sync::Arc;

use rtic::core::{ConstraintSet, Parallelism};
use rtic::relation::{tuple, Catalog, Schema, Sort, Update};
use rtic::temporal::parser::parse_constraint;
use rtic::temporal::TimePoint;

fn main() {
    // A building with badge readers, door sensors, and zone alarms. Each
    // constraint watches its own slice of the schema — most updates are
    // irrelevant to most constraints, which is what dispatch exploits.
    let catalog = Arc::new(
        Catalog::new()
            .with("checkin", Schema::of(&[("guest", Sort::Str)]))
            .unwrap()
            .with("checkout", Schema::of(&[("guest", Sort::Str)]))
            .unwrap()
            .with("keycard", Schema::of(&[("guest", Sort::Str)]))
            .unwrap()
            .with("alarm", Schema::of(&[("zone", Sort::Int)]))
            .unwrap()
            .with("reset", Schema::of(&[("zone", Sort::Int)]))
            .unwrap(),
    );

    let constraints = vec![
        // Nobody checks out who never checked in.
        parse_constraint("deny ghost_exit: checkout(g) && !once checkin(g)").unwrap(),
        // A keycard used 6+ ticks after check-in without a checkout.
        parse_constraint("deny lingering: keycard(g) && once[6,*] checkin(g) && !once checkout(g)")
            .unwrap(),
        // An alarm standing with no reset seen in the last 2 ticks.
        parse_constraint("deny unanswered: alarm(z) && !once[0,2] reset(z)").unwrap(),
    ];

    // `Parallelism::Auto` fans the affected slice out over one scoped
    // worker per core; reports stay in registration order either way.
    let mut fleet = ConstraintSet::new(constraints, Arc::clone(&catalog))
        .unwrap()
        .with_parallelism(Parallelism::Auto);
    println!(
        "fleet: {} constraints over one shared database\n",
        fleet.len()
    );

    let stream: Vec<(u64, Update)> = vec![
        (1, Update::new().with_insert("checkin", tuple!["ann"])),
        // Alarm traffic only — the guest constraints are quiescent here.
        (2, Update::new().with_insert("alarm", tuple![4])),
        (3, Update::new().with_insert("reset", tuple![4])),
        (4, Update::new().with_delete("alarm", tuple![4])),
        (5, Update::new()),
        // Bob checks out without ever checking in: ghost_exit fires.
        (6, Update::new().with_insert("checkout", tuple!["bob"])),
        (7, Update::new().with_delete("checkout", tuple!["bob"])),
        // Ann's keycard, 7 ticks after check-in, no checkout: lingering.
        (8, Update::new().with_insert("keycard", tuple!["ann"])),
        (9, Update::new().with_delete("keycard", tuple!["ann"])),
        (12, Update::new()),
    ];

    for (t, update) in stream {
        let reports = fleet.step(TimePoint(t), &update).unwrap();
        print!("@{t}:");
        let mut clean = true;
        for r in &reports {
            if !r.ok() {
                print!(" [{}: {}]", r.constraint, r.violations);
                clean = false;
            }
        }
        println!("{}", if clean { " ok" } else { "" });
    }

    // How much evaluation did relevance dispatch actually save?
    let d = fleet.dispatch_stats();
    println!(
        "\ndispatch: {} engine-steps — {} affected, {} absorbed as quiescent \
         ticks, {} quiescent but fully evaluated",
        d.total(),
        d.affected,
        d.skipped,
        d.quiescent_full,
    );
    println!("shared-state space: {}", fleet.space());
}
