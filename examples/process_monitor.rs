//! Process monitoring: the "real-time" reading of the title. Two
//! constraints run side by side over one event stream — alarms must be
//! acknowledged within a window (`hist` + negated `once`), and sensor
//! readings must not spike (`prev` + order comparison).
//!
//! Run with: `cargo run --example process_monitor`

use std::sync::Arc;

use rtic::core::{Checker, IncrementalChecker};
use rtic::temporal::{analysis, Horizon};
use rtic::workload::Monitor;

fn main() {
    let spec = Monitor {
        steps: 150,
        sensors: 8,
        raise_rate: 0.1,
        ack_window: 4,
        violation_rate: 0.15,
        spike_rate: 0.03,
        seed: 11,
    };
    let generated = spec.generate();

    let mut checkers: Vec<IncrementalChecker> = generated
        .constraints
        .iter()
        .map(|c| {
            let body = c.denial_body();
            println!(
                "constraint {} (horizon {:?}): {}",
                c.name,
                match analysis::horizon(&body) {
                    Horizon::Finite(d) => format!("{d} ticks"),
                    Horizon::Unbounded => "unbounded".into(),
                },
                c
            );
            IncrementalChecker::new(c.clone(), Arc::clone(&generated.catalog)).unwrap()
        })
        .collect();
    println!();

    let mut unacked = 0usize;
    let mut spikes = 0usize;
    for tr in &generated.transitions {
        for checker in &mut checkers {
            let report = checker.step(tr.time, &tr.update).unwrap();
            if !report.ok() {
                match report.constraint.as_str() {
                    "unacked" => {
                        unacked += report.violation_count();
                        if unacked <= 4 {
                            println!("  {report}");
                        }
                    }
                    "spike" => {
                        spikes += report.violation_count();
                        if spikes <= 4 {
                            println!("  {report}");
                        }
                    }
                    other => unreachable!("unknown constraint {other}"),
                }
            }
        }
    }
    println!();
    println!("unacked-alarm reports: {unacked}");
    println!("spike reports:         {spikes}");
    println!("injected violations:   {}", generated.expected.len());
    for (i, checker) in checkers.iter().enumerate() {
        println!(
            "space[{}]: {}",
            generated.constraints[i].name,
            checker.space()
        );
    }
}
