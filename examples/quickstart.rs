//! Quickstart: declare a schema, write a real-time constraint, feed a tiny
//! history, watch the violation fire at the deadline.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use rtic::core::{Checker, IncrementalChecker};
use rtic::relation::{tuple, Catalog, Schema, Sort, Update};
use rtic::temporal::parser::parse_constraint;
use rtic::temporal::TimePoint;

fn main() {
    // 1. The schema: reservations and confirmations.
    let catalog = Arc::new(
        Catalog::new()
            .with(
                "reserved",
                Schema::of(&[("passenger", Sort::Str), ("flight", Sort::Int)]),
            )
            .unwrap()
            .with(
                "confirmed",
                Schema::of(&[("passenger", Sort::Str), ("flight", Sort::Int)]),
            )
            .unwrap(),
    );

    // 2. The paper's motivating constraint: a reservation still held two or
    //    more days after it was made must have been confirmed.
    let constraint = parse_constraint(
        "deny unconfirmed: reserved(p, f) && once[2,*] reserved(p, f) \
         && !once confirmed(p, f)",
    )
    .unwrap();
    println!("constraint: {constraint}");

    // 3. The checker holds only the current state + bounded aux state.
    let mut checker = IncrementalChecker::new(constraint, catalog).unwrap();

    // 4. Drive a little history: Ann reserves on day 0, Bob on day 1; Bob
    //    confirms on day 2, Ann never does.
    let days: Vec<(u64, Update)> = vec![
        (0, Update::new().with_insert("reserved", tuple!["ann", 17])),
        (1, Update::new().with_insert("reserved", tuple!["bob", 99])),
        (2, Update::new().with_insert("confirmed", tuple!["bob", 99])),
        (3, Update::new()),
        (4, Update::new()),
    ];

    for (day, update) in days {
        let report = checker.step(TimePoint(day), &update).unwrap();
        println!("  {report}");
        if day == 2 {
            assert_eq!(
                report.violation_count(),
                1,
                "Ann's reservation turns two days old unconfirmed on day 2"
            );
        }
    }

    // 5. Space: one current state plus a few timestamps — no history.
    println!("space: {}", checker.space());
}
