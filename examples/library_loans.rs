//! Library loans with `since`: a book must come back within the loan
//! period. Also demonstrates the text log format and the trigger-engine
//! checker.
//!
//! Run with: `cargo run --example library_loans`

use std::sync::Arc;

use rtic::active::ActiveChecker;
use rtic::core::{Checker, IncrementalChecker};
use rtic::history::log::{format_log, parse_log};
use rtic::workload::Library;

fn main() {
    let spec = Library {
        steps: 120,
        checkouts_per_step: 2,
        period: 7,
        violation_rate: 0.08,
        late_by: 2,
        seed: 3,
    };
    let generated = spec.generate();
    println!("constraint: {}", generated.constraints[0]);

    // Round-trip the workload through the text log format, as a deployment
    // would (the checker consumes a change log, not a live connection).
    let text = format_log(&generated.transitions);
    println!(
        "log: {} transitions, {} bytes; first lines:",
        generated.transitions.len(),
        text.len()
    );
    for line in text.lines().take(3) {
        println!("  {line}");
    }
    let replayed = parse_log(&text).unwrap();
    assert_eq!(replayed, generated.transitions, "log format round-trips");

    // Check with the direct encoding and with the trigger engine.
    let constraint = generated.constraints[0].clone();
    let mut direct =
        IncrementalChecker::new(constraint.clone(), Arc::clone(&generated.catalog)).unwrap();
    let mut triggers = ActiveChecker::new(constraint, Arc::clone(&generated.catalog)).unwrap();

    println!("\ninstalled ECA rules:");
    for rule in triggers.rules() {
        println!("  {rule}");
    }
    println!();

    let mut overdue_reports = 0usize;
    for tr in &replayed {
        let a = direct.step(tr.time, &tr.update).unwrap();
        let b = triggers.step(tr.time, &tr.update).unwrap();
        assert_eq!(a, b, "trigger engine diverged from the direct checker");
        if !a.ok() {
            overdue_reports += 1;
            if overdue_reports <= 5 {
                println!("  {a}");
            }
        }
    }
    println!("  … {overdue_reports} overdue states in total");
    println!("\ninjected late returns: {}", generated.expected.len());
    println!("direct checker space:  {}", direct.space());
    println!("trigger tables space:  {}", triggers.space());
}
