//! Standing temporal queries: the same bounded encoding, read as *answers*
//! instead of violations, plus several constraints sharing one database
//! through a `ConstraintSet`.
//!
//! Run with: `cargo run --example standing_query`

use std::sync::Arc;

use rtic::core::{ConstraintSet, QueryMonitor};
use rtic::relation::{tuple, Catalog, Schema, Sort, Update};
use rtic::temporal::parser::{parse_constraint, parse_formula};
use rtic::temporal::TimePoint;

fn main() {
    let catalog = Arc::new(
        Catalog::new()
            .with(
                "order",
                Schema::of(&[("id", Sort::Int), ("who", Sort::Str)]),
            )
            .unwrap()
            .with("shipped", Schema::of(&[("id", Sort::Int)]))
            .unwrap()
            .with("paid", Schema::of(&[("id", Sort::Int)]))
            .unwrap(),
    );

    // A standing query: which open orders shipped within the last 3 ticks?
    let query = parse_formula("order(id, who) && once[0,3] shipped(id)").unwrap();
    let mut recent_shipments =
        QueryMonitor::new("recent_shipments", query, Arc::clone(&catalog)).unwrap();
    println!(
        "standing query columns: {:?}",
        recent_shipments
            .answer_vars()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );

    // Two constraints checked together over ONE shared state copy.
    let mut constraints = ConstraintSet::new(
        vec![
            parse_constraint("assert pay_before_ship: shipped(id) -> once paid(id)").unwrap(),
            parse_constraint(
                "deny stuck: order(id, who) && once[5,*] order(id, who) && !once shipped(id)",
            )
            .unwrap(),
        ],
        Arc::clone(&catalog),
    )
    .unwrap();
    println!(
        "constraint set: {} constraints over one shared state\n",
        constraints.len()
    );

    // `shipped`/`paid` are transient events (retracted the next day), so
    // the once[0,3] window genuinely ages them out.
    let days: Vec<(u64, Update)> = vec![
        (
            1,
            Update::new()
                .with_insert("order", tuple![1, "ann"])
                .with_insert("paid", tuple![1]),
        ),
        (
            2,
            Update::new()
                .with_insert("shipped", tuple![1])
                .with_delete("paid", tuple![1]),
        ),
        (
            3,
            Update::new()
                .with_insert("order", tuple![2, "bob"])
                .with_delete("shipped", tuple![1]),
        ),
        // Order 2 ships on day 4 WITHOUT payment: pay_before_ship fires.
        (4, Update::new().with_insert("shipped", tuple![2])),
        (5, Update::new().with_delete("shipped", tuple![2])),
        (6, Update::new()),
        (7, Update::new().with_insert("order", tuple![3, "cal"])),
        (8, Update::new()),
        (12, Update::new()),
        // Order 3 is 5+ old and never shipped: stuck fires.
    ];

    for (day, update) in days {
        let answers = recent_shipments.step(TimePoint(day), &update).unwrap();
        let reports = constraints.step(TimePoint(day), &update).unwrap();
        print!("@{day}: query answers = {}", answers.len());
        for r in &reports {
            if !r.ok() {
                print!("  [{}: {}]", r.constraint, r.violations);
            }
        }
        println!();
    }
    println!("\nshared-state space: {}", constraints.space());
    println!("query monitor space: {}", recent_shipments.space());
}
