//! Offline stand-in for the `smallvec` crate.
//!
//! The rtic build environment cannot reach a registry, so this crate
//! vendors the subset rtic-relation needs: a fixed-inline-capacity
//! sequence of `Copy` elements that stores up to `N` values without a
//! heap allocation and spills longer sequences to a boxed slice. The API
//! is deliberately tiny (construction + slice views) because tuples are
//! immutable once built; it is not a drop-in for the real crate.
//!
//! Written without `unsafe`: the inline buffer is a plain `[T; N]` seeded
//! from the first element, so `T: Copy` is required (which is all rtic
//! stores — `Value` is `Copy`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

/// A sequence of `Copy` elements with inline capacity `N`.
///
/// Sequences of length ≤ `N` live entirely inline (no allocation); longer
/// ones are stored as a boxed slice. All comparison, hashing and ordering
/// behave exactly like the equivalent `&[T]` — representation never leaks
/// into semantics.
pub struct SmallVec<T: Copy, const N: usize>(Repr<T, N>);

enum Repr<T: Copy, const N: usize> {
    /// `len` live elements at the front of `buf`; trailing slots hold
    /// copies of earlier elements and are never read.
    Inline { len: u8, buf: [T; N] },
    /// The spilled (or empty) form. An empty boxed slice does not
    /// allocate, so the empty sequence is still allocation-free.
    Heap(Box<[T]>),
}

impl<T: Copy, const N: usize> SmallVec<T, N> {
    /// The empty sequence (allocation-free).
    pub fn new() -> SmallVec<T, N> {
        SmallVec(Repr::Heap(Vec::new().into_boxed_slice()))
    }

    /// Builds from a slice, inline when it fits.
    pub fn from_slice(s: &[T]) -> SmallVec<T, N> {
        s.iter().copied().collect()
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements are stored inline (diagnostics/tests only).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl<T: Copy, const N: usize> Default for SmallVec<T, N> {
    fn default() -> SmallVec<T, N> {
        SmallVec::new()
    }
}

impl<T: Copy, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallVec<T, N> {
        let mut it = iter.into_iter();
        let Some(first) = it.next() else {
            return SmallVec::new();
        };
        // Seed every slot with the first element so no slot is ever
        // uninitialized — unused trailing slots are simply never read.
        let mut buf = [first; N];
        let mut len = 1usize;
        loop {
            let Some(v) = it.next() else {
                return if N == 0 {
                    // Capacity 0: even one element must spill.
                    SmallVec(Repr::Heap(vec![first].into_boxed_slice()))
                } else {
                    SmallVec(Repr::Inline {
                        len: len as u8,
                        buf,
                    })
                };
            };
            if len < N {
                buf[len] = v;
                len += 1;
            } else {
                let mut spill = Vec::with_capacity(len + 1 + it.size_hint().0);
                if N == 0 {
                    // `buf` has no slots; the only buffered element is `first`.
                    spill.push(first);
                } else {
                    spill.extend_from_slice(&buf[..len]);
                }
                spill.push(v);
                spill.extend(it);
                return SmallVec(Repr::Heap(spill.into_boxed_slice()));
            }
        }
    }
}

impl<T: Copy, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> SmallVec<T, N> {
        match &self.0 {
            Repr::Inline { len, buf } => SmallVec(Repr::Inline {
                len: *len,
                buf: *buf,
            }),
            Repr::Heap(b) => SmallVec(Repr::Heap(b.clone())),
        }
    }
}

impl<T: Copy, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + PartialOrd, const N: usize> PartialOrd for SmallVec<T, N> {
    fn partial_cmp(&self, other: &SmallVec<T, N>) -> Option<Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Copy + Ord, const N: usize> Ord for SmallVec<T, N> {
    fn cmp(&self, other: &SmallVec<T, N>) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Copy + Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash exactly like the equivalent slice (length-prefixed), so
        // representation (inline vs heap) never affects the hash.
        self.as_slice().hash(state);
    }
}

impl<T: Copy + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn sv(vals: &[i64]) -> SmallVec<i64, 4> {
        SmallVec::from_slice(vals)
    }

    #[test]
    fn short_sequences_stay_inline() {
        for n in 0..=4usize {
            let vals: Vec<i64> = (0..n as i64).collect();
            let s = sv(&vals);
            assert_eq!(s.as_slice(), &vals[..]);
            assert_eq!(s.is_inline(), n > 0, "len {n}");
        }
    }

    #[test]
    fn long_sequences_spill() {
        let vals: Vec<i64> = (0..9).collect();
        let s = sv(&vals);
        assert!(!s.is_inline());
        assert_eq!(s.as_slice(), &vals[..]);
    }

    #[test]
    fn equality_and_order_ignore_representation() {
        assert_eq!(sv(&[1, 2]), sv(&[1, 2]));
        assert!(sv(&[1]) < sv(&[1, 0]), "shorter prefix sorts first");
        assert!(sv(&[1, 2]) < sv(&[1, 3]));
        let spilled: SmallVec<i64, 1> = [1, 2].into_iter().collect();
        let inline: SmallVec<i64, 4> = [1, 2].into_iter().collect();
        assert_eq!(spilled.as_slice(), inline.as_slice());
    }

    #[test]
    fn hash_matches_the_slice_hash() {
        let hash_of = |s: &dyn Fn(&mut DefaultHasher)| {
            let mut h = DefaultHasher::new();
            s(&mut h);
            std::hash::Hasher::finish(&h)
        };
        let inline = sv(&[7, 8]);
        let slice: &[i64] = &[7, 8];
        assert_eq!(
            hash_of(&|h| inline.hash(h)),
            hash_of(&|h| slice.hash(h)),
            "inline hash must equal slice hash"
        );
    }

    #[test]
    fn zero_capacity_always_spills() {
        let s: SmallVec<i64, 0> = [5, 6].into_iter().collect();
        assert!(!s.is_inline());
        assert_eq!(s.as_slice(), &[5, 6]);
        let one: SmallVec<i64, 0> = [5].into_iter().collect();
        assert_eq!(one.as_slice(), &[5]);
    }

    #[test]
    fn empty_is_default() {
        let s: SmallVec<i64, 4> = SmallVec::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
