//! Test-loop configuration.

/// How many cases each `proptest!` test runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Requested case count (before the `PROPTEST_CASES` env override).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The effective case count: `PROPTEST_CASES` wins when set.
    pub fn resolved_cases(&self) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases as u64)
    }
}
