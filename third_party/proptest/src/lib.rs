//! Offline stand-in for the `proptest` crate.
//!
//! The rtic build environment cannot reach a registry, so this crate
//! vendors the subset of proptest 1.x that the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` / `prop_recursive`
//! / `boxed`, range and tuple strategies, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], [`string::string_regex`], the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Semantics: each `proptest!` test runs `cases` deterministic random
//! samples (seeded per case, overridable via `PROPTEST_CASES`). Failures
//! panic with the case number; there is **no shrinking** — rerun with the
//! printed case seed context to debug. That is a weaker debugging story
//! than real proptest but the same detection power per case.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one test case: seeded from the case index plus an
    /// optional `PROPTEST_SEED` environment override.
    pub fn for_case(case: u64) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_u64);
        TestRng {
            state: base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (panics on `n = 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            for case in 0..cases {
                let mut __rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let run = || $body;
                run();
            }
        }
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..5, 1i64..4), v in any::<bool>()) {
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&b));
            let _ = v;
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![Just("x"), Just("y")].prop_map(str::to_owned)) {
            prop_assert!(s == "x" || s == "y", "got {}", s);
        }

        #[test]
        fn vectors_respect_sizes(v in crate::collection::vec(0u8..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::for_case(1);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 4, "depth bound respected: {t:?}");
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion does fire");
    }
}
