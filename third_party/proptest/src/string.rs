//! Regex-shaped string generation (`proptest::string::string_regex`).
//!
//! Supports the regex dialect the rtic tests actually use: literals,
//! escapes (`\n`, `\t`, `\\`, `\PC` for "printable character", and
//! escaped metacharacters), character classes `[a-z0-9_]` with ranges and
//! escapes, `(...)` groups with `|` alternation, and the quantifiers `*`,
//! `+`, `?`, `{n}`, `{n,m}`. Unbounded repetition is capped at 8.

use crate::strategy::Strategy;
use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

/// Errors from [`string_regex`] on unsupported or malformed patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad string_regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A strategy generating strings matching `pattern`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.push('\0'); // sentinel simplifies lookahead
    let mut p = Parser { chars, pos: 0 };
    let node = p.alternation()?;
    if p.peek() != '\0' {
        return Err(Error(format!("trailing input at {}", p.pos)));
    }
    Ok(RegexGeneratorStrategy { node })
}

/// Samples `pattern` directly (used by the `&str` strategy impl), panicking
/// on malformed patterns since those are compile-time literals in tests.
pub(crate) fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let strat =
        string_regex(pattern).unwrap_or_else(|e| panic!("invalid strategy regex {pattern:?}: {e}"));
    strat.sample(rng)
}

/// The result of [`string_regex`].
#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    node: Node,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(&self.node, rng, &mut out);
        out
    }
}

#[derive(Clone, Debug)]
enum Node {
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// `a|b|c` alternation.
    Alt(Vec<Node>),
    /// One literal character.
    Lit(char),
    /// A set of candidate characters (from a class or `\PC`).
    Class(Vec<char>),
    /// `inner{lo,hi}` (and the sugar `*` `+` `?`).
    Repeat(Box<Node>, u32, u32),
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(parts) => parts.iter().for_each(|p| emit(p, rng, out)),
        Node::Alt(arms) => emit(&arms[rng.below(arms.len())], rng, out),
        Node::Lit(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.below(set.len())]),
        Node::Repeat(inner, lo, hi) => {
            let n = *lo + (rng.next_u64() % (*hi - *lo + 1) as u64) as u32;
            (0..n).for_each(|_| emit(inner, rng, out));
        }
    }
}

/// ASCII printable characters, the expansion of `\PC`.
fn printable() -> Vec<char> {
    (0x20u8..0x7f).map(char::from).collect()
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> char {
        self.chars[self.pos]
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        if c != '\0' {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Node, Error> {
        let mut arms = vec![self.sequence()?];
        while self.peek() == '|' {
            self.bump();
            arms.push(self.sequence()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Node::Alt(arms)
        })
    }

    fn sequence(&mut self) -> Result<Node, Error> {
        let mut parts = Vec::new();
        while !matches!(self.peek(), '\0' | '|' | ')') {
            parts.push(self.quantified()?);
        }
        Ok(Node::Seq(parts))
    }

    fn quantified(&mut self) -> Result<Node, Error> {
        let atom = self.atom()?;
        let (lo, hi) = match self.peek() {
            '*' => {
                self.bump();
                (0, UNBOUNDED_CAP)
            }
            '+' => {
                self.bump();
                (1, UNBOUNDED_CAP)
            }
            '?' => {
                self.bump();
                (0, 1)
            }
            '{' => {
                self.bump();
                self.counted_repeat()?
            }
            _ => return Ok(atom),
        };
        Ok(Node::Repeat(Box::new(atom), lo, hi))
    }

    fn counted_repeat(&mut self) -> Result<(u32, u32), Error> {
        let lo = self.number()?;
        let hi = match self.bump() {
            '}' => return Ok((lo, lo)),
            ',' => self.number()?,
            c => return Err(Error(format!("expected , or }} in repeat, got {c:?}"))),
        };
        match self.bump() {
            '}' => {
                if lo > hi {
                    return Err(Error(format!("bad repeat bounds {{{lo},{hi}}}")));
                }
                Ok((lo, hi))
            }
            c => Err(Error(format!("expected }} after repeat, got {c:?}"))),
        }
    }

    fn number(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.pos == start {
            return Err(Error(format!("expected number at {}", start)));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map_err(|_| Error(format!("bad repeat count {text:?}")))
    }

    fn atom(&mut self) -> Result<Node, Error> {
        match self.bump() {
            '(' => {
                let inner = self.alternation()?;
                match self.bump() {
                    ')' => Ok(inner),
                    c => Err(Error(format!("expected ) got {c:?}"))),
                }
            }
            '[' => self.class(),
            '\\' => Ok(self.escape()?),
            '.' => Ok(Node::Class(printable())),
            '\0' => Err(Error("unexpected end of pattern".into())),
            c @ ('*' | '+' | '?' | '{') => Err(Error(format!("dangling quantifier {c:?}"))),
            c => Ok(Node::Lit(c)),
        }
    }

    fn escape(&mut self) -> Result<Node, Error> {
        match self.bump() {
            'n' => Ok(Node::Lit('\n')),
            't' => Ok(Node::Lit('\t')),
            'r' => Ok(Node::Lit('\r')),
            'P' | 'p' => {
                // Only the `\PC` / `\pC` ("printable"/"any letter-ish")
                // unicode classes appear in rtic tests; generate ASCII
                // printable for both.
                match self.bump() {
                    'C' | 'L' => Ok(Node::Class(printable())),
                    c => Err(Error(format!("unsupported unicode class \\P{c}"))),
                }
            }
            '\0' => Err(Error("dangling backslash".into())),
            c => Ok(Node::Lit(c)), // escaped metacharacter: \( \| \" \. ...
        }
    }

    fn class(&mut self) -> Result<Node, Error> {
        let mut set = Vec::new();
        if self.peek() == '^' {
            return Err(Error("negated classes unsupported".into()));
        }
        loop {
            let c = match self.bump() {
                ']' => break,
                '\0' => return Err(Error("unterminated character class".into())),
                '\\' => match self.bump() {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '\0' => return Err(Error("dangling backslash in class".into())),
                    e => e,
                },
                c => c,
            };
            if self.peek() == '-' && self.chars[self.pos + 1] != ']' {
                self.bump(); // the dash
                let hi = match self.bump() {
                    '\0' => return Err(Error("unterminated range in class".into())),
                    h => h,
                };
                if (hi as u32) < (c as u32) {
                    return Err(Error(format!("bad class range {c}-{hi}")));
                }
                (c as u32..=hi as u32)
                    .filter_map(char::from_u32)
                    .for_each(|ch| set.push(ch));
            } else {
                set.push(c);
            }
        }
        if set.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(Node::Class(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let strat = string_regex(pattern).expect(pattern);
        let mut rng = TestRng::for_case(11);
        (0..n).map(|_| strat.sample(&mut rng)).collect()
    }

    #[test]
    fn identifier_pattern() {
        for s in samples("[a-z_][a-z0-9_]{0,6}", 200) {
            assert!((1..=7).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            let head = cs.next().unwrap();
            assert!(head.is_ascii_lowercase() || head == '_', "bad head: {s:?}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad tail: {s:?}"
            );
        }
    }

    #[test]
    fn class_with_escapes_and_punct() {
        for s in samples("[a-z\"\\n ,()@|#0-9]{0,12}", 200) {
            assert!(s.len() <= 12);
            assert!(
                s.chars().all(|c| {
                    c.is_ascii_lowercase() || c.is_ascii_digit() || "\"\n ,()@|#".contains(c)
                }),
                "unexpected char in {s:?}"
            );
        }
    }

    #[test]
    fn alternation_with_escaped_metachars() {
        let pat = "(once|hist|prev|since|exists|deny|\\(|\\)|\\[|\\]|[a-z]|[0-9]|,|\\.|&&|\\|\\||!|<|=|\"| )*";
        for s in samples(pat, 100) {
            // Every sample decomposes into the allowed tokens; spot-check
            // that only expected characters appear.
            assert!(
                s.chars().all(|c| {
                    c.is_ascii_lowercase() || c.is_ascii_digit() || "()[],.&|!<=\" ".contains(c)
                }),
                "unexpected char in {s:?}"
            );
        }
    }

    #[test]
    fn printable_class() {
        for s in samples("\\PC*", 100) {
            assert!(
                s.chars().all(|c| (' '..='~').contains(&c)),
                "bad char in {s:?}"
            );
        }
    }

    #[test]
    fn quantifiers_and_groups() {
        for s in samples("a+b?(cd){2,3}", 100) {
            assert!(s.starts_with('a'));
            let rest = s.trim_start_matches('a');
            let rest = rest.strip_prefix('b').unwrap_or(rest);
            assert!(rest == "cdcd" || rest == "cdcdcd", "bad tail in {s:?}");
        }
    }

    #[test]
    fn malformed_patterns_error() {
        assert!(string_regex("[z-a]").is_err());
        assert!(string_regex("(ab").is_err());
        assert!(string_regex("a{3,1}").is_err());
        assert!(string_regex("*a").is_err());
        assert!(string_regex("[^a]").is_err());
    }
}
