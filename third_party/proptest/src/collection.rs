//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// A length range for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// `Vec` strategy: each element drawn from `element`, length from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_exclusive - self.size.lo;
        let len = self.size.lo + rng.below(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
