//! Value-generation strategies: the composable core of the stub.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// sampler. Combinators take `Self: Sized` so the bare trait stays
/// object-safe for [`BoxedStrategy`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into one more layer, applied up to `depth`
    /// times. The `_desired_size` / `_expected_branch_size` hints from the
    /// real API are accepted but unused — depth alone bounds growth here.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            // Bias toward leaves so expected size stays bounded even
            // though every branch arm recurses.
            cur = Union::new(vec![cur.clone(), cur.clone(), branch(cur).boxed()]).boxed();
        }
        cur
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among several strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// A `&str` literal is a regex strategy, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
