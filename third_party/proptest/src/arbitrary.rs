//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy's concrete type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for the type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain sampler for one primitive, with edge-case bias for ints.
#[derive(Clone, Copy, Debug)]
pub struct PrimitiveAny<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Strategy for PrimitiveAny<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Mix raw bits with boundary values so extremes show up
                // far more often than uniform sampling would produce.
                match rng.next_u64() % 8 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
        impl Arbitrary for $t {
            type Strategy = PrimitiveAny<$t>;
            fn arbitrary() -> Self::Strategy {
                PrimitiveAny(std::marker::PhantomData)
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for PrimitiveAny<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = PrimitiveAny<bool>;
    fn arbitrary() -> Self::Strategy {
        PrimitiveAny(std::marker::PhantomData)
    }
}
