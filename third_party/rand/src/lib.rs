//! Offline stand-in for the `rand` crate.
//!
//! The rtic build environment cannot reach a registry, so this crate
//! vendors the *tiny* subset of `rand` 0.8 that the workspace actually
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! the [`Rng::gen_range`] / [`Rng::gen_bool`] methods. The generator is a
//! SplitMix64 — statistically fine for workload generation, and fully
//! deterministic for a given seed (though its streams differ from the real
//! `rand::rngs::StdRng`, so seeds are only comparable within this repo).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction (the subset rtic uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampleable range for [`Rng::gen_range`].
///
/// The output is a type parameter (not an associated type) so inference
/// can flow from the call site into untyped range literals — `old -
/// rng.gen_range(0..3)` must type the literal as the caller's integer
/// type, exactly as real rand does.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (the subset rtic uses).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard unit-interval construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // Avoid the all-zeros fixed point region by pre-mixing.
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..20).map(|_| c.gen_range(0u64..1000)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..20).map(|_| d.gen_range(0u64..1000)).collect();
        assert_ne!(same, other, "different seeds diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}/10000 at p=0.25");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
