//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the rtic benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a drastically simpler engine: a short warm-up followed by a fixed
//! batch of timed iterations, reporting mean wall-clock per iteration
//! (plus derived element throughput when declared). No statistical
//! analysis, plots, or HTML reports; good enough for relative comparisons
//! in an offline container.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in real criterion.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-size declaration used to derive throughput numbers.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display name: function part plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { label: name }
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    iters: u64,
    /// Mean time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `f`: brief warm-up, then `iters` timed runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters.min(3) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / self.iters as u32;
    }
}

/// Entry point; collects group and top-level benchmarks.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness CLI arguments, for API parity.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        let label = id.into().label;
        run_one(&label, self.sample_size, None, f);
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Declares per-iteration work so results include throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Runs an unparameterised benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, iters: u64, tp: Option<Throughput>, f: F) {
    let mut b = Bencher {
        iters,
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed_per_iter;
    let mut line = format!("{label:<48} {:>12.3} us/iter", per_iter.as_secs_f64() * 1e6);
    let secs = per_iter.as_secs_f64();
    match tp {
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            line.push_str(&format!("  ({:.0} elem/s)", n as f64 / secs));
        }
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            line.push_str(&format!("  ({:.0} B/s)", n as f64 / secs));
        }
        _ => {}
    }
    println!("{line}");
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn harness_runs_groups() {
        smoke_group();
    }

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut b = Bencher {
            iters: 50,
            elapsed_per_iter: Duration::ZERO,
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        assert!(b.elapsed_per_iter >= Duration::from_micros(40));
    }
}
