//! The `rtic` binary: check constraint files against transition logs,
//! explain compilation plans, and generate sample workloads.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match rtic::cli::run(&args, &mut out) {
        Ok(code) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(message) => {
            print!("{out}");
            eprintln!("rtic: {message}");
            std::process::exit(2);
        }
    }
}
