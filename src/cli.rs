//! The `rtic` command-line interface.
//!
//! Thin, testable argument handling over the library: the binary in
//! `src/bin/rtic.rs` forwards to [`run`], and the CLI integration tests
//! call [`run`] directly with captured output.
//!
//! ```text
//! rtic check <constraints.rtic> <log.rticlog> [--checker NAME] [--quiet] [--stats] [--explain]
//!            [--checkpoint FILE] [--resume FILE] [--metrics FILE] [--trace FILE|-]
//!            [--sample-space N]
//! rtic report <metrics.json>
//! rtic explain <constraints.rtic>
//! rtic generate <reservations|library|monitor|audit|random> [--steps N] [--seed N] [--violation-rate R]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use rtic_active::ActiveChecker;
use rtic_core::observe;
use rtic_core::{checkpoint, explain, Checker, CompiledConstraint, EncodingOptions};
use rtic_core::{IncrementalChecker, NaiveChecker, WindowedChecker};
use rtic_history::log::{format_log, LogReader};
use rtic_history::Transition;
use rtic_obs::{json, report, MetricsRegistry, MultiObserver, SpaceSampler, TraceWriter};
use rtic_temporal::parser::{parse_file, ConstraintFile};
use rtic_workload::{Audit, Library, Monitor, RandomWorkload, Reservations};

const USAGE: &str = "\
rtic — real-time integrity constraints (Chomicki, PODS 1992)

USAGE:
  rtic check <constraints-file> <log-file> [--checker incremental|naive|windowed|active]
             [--quiet] [--stats] [--explain] [--checkpoint FILE] [--resume FILE]
             [--metrics FILE] [--trace FILE|-] [--sample-space N]
  rtic report <metrics-file>
  rtic explain <constraints-file>
  rtic generate <reservations|library|monitor|audit|random> [--steps N] [--seed N]
             [--violation-rate R]

The constraints file declares relations and deny/assert constraints; the
log file is one `@time +rel(values…) -rel(values…)` line per transition,
consumed streaming. `generate` writes a log (plus its constraint file as
`# commented` header lines) to standard output. `--checkpoint` saves the
incremental checkers' bounded state after the run; `--resume` restores it
before the run, so a log can be checked in consecutive segments
(incremental checker only).

Telemetry: `--metrics FILE` writes a metrics snapshot after the run (JSON,
or Prometheus text when FILE ends in `.prom`); `--trace FILE` appends one
JSON line per step event (`-` traces to stderr); `--sample-space N`
records every checker's space footprint every N steps. `rtic report`
renders a JSON metrics snapshot as a summary table.";

/// Runs the CLI; returns the process exit code. All output goes through
/// `out` so tests can capture it.
pub fn run(args: &[String], out: &mut String) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..], out),
        Some("report") => report_cmd(&args[1..], out),
        Some("explain") => explain_cmd(&args[1..], out),
        Some("generate") => generate(&args[1..], out),
        Some("--help") | Some("-h") | None => {
            let _ = writeln!(out, "{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`; try --help")),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load_constraints(path: &str) -> Result<ConstraintFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read constraints file `{path}`: {e}"))?;
    parse_file(&text).map_err(|e| format!("{path}:{e}"))
}

fn check(args: &[String], out: &mut String) -> Result<i32, String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [constraints_path, log_path] = positional.as_slice() else {
        return Err("check needs <constraints-file> and <log-file>; try --help".into());
    };
    let quiet = args.iter().any(|a| a == "--quiet");
    let stats = args.iter().any(|a| a == "--stats");
    let show_explain = args.iter().any(|a| a == "--explain");
    let checker_name = flag_value(args, "--checker").unwrap_or("incremental");
    let checkpoint_path = flag_value(args, "--checkpoint");
    let resume_path = flag_value(args, "--resume");
    if (checkpoint_path.is_some() || resume_path.is_some()) && checker_name != "incremental" {
        return Err("--checkpoint/--resume require the incremental checker".into());
    }
    let metrics_path = flag_value(args, "--metrics");
    let trace_path = flag_value(args, "--trace");
    let sample_every: u64 = flag_value(args, "--sample-space")
        .map(|v| v.parse().map_err(|e| format!("bad --sample-space: {e}")))
        .transpose()?
        .unwrap_or(0);

    // Every run aggregates into a registry; --stats, --metrics and the
    // sampler all read from the same event stream.
    let mut registry = MetricsRegistry::new();
    let mut trace = match trace_path {
        Some("-") => Some(TraceWriter::to_stderr()),
        Some(path) => Some(
            TraceWriter::to_file(path)
                .map_err(|e| format!("cannot open trace file `{path}`: {e}"))?,
        ),
        None => None,
    };
    let mut sampler = SpaceSampler::new(sample_every);

    let file = load_constraints(constraints_path)?;
    if file.constraints.is_empty() {
        return Err(format!("`{constraints_path}` declares no constraints"));
    }
    let catalog = Arc::new(file.catalog.clone());

    let resume_sections: Vec<String> = match resume_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read checkpoint `{path}`: {e}"))?;
            split_checkpoints(&text)
        }
        None => Vec::new(),
    };

    let mut checkers: Vec<Box<dyn Checker>> = Vec::new();
    for c in &file.constraints {
        let compiled = CompiledConstraint::compile(c.clone(), Arc::clone(&catalog))
            .map_err(|e| format!("constraint `{}`: {e}", c.name))?;
        if show_explain {
            let _ = writeln!(out, "{}", explain::explain(&compiled));
        }
        checkers.push(match checker_name {
            "incremental" => {
                let section = resume_sections
                    .iter()
                    .find(|s| s.lines().any(|l| l == format!("constraint {}", c.name)));
                match (resume_path, section) {
                    (Some(path), None) => {
                        return Err(format!(
                            "checkpoint `{path}` has no section for constraint `{}`",
                            c.name
                        ))
                    }
                    (Some(_), Some(section)) => {
                        let mut obs = MultiObserver::new().with(&mut registry);
                        if let Some(t) = trace.as_mut() {
                            obs.push(t);
                        }
                        Box::new(
                            checkpoint::restore_observed(
                                c.clone(),
                                Arc::clone(&catalog),
                                EncodingOptions::default(),
                                section,
                                &mut obs,
                            )
                            .map_err(|e| e.to_string())?,
                        )
                    }
                    (None, _) => Box::new(IncrementalChecker::from_compiled(
                        compiled,
                        EncodingOptions::default(),
                    )),
                }
            }
            "naive" => Box::new(NaiveChecker::from_compiled(compiled)),
            "windowed" => Box::new(WindowedChecker::from_compiled(compiled)),
            "active" => Box::new(ActiveChecker::from_compiled(compiled)),
            other => return Err(format!("unknown checker `{other}`")),
        });
    }

    // Stream the log: one transition at a time, never the whole file.
    let log_file = std::fs::File::open(log_path)
        .map_err(|e| format!("cannot read log file `{log_path}`: {e}"))?;
    let reader = LogReader::new(std::io::BufReader::new(log_file));
    let mut total_violations = 0usize;
    let mut violated_states = 0usize;
    let mut transitions = 0usize;
    let mut last_time = None;
    for item in reader {
        let tr: Transition = item.map_err(|e| format!("{log_path}:{e}"))?;
        let step_index = transitions as u64;
        transitions += 1;
        last_time = Some(tr.time);
        let mut obs = MultiObserver::new().with(&mut registry);
        if let Some(t) = trace.as_mut() {
            obs.push(t);
        }
        let reports = observe::step_all(&mut checkers, tr.time, &tr.update, &mut obs)
            .map_err(|e| format!("at {}: {e}", tr.time))?;
        sampler.after_step(&checkers, tr.time, step_index, &mut obs);
        let mut state_bad = false;
        for report in &reports {
            if !report.ok() {
                total_violations += report.violation_count();
                state_bad = true;
                if !quiet {
                    let _ = writeln!(out, "{report}");
                }
            }
        }
        if state_bad {
            violated_states += 1;
        }
    }
    {
        // Final footprint reading, so --stats and the metrics snapshot
        // reflect end-of-run space even without --sample-space.
        let mut obs = MultiObserver::new().with(&mut registry);
        if let Some(t) = trace.as_mut() {
            obs.push(t);
        }
        observe::sample_space(
            &checkers,
            last_time.unwrap_or(rtic_temporal::TimePoint(0)),
            transitions as u64,
            &mut obs,
        );
    }
    if let Some(path) = checkpoint_path {
        let mut text = String::new();
        for checker in &checkers {
            // Safe: --checkpoint forces the incremental backend.
            let inc = checker
                .as_any()
                .downcast_ref::<IncrementalChecker>()
                .expect("incremental backend enforced above");
            let mut obs = MultiObserver::new().with(&mut registry);
            if let Some(t) = trace.as_mut() {
                obs.push(t);
            }
            text.push_str(&checkpoint::save_observed(inc, &mut obs));
        }
        std::fs::write(path, text).map_err(|e| format!("cannot write checkpoint `{path}`: {e}"))?;
        let _ = writeln!(out, "checkpoint written to {path}");
    }
    let _ = writeln!(
        out,
        "checked {} transitions against {} constraint(s) [{}]: {} violation witness(es) over {} state(s)",
        transitions,
        checkers.len(),
        checker_name,
        total_violations,
        violated_states,
    );
    if stats {
        // Uniform across backends, read back from the registry (fed by
        // the final space sample above).
        for (constraint, _, space) in registry.latest_space_by_constraint() {
            let _ = writeln!(out, "space[{constraint}]: {space}");
            let inc = checkers
                .iter()
                .find(|ch| ch.constraint().name.as_str() == constraint)
                .and_then(|ch| ch.as_any().downcast_ref::<IncrementalChecker>());
            if let Some(inc) = inc {
                for stat in inc.node_stats() {
                    let _ = writeln!(
                        out,
                        "  node `{}`: {} key(s), {} timestamp(s)",
                        stat.formula, stat.keys, stat.timestamps
                    );
                }
            }
        }
    }
    if let Some(path) = metrics_path {
        let rendered = if path.ends_with(".prom") {
            registry.render_prometheus()
        } else {
            registry.render_json()
        };
        std::fs::write(path, rendered)
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    if let Some(t) = trace {
        let lines = t.lines_written();
        t.finish()?;
        if let Some(path) = trace_path.filter(|p| *p != "-") {
            let _ = writeln!(out, "trace written to {path} ({lines} events)");
        }
    }
    Ok(if total_violations > 0 { 1 } else { 0 })
}

fn report_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let [path] = args else {
        return Err("report needs <metrics-file>; try --help".into());
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read metrics file `{path}`: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    out.push_str(&report::render(&doc)?);
    Ok(0)
}

/// Splits a multi-constraint checkpoint file back into per-checker
/// sections (each starts with the version header).
fn split_checkpoints(text: &str) -> Vec<String> {
    let mut sections: Vec<String> = Vec::new();
    for line in text.lines() {
        if line == "rtic-checkpoint v1" {
            sections.push(String::new());
        }
        if let Some(current) = sections.last_mut() {
            current.push_str(line);
            current.push('\n');
        }
    }
    sections
}

fn explain_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let [path] = args else {
        return Err("explain needs <constraints-file>; try --help".into());
    };
    let file = load_constraints(path)?;
    let catalog = Arc::new(file.catalog.clone());
    for c in &file.constraints {
        let compiled = CompiledConstraint::compile(c.clone(), Arc::clone(&catalog))
            .map_err(|e| format!("constraint `{}`: {e}", c.name))?;
        let _ = writeln!(out, "{}", explain::explain(&compiled));
    }
    Ok(0)
}

fn generate(args: &[String], out: &mut String) -> Result<i32, String> {
    let Some(kind) = args.first() else {
        return Err("generate needs a workload name; try --help".into());
    };
    let steps: usize = flag_value(args, "--steps")
        .map(|v| v.parse().map_err(|e| format!("bad --steps: {e}")))
        .transpose()?
        .unwrap_or(100);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let rate: f64 = flag_value(args, "--violation-rate")
        .map(|v| v.parse().map_err(|e| format!("bad --violation-rate: {e}")))
        .transpose()?
        .unwrap_or(0.05);

    let generated = match kind.as_str() {
        "reservations" => Reservations {
            steps,
            seed,
            violation_rate: rate,
            ..Default::default()
        }
        .generate(),
        "library" => Library {
            steps,
            seed,
            violation_rate: rate,
            ..Default::default()
        }
        .generate(),
        "monitor" => Monitor {
            steps,
            seed,
            violation_rate: rate,
            ..Default::default()
        }
        .generate(),
        "audit" => Audit {
            steps,
            seed,
            unapproved_rate: rate,
            ..Default::default()
        }
        .generate(),
        "random" => RandomWorkload {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        other => return Err(format!("unknown workload `{other}`")),
    };
    // Header: the matching constraint file, commented out for reference.
    let _ = writeln!(out, "# workload: {kind} steps={steps} seed={seed}");
    let _ = writeln!(out, "# matching constraint file:");
    for name in generated.catalog.names() {
        let schema = generated.catalog.schema_of(name).expect("listed");
        let attrs: Vec<String> = schema.attributes().iter().map(|a| format!("{a}")).collect();
        let _ = writeln!(out, "#   relation {name}({})", attrs.join(", "));
    }
    for c in &generated.constraints {
        let _ = writeln!(out, "#   {c}");
    }
    let _ = writeln!(out, "# injected violations: {}", generated.expected.len());
    out.push_str(&format_log(&generated.transitions));
    Ok(0)
}
