//! The `rtic` command-line interface.
//!
//! Thin, testable argument handling over the library: the binary in
//! `src/bin/rtic.rs` forwards to [`run`], and the CLI integration tests
//! call [`run`] directly with captured output.
//!
//! ```text
//! rtic check <constraints.rtic> <log.rticlog> [--checker NAME] [--quiet] [--stats] [--explain]
//!            [--constraints FILE]... [--parallel N|auto] [--profile]
//!            [--batch N] [--vectorize]
//!            [--shard auto|off] [--shard-evict N]
//!            [--checkpoint FILE] [--resume FILE] [--checkpoint-every N]
//!            [--checkpoint-secs T] [--checkpoint-keep K]
//!            [--on-bad-line strict|skip] [--bad-line-budget N]
//!            [--failpoints SPEC] [--metrics FILE] [--trace FILE|-]
//!            [--trace-format json|chrome] [--sample-space N]
//! rtic report <metrics.json>
//! rtic explain <constraints.rtic> [--profile <log.rticlog>]
//! rtic generate <scenario>|--list [--steps N] [--entities N] [--events N] [--seed N]
//!            [--violation-rate R]
//! rtic smc <scenario> [--samples auto|N] [--confidence C] [--epsilon E] [--backend NAME]
//!            [--steps N] [--entities N] [--events N] [--violation-rate R] [--seed N]
//!            [--min-samples N] [--oracle-every K] [--out FILE] [--metrics FILE]
//!            [--soak-dir DIR] [--soak-keep] [--resume] [--failpoints SPEC]
//! rtic serve <constraints.rtic> --listen unix:PATH|tcp:ADDR [--queue N] [--checkpoint FILE]
//!            [--resume] [--checkpoint-every N] [--batch N] [--vectorize] [--report FILE] …
//! rtic send <log.rticlog> --connect unix:PATH|tcp:ADDR [--drain] [--quiet]
//! ```

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use rtic_active::ActiveChecker;
use rtic_core::observe;
use rtic_core::{checkpoint, explain, BackendId, Checker, CompiledConstraint, EncodingOptions};
use rtic_core::{ConstraintSet, IncrementalChecker, NaiveChecker, Parallelism, WindowedChecker};
use rtic_core::{StepEvent, StepObserver};
use rtic_history::log::{format_log, LogErrorKind, LogReader};
use rtic_history::Transition;
use rtic_obs::{
    json, report, ChromeTraceWriter, MetricsRegistry, MultiObserver, SpaceSampler, TraceWriter,
};
use rtic_relation::{Catalog, Symbol, Update};
use rtic_resilience::{
    container, write_atomic, CheckpointPolicy, CheckpointTicker, FailAction, FailPlan, Rotation,
};
use rtic_server::{Client, Listen, ServeConfig};
use rtic_smc::{artifact, SampleMode, SmcConfig};
use rtic_temporal::parser::{parse_file, ConstraintFile};
use rtic_temporal::TimePoint;
use rtic_workload::{library, ScenarioParams};

const USAGE: &str = "\
rtic — real-time integrity constraints (Chomicki, PODS 1992)

USAGE:
  rtic check <constraints-file> <log-file> [--checker incremental|naive|windowed|active]
             [--constraints FILE]... [--parallel N|auto] [--profile]
             [--batch N] [--vectorize]
             [--shard auto|off] [--shard-evict N]
             [--quiet] [--stats] [--explain] [--checkpoint FILE] [--resume FILE]
             [--checkpoint-every N] [--checkpoint-secs T] [--checkpoint-keep K]
             [--on-bad-line strict|skip] [--bad-line-budget N] [--failpoints SPEC]
             [--metrics FILE] [--trace FILE|-] [--trace-format json|chrome]
             [--sample-space N]
  rtic report <metrics-file>
  rtic explain <constraints-file> [--profile <log-file>]
  rtic generate <scenario>|--list [--steps N] [--entities N] [--events N] [--seed N]
             [--violation-rate R]
  rtic smc <scenario> [--samples auto|N] [--confidence C] [--epsilon E]
             [--backend sequential|parallel|fleet-sharded|soak-serve]
             [--steps N] [--entities N] [--events N] [--violation-rate R] [--seed N]
             [--min-samples N] [--oracle-every K] [--out FILE] [--metrics FILE]
             [--soak-dir DIR] [--soak-keep] [--resume] [--failpoints SPEC]
  rtic serve <constraints-file> --listen unix:PATH|tcp:HOST:PORT
             [--constraints FILE]... [--queue N] [--retry-ms MS] [--write-timeout-ms MS]
             [--checkpoint FILE] [--resume] [--checkpoint-every N] [--checkpoint-secs T]
             [--checkpoint-keep K] [--parallel N|auto] [--shard auto|off] [--shard-evict N]
             [--batch N] [--vectorize] [--failpoints SPEC] [--report FILE] [--metrics FILE]
  rtic send <log-file> --connect unix:PATH|tcp:HOST:PORT [--drain] [--quiet]
             [--connect-timeout-ms MS]

The constraints file declares relations and deny/assert constraints; the
log file is one `@time +rel(values…) -rel(values…)` line per transition,
consumed streaming. `generate` writes a log (plus its constraint file as
`# commented` header lines) to standard output; `generate --list` prints
the scenario registry (production flavors fraud, telemetry, ratelimit,
access plus the paper-styled originals). `--entities` scales the
entity-key domain (scale to 1e5–1e6 to soak the sharded plane).

Statistical model checking: `rtic smc <scenario>` samples N randomized
histories (per-sample seeds derived from `--seed`), checks each through
the chosen backend, and reports per-constraint violation-probability
estimates with Wilson confidence intervals. `--samples auto` (default)
stops adaptively at the Okamoto/Massart bound for the declared
`--confidence`/`--epsilon` target; seeded runs reproduce byte-identically
(`--out FILE` writes the canonical JSON artifact). `--backend soak-serve`
drives a live `rtic serve` daemon per sample and cross-checks its drained
report byte-for-byte against the batch engine; `--oracle-every K`
re-checks every K-th sample against the naive reference evaluator. Any
cross-check mismatch exits 1. `--soak-dir` + `--soak-keep` + `--resume` +
`--failpoints` drill crash-resume across invocations (see docs/SCENARIOS.md).

Multi-constraint fleets: `--constraints FILE` (repeatable) merges more
constraint files into the run — relation declarations shared between
files must agree exactly, constraint names must be unique. `--parallel N`
(or `auto`) checks the whole fleet as one shared-state constraint set
with relevance dispatch, evaluating affected constraints on up to N
worker threads; reports and telemetry are identical to the sequential
run. Requires the incremental checker. A constraint engine that panics
mid-step is quarantined — it stops reporting while the rest of the fleet
keeps checking — and is listed in the summary and `--stats`.

Columnar execution: `--vectorize` switches the incremental engine onto
the block-backed evaluation path — column-sliced hash joins, columnar
projections, and per-relation memo generations — with reports
byte-identical to the scalar path (the differential oracle pins this).
`--batch N` ingests the log in micro-batches of N lines: each batch is
parsed and buffered first, then applied as one ingestion unit
(per-line semantics preserved exactly; checkpoint ticks and space
samples coalesce to batch boundaries). Both require the incremental
checker and compose with `--parallel`, `--shard`, checkpoints, and
`--resume` replay cursors.

Sharding: `--shard auto` partitions each constraint's state by its
compile-time entity key (the variable shared by every atom) and steps
only the shards an update touches; constraints with no such key run
unsharded alongside. Reports are byte-identical to `--shard off` (the
default). Idle shards are evicted after `--shard-evict N` quiet steps.
Shard counts appear under `--stats`/`--profile` and in `--metrics`
snapshots. Requires the incremental checker; composes with `--parallel`
and checkpoints (a checkpoint records which data plane wrote it, and
must be resumed with the same `--shard` setting).

Checkpoints: `--checkpoint FILE` durably saves the checkers' bounded
state (checksummed container, written atomically) after the run and,
with `--checkpoint-every N` steps and/or `--checkpoint-secs T`, during
it. Writes rotate through FILE, FILE.1, … (`--checkpoint-keep K`,
default 3). `--resume FILE` restores before the run, falling back to the
newest intact rotation entry if a candidate is corrupt, and skips log
lines at or before the checkpoint cursor, so a log can be checked in
consecutive segments. Works with `--parallel` fleets (incremental
checker only).

Bad input: `--on-bad-line skip` skips malformed log lines (up to
`--bad-line-budget N`, default 100) instead of aborting; skipped lines
are counted in the summary and surfaced as trace events. `--failpoints
\"site=action[@nth];…\"` (or RTIC_FAILPOINTS) injects faults for crash
drills: sites `run.abort`, `checkpoint.write`, `engine-panic:<name>`;
actions io-error, abort, panic, truncate:K, bitflip:K.

Telemetry: `--metrics FILE` writes a metrics snapshot after the run (JSON,
or Prometheus text when FILE ends in `.prom`); `--trace FILE` appends one
JSON line per step event (`-` traces to stderr), or — with
`--trace-format chrome` — a Chrome trace format array viewable in
Perfetto / chrome://tracing; `--sample-space N` records every checker's
space footprint every N steps. `rtic report` renders a JSON metrics
snapshot as a summary table.

Serving: `rtic serve` runs the fleet as a resident daemon speaking a
line protocol (UPDATE/TICK/QUERY/DRAIN — see docs/SERVING.md) over a
unix or TCP socket. Ingest flows through a bounded queue (`--queue N`,
default 64): a full queue answers `BUSY <retry-after-ms>` instead of
buffering, and clients stalled past `--write-timeout-ms` are
disconnected. `--checkpoint` + `--checkpoint-every/-secs` make the
daemon crash-safe (state and the violation report are sealed together);
`--resume` restores the newest intact checkpoint on boot and acks
already-covered updates as replayed. SIGTERM or DRAIN drains
gracefully: stop accepting, flush, final checkpoint, exit 0. `--report
FILE` writes the final violation lines (byte-identical to `rtic check`
on the same stream) on drain. `--batch N` micro-batches ingestion: the
engine drains up to N queued updates per wakeup and applies them as one
unit — one checkpoint write and one metrics sample per batch, replies
deferred past the batch checkpoint so checkpoint-before-ack still holds.
`--vectorize` serves on the columnar evaluation path. `rtic send`
streams a log to a serving daemon with backoff+jitter retries, printing
violations as they come.

Profiling: `--profile` (incremental checker, with or without
`--parallel`) turns on per-plan-node counters — inclusive wall time,
cardinalities, memo-cache hits — and prints an EXPLAIN-ANALYZE-style
table per constraint after the run; the profile also lands in
`--metrics` snapshots and traces. `rtic explain FILE --profile LOG`
additionally replays LOG and annotates each constraint's report with the
measured plan profile.";

/// Runs the CLI; returns the process exit code. All output goes through
/// `out` so tests can capture it.
pub fn run(args: &[String], out: &mut String) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..], out),
        Some("report") => report_cmd(&args[1..], out),
        Some("explain") => explain_cmd(&args[1..], out),
        Some("generate") => generate(&args[1..], out),
        Some("smc") => smc_cmd(&args[1..], out),
        Some("serve") => serve_cmd(&args[1..], out),
        Some("send") => send_cmd(&args[1..], out),
        Some("--help") | Some("-h") | None => {
            let _ = writeln!(out, "{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`; try --help")),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// All values of a repeatable `--flag VALUE` pair, in order.
fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn load_constraints(path: &str) -> Result<ConstraintFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read constraints file `{path}`: {e}"))?;
    parse_file(&text).map_err(|e| format!("{path}:{e}"))
}

/// Loads `primary` and merges every `--constraints` extra into it:
/// shared relation declarations must agree, constraint names must be
/// unique across files.
fn load_merged_constraints(primary: &str, extras: &[&str]) -> Result<ConstraintFile, String> {
    let mut file = load_constraints(primary)?;
    for path in extras {
        let extra = load_constraints(path)?;
        file.catalog
            .try_merge(&extra.catalog)
            .map_err(|e| format!("`{path}`: {e}"))?;
        for c in extra.constraints {
            if file.constraints.iter().any(|have| have.name == c.name) {
                return Err(format!(
                    "`{path}`: constraint `{}` is already defined by an earlier file",
                    c.name
                ));
            }
            file.constraints.push(c);
        }
    }
    if file.constraints.is_empty() {
        return Err(format!("`{primary}` declares no constraints"));
    }
    Ok(file)
}

/// The two evaluation engines behind `rtic check`: one independent
/// checker per constraint (any backend), or a shared-state
/// [`ConstraintSet`] fleet with relevance dispatch and optional worker
/// threads (`--parallel`).
enum CheckEngine {
    Independent(Vec<Box<dyn Checker>>),
    Fleet(Box<ConstraintSet>),
}

/// The trace writer behind `--trace`, in the format `--trace-format`
/// picked: JSON lines (the default) or a Chrome trace format array.
enum AnyTrace {
    Json(TraceWriter),
    Chrome(ChromeTraceWriter),
}

impl AnyTrace {
    fn events_written(&self) -> u64 {
        match self {
            AnyTrace::Json(t) => t.lines_written(),
            AnyTrace::Chrome(t) => t.events_written(),
        }
    }

    fn finish(self) -> Result<String, String> {
        match self {
            AnyTrace::Json(t) => t.finish(),
            AnyTrace::Chrome(t) => t.finish(),
        }
    }
}

impl StepObserver for AnyTrace {
    fn observe(&mut self, event: &StepEvent<'_>) {
        match self {
            AnyTrace::Json(t) => t.observe(event),
            AnyTrace::Chrome(t) => t.observe(event),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_checkers(
    file: &ConstraintFile,
    catalog: &Arc<Catalog>,
    backend: BackendId,
    options: EncodingOptions,
    show_explain: bool,
    resume_path: Option<&str>,
    resume_sections: &[String],
    registry: &mut MetricsRegistry,
    trace: &mut Option<AnyTrace>,
    out: &mut String,
) -> Result<Vec<Box<dyn Checker>>, String> {
    let mut checkers: Vec<Box<dyn Checker>> = Vec::new();
    for c in &file.constraints {
        let compiled = CompiledConstraint::compile(c.clone(), Arc::clone(catalog))
            .map_err(|e| format!("constraint `{}`: {e}", c.name))?;
        if show_explain {
            let _ = writeln!(out, "{}", explain::explain(&compiled));
        }
        checkers.push(match backend {
            BackendId::Incremental => {
                let section = resume_sections
                    .iter()
                    .find(|s| s.lines().any(|l| l == format!("constraint {}", c.name)));
                match (resume_path, section) {
                    (Some(path), None) => {
                        return Err(format!(
                            "checkpoint `{path}` has no section for constraint `{}`",
                            c.name
                        ))
                    }
                    (Some(_), Some(section)) => {
                        let mut obs = MultiObserver::new().with(registry);
                        if let Some(t) = trace.as_mut() {
                            obs.push(t);
                        }
                        Box::new(
                            checkpoint::restore_observed(
                                c.clone(),
                                Arc::clone(catalog),
                                options,
                                section,
                                &mut obs,
                            )
                            .map_err(|e| e.to_string())?,
                        )
                    }
                    (None, _) => Box::new(IncrementalChecker::from_compiled(compiled, options)),
                }
            }
            BackendId::Naive => Box::new(NaiveChecker::from_compiled(compiled)),
            BackendId::Windowed => Box::new(WindowedChecker::from_compiled(compiled)),
            BackendId::Active => Box::new(ActiveChecker::from_compiled(compiled)),
        });
    }
    Ok(checkers)
}

fn check(args: &[String], out: &mut String) -> Result<i32, String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [constraints_path, log_path] = positional.as_slice() else {
        return Err("check needs <constraints-file> and <log-file>; try --help".into());
    };
    let quiet = args.iter().any(|a| a == "--quiet");
    let stats = args.iter().any(|a| a == "--stats");
    let show_explain = args.iter().any(|a| a == "--explain");
    let profile = args.iter().any(|a| a == "--profile");
    let backend: BackendId = flag_value(args, "--checker")
        .unwrap_or("incremental")
        .parse()?;
    if profile && backend != BackendId::Incremental {
        return Err("--profile requires the incremental checker".into());
    }
    let vectorize = args.iter().any(|a| a == "--vectorize");
    if vectorize && backend != BackendId::Incremental {
        return Err("--vectorize requires the incremental checker".into());
    }
    let batch_size: usize = flag_value(args, "--batch")
        .map(|v| v.parse().map_err(|e| format!("bad --batch: {e}")))
        .transpose()?
        .unwrap_or(1);
    if batch_size == 0 {
        return Err("--batch needs at least one line per batch".into());
    }
    if batch_size > 1 && backend != BackendId::Incremental {
        return Err("--batch requires the incremental checker".into());
    }
    let options = EncodingOptions {
        profile_plans: profile,
        vectorize,
        ..Default::default()
    };
    let checkpoint_path = flag_value(args, "--checkpoint");
    let resume_path = flag_value(args, "--resume");
    if (checkpoint_path.is_some() || resume_path.is_some()) && backend != BackendId::Incremental {
        return Err("--checkpoint/--resume require the incremental checker".into());
    }
    let parallelism = match flag_value(args, "--parallel") {
        None => None,
        Some("auto") => Some(Parallelism::Auto),
        Some(n) => {
            let n: usize = n
                .parse()
                .map_err(|e| format!("bad --parallel `{n}`: {e}"))?;
            if n == 0 {
                return Err("--parallel needs at least one worker (or `auto`)".into());
            }
            Some(Parallelism::N(n))
        }
    };
    if parallelism.is_some() && backend != BackendId::Incremental {
        return Err("--parallel requires the incremental checker".into());
    }
    let shard_enabled = match flag_value(args, "--shard") {
        None | Some("off") => false,
        Some("auto") => true,
        Some(other) => return Err(format!("bad --shard `{other}` (auto|off)")),
    };
    if shard_enabled && backend != BackendId::Incremental {
        return Err("--shard requires the incremental checker".into());
    }
    let shard_evict: Option<u32> = flag_value(args, "--shard-evict")
        .map(|v| v.parse().map_err(|e| format!("bad --shard-evict: {e}")))
        .transpose()?;
    if shard_evict.is_some() && !shard_enabled {
        return Err("--shard-evict requires --shard auto".into());
    }
    if let Some(0) = shard_evict {
        return Err("--shard-evict needs at least one step of idleness".into());
    }
    let checkpoint_keep: usize = flag_value(args, "--checkpoint-keep")
        .map(|v| v.parse().map_err(|e| format!("bad --checkpoint-keep: {e}")))
        .transpose()?
        .unwrap_or(3);
    if checkpoint_keep == 0 {
        return Err("--checkpoint-keep needs at least one generation".into());
    }
    let checkpoint_every: Option<u64> = flag_value(args, "--checkpoint-every")
        .map(|v| {
            v.parse()
                .map_err(|e| format!("bad --checkpoint-every: {e}"))
        })
        .transpose()?;
    let checkpoint_secs: Option<f64> = flag_value(args, "--checkpoint-secs")
        .map(|v| v.parse().map_err(|e| format!("bad --checkpoint-secs: {e}")))
        .transpose()?;
    if (checkpoint_every.is_some() || checkpoint_secs.is_some()) && checkpoint_path.is_none() {
        return Err("--checkpoint-every/--checkpoint-secs require --checkpoint".into());
    }
    let skip_bad_lines = match flag_value(args, "--on-bad-line") {
        None | Some("strict") => false,
        Some("skip") => true,
        Some(other) => return Err(format!("bad --on-bad-line `{other}` (strict|skip)")),
    };
    let bad_line_budget: u64 = flag_value(args, "--bad-line-budget")
        .map(|v| v.parse().map_err(|e| format!("bad --bad-line-budget: {e}")))
        .transpose()?
        .unwrap_or(100);
    if flag_value(args, "--bad-line-budget").is_some() && !skip_bad_lines {
        return Err("--bad-line-budget requires --on-bad-line skip".into());
    }
    let faults = match flag_value(args, "--failpoints") {
        Some(spec) => FailPlan::parse(spec).map_err(|e| format!("bad --failpoints: {e}"))?,
        None => {
            FailPlan::from_env().map_err(|e| format!("bad {}: {e}", rtic_resilience::ENV_VAR))?
        }
    };
    let extra_constraint_paths = flag_values(args, "--constraints");
    let metrics_path = flag_value(args, "--metrics");
    let trace_path = flag_value(args, "--trace");
    let trace_chrome = match flag_value(args, "--trace-format") {
        None | Some("json") => false,
        Some("chrome") => true,
        Some(other) => return Err(format!("bad --trace-format `{other}` (json|chrome)")),
    };
    if flag_value(args, "--trace-format").is_some() && trace_path.is_none() {
        return Err("--trace-format requires --trace".into());
    }
    let sample_every: u64 = flag_value(args, "--sample-space")
        .map(|v| v.parse().map_err(|e| format!("bad --sample-space: {e}")))
        .transpose()?
        .unwrap_or(0);

    // Every run aggregates into a registry; --stats, --metrics and the
    // sampler all read from the same event stream.
    let mut registry = MetricsRegistry::new();
    let mut trace = match (trace_path, trace_chrome) {
        (Some("-"), false) => Some(AnyTrace::Json(TraceWriter::to_stderr())),
        (Some("-"), true) => Some(AnyTrace::Chrome(ChromeTraceWriter::to_stderr())),
        (Some(path), chrome) => Some(
            (if chrome {
                ChromeTraceWriter::to_file(path).map(AnyTrace::Chrome)
            } else {
                TraceWriter::to_file(path).map(AnyTrace::Json)
            })
            .map_err(|e| format!("cannot open trace file `{path}`: {e}"))?,
        ),
        (None, _) => None,
    };
    let mut sampler = SpaceSampler::new(sample_every);

    let file = load_merged_constraints(constraints_path, &extra_constraint_paths)?;
    let catalog = Arc::new(file.catalog.clone());

    // Recovery: walk the rotation set newest-first, rejecting corrupt or
    // unreadable candidates (each rejection is surfaced as an observer
    // event and a diagnostic line) until an intact checkpoint opens.
    let resume_recovery = match resume_path {
        Some(path) => {
            let outcome = Rotation::new(path, checkpoint_keep).recover();
            for (cand, why) in &outcome.rejected {
                let mut obs = MultiObserver::new().with(&mut registry);
                if let Some(t) = trace.as_mut() {
                    obs.push(t);
                }
                obs.observe(&StepEvent::CheckpointFallback {
                    path: cand.display().to_string(),
                    detail: why.clone(),
                });
                let _ = writeln!(
                    out,
                    "checkpoint candidate `{}` rejected: {why}",
                    cand.display()
                );
            }
            match outcome.restored {
                Some(found) => Some(found),
                None if outcome.rejected.is_empty() => {
                    return Err(format!("cannot resume from `{path}`: no checkpoint found"))
                }
                None => {
                    return Err(format!(
                        "cannot resume from `{path}`: every candidate in the rotation set \
                         is corrupt or unreadable"
                    ))
                }
            }
        }
        None => None,
    };
    let resume_sections: Vec<String> = resume_recovery
        .as_ref()
        .map(|(_, sections, _)| sections.clone())
        .unwrap_or_default();

    let mut engine = if parallelism.is_some() || shard_enabled || batch_size > 1 {
        let mut set = if let Some((found_path, sections, _)) = &resume_recovery {
            let set = checkpoint::restore_set_sharded(
                file.constraints.iter().cloned(),
                Arc::clone(&catalog),
                options,
                sections,
                shard_enabled,
            )
            .map_err(|e| format!("cannot resume from `{}`: {e}", found_path.display()))?;
            let mut obs = MultiObserver::new().with(&mut registry);
            if let Some(t) = trace.as_mut() {
                obs.push(t);
            }
            for section in sections {
                if let Some(name) = section_constraint_name(section) {
                    obs.observe(&StepEvent::CheckpointRestore {
                        constraint: Symbol::intern(name),
                        bytes: section.len(),
                    });
                }
            }
            set
        } else {
            ConstraintSet::with_options(
                file.constraints.iter().cloned(),
                Arc::clone(&catalog),
                options,
            )
            .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
            .with_sharding(shard_enabled)
        };
        if let Some(horizon) = shard_evict {
            set.set_shard_eviction(horizon);
        }
        if let Some(par) = parallelism {
            set = set.with_parallelism(par);
        }
        if show_explain {
            for compiled in set.compiled() {
                let _ = writeln!(out, "{}", explain::explain(compiled));
            }
        }
        CheckEngine::Fleet(Box::new(set))
    } else {
        CheckEngine::Independent(build_checkers(
            &file,
            &catalog,
            backend,
            options,
            show_explain,
            resume_path,
            &resume_sections,
            &mut registry,
            &mut trace,
            out,
        )?)
    };

    // Armed engine panics (failpoint `engine-panic:<constraint>`) are a
    // fleet feature: the constraint-set step path quarantines a panicking
    // engine instead of crashing the run.
    for (name, nth) in faults.engine_panics() {
        let CheckEngine::Fleet(set) = &mut engine else {
            return Err(format!(
                "failpoint `engine-panic:{name}` requires --parallel (fleet mode)"
            ));
        };
        if !set.arm_panic(&name, nth) {
            return Err(format!(
                "failpoint `engine-panic:{name}`: no such constraint in the fleet"
            ));
        }
    }

    // The replay cursor: transitions at or before this time were already
    // checked by the run that wrote the checkpoint, so the resumed run
    // skips them instead of double-reporting.
    let resume_cursor: Option<TimePoint> = if resume_recovery.is_some() {
        match &engine {
            CheckEngine::Fleet(set) => set.last_time(),
            CheckEngine::Independent(checkers) => checkers
                .iter()
                .filter_map(|ch| ch.as_any().downcast_ref::<IncrementalChecker>())
                .filter_map(IncrementalChecker::last_time)
                .max(),
        }
    } else {
        None
    };
    if let Some((found_path, _, format)) = &resume_recovery {
        match resume_cursor {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "resumed from `{}` ({format}) at t={t}",
                    found_path.display()
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "resumed from `{}` ({format}) at the start of the log",
                    found_path.display()
                );
            }
        }
    }

    // Stream the log: one transition at a time, never the whole file.
    let log_file = std::fs::File::open(log_path)
        .map_err(|e| format!("cannot read log file `{log_path}`: {e}"))?;
    let mut reader = LogReader::new(std::io::BufReader::new(log_file));
    let checkpoint_rotation = checkpoint_path.map(|p| Rotation::new(p, checkpoint_keep));
    let mut ticker = CheckpointTicker::new(CheckpointPolicy {
        every_steps: checkpoint_every,
        every: checkpoint_secs.map(Duration::from_secs_f64),
    });
    let mut total_violations = 0usize;
    let mut violated_states = 0usize;
    let mut transitions = 0usize;
    let mut bad_lines = 0u64;
    let mut replay_skipped = 0usize;
    let mut replayed_bad = 0u64;
    let mut last_time = None;
    // True while the reader is still inside the log prefix the checkpoint
    // already covered. Malformed lines in that prefix were charged against
    // the budget by the run that wrote the checkpoint; charging them again
    // on every resume would shrink the effective budget with each restart.
    let mut replaying = resume_cursor.is_some();
    // Micro-batch buffer (--batch N): parsed lines wait here, with their
    // (line, step_index) provenance, until the buffer fills.
    let mut pending: Vec<(TimePoint, Update)> = Vec::new();
    let mut pending_meta: Vec<(usize, u64)> = Vec::new();
    while let Some(item) = reader.next() {
        let tr: Transition = match item {
            Ok(tr) => tr,
            Err(e) if skip_bad_lines && e.kind == LogErrorKind::Parse && replaying => {
                replayed_bad += 1;
                continue;
            }
            Err(e) if skip_bad_lines && e.kind == LogErrorKind::Parse => {
                bad_lines += 1;
                if bad_lines > bad_line_budget {
                    return Err(format!(
                        "{log_path}:{e} — bad-line budget exhausted \
                         ({bad_lines} malformed line(s), budget {bad_line_budget})"
                    ));
                }
                let mut obs = MultiObserver::new().with(&mut registry);
                if let Some(t) = trace.as_mut() {
                    obs.push(t);
                }
                obs.observe(&StepEvent::BadLine {
                    line: e.line,
                    detail: e.message.clone(),
                });
                continue;
            }
            Err(e) => return Err(format!("{log_path}:{e}")),
        };
        if let Some(cursor) = resume_cursor {
            if tr.time <= cursor {
                replay_skipped += 1;
                continue;
            }
        }
        replaying = false;
        if let Some(action) = faults.check("run.abort") {
            match action {
                FailAction::Panic => panic!("injected panic (failpoint `run.abort`)"),
                _ => return Err("injected crash (failpoint `run.abort`)".into()),
            }
        }
        let line = reader.lines_read();
        let step_index = transitions as u64;
        transitions += 1;
        last_time = Some(tr.time);
        if batch_size > 1 {
            pending.push((tr.time, tr.update));
            pending_meta.push((line, step_index));
            if pending.len() >= batch_size {
                let ticked = {
                    let CheckEngine::Fleet(set) = &mut engine else {
                        return Err("--batch requires the fleet engine".into());
                    };
                    flush_batch(
                        set,
                        &mut pending,
                        &mut pending_meta,
                        &mut registry,
                        &mut trace,
                        &mut sampler,
                        &mut ticker,
                        checkpoint_rotation.is_some(),
                        quiet,
                        log_path,
                        &mut total_violations,
                        &mut violated_states,
                        out,
                    )?
                };
                if ticked {
                    if let Some(rotation) = &checkpoint_rotation {
                        write_checkpoint(&engine, rotation, &faults, &mut registry, &mut trace)?;
                    }
                }
            }
            continue;
        }
        let mut obs = MultiObserver::new().with(&mut registry);
        if let Some(t) = trace.as_mut() {
            obs.push(t);
        }
        let reports = match &mut engine {
            CheckEngine::Independent(checkers) => {
                observe::step_all(checkers, tr.time, &tr.update, &mut obs)
            }
            CheckEngine::Fleet(set) => set.step_observed(tr.time, &tr.update, &mut obs),
        }
        .map_err(|e| format!("{log_path}:line {line}: at {}: {e}", tr.time))?;
        match &mut engine {
            CheckEngine::Independent(checkers) => {
                sampler.after_step(checkers, tr.time, step_index, &mut obs);
            }
            CheckEngine::Fleet(set) => {
                if sampler.due(step_index) {
                    set.sample_space(step_index, &mut obs);
                    sampler.note_sampled();
                }
            }
        }
        let mut state_bad = false;
        for report in &reports {
            if !report.ok() {
                total_violations += report.violation_count();
                state_bad = true;
                if !quiet {
                    let _ = writeln!(out, "{report}");
                }
            }
        }
        if state_bad {
            violated_states += 1;
        }
        if let Some(rotation) = &checkpoint_rotation {
            if ticker.step_completed() {
                write_checkpoint(&engine, rotation, &faults, &mut registry, &mut trace)?;
            }
        }
    }
    if !pending.is_empty() {
        // The final, possibly short batch. Its coalesced checkpoint ticks
        // are covered by the unconditional end-of-run write below.
        let CheckEngine::Fleet(set) = &mut engine else {
            return Err("--batch requires the fleet engine".into());
        };
        flush_batch(
            set,
            &mut pending,
            &mut pending_meta,
            &mut registry,
            &mut trace,
            &mut sampler,
            &mut ticker,
            checkpoint_rotation.is_some(),
            quiet,
            log_path,
            &mut total_violations,
            &mut violated_states,
            out,
        )?;
    }
    if replay_skipped > 0 {
        let _ = writeln!(
            out,
            "skipped {replay_skipped} transition(s) already covered by the checkpoint"
        );
    }
    if replayed_bad > 0 {
        let _ = writeln!(
            out,
            "skipped {replayed_bad} malformed line(s) already covered by the checkpoint \
             (not charged against the bad-line budget)"
        );
    }
    {
        // Final footprint reading, so --stats and the metrics snapshot
        // reflect end-of-run space even without --sample-space.
        let mut obs = MultiObserver::new().with(&mut registry);
        if let Some(t) = trace.as_mut() {
            obs.push(t);
        }
        match &engine {
            CheckEngine::Independent(checkers) => {
                observe::sample_space(
                    checkers,
                    last_time.unwrap_or(rtic_temporal::TimePoint(0)),
                    transitions as u64,
                    &mut obs,
                );
                observe::sample_plan_stats(checkers, &mut obs);
                observe::sample_plan_profiles(checkers, &mut obs);
            }
            CheckEngine::Fleet(set) => {
                set.sample_space(transitions as u64, &mut obs);
                set.sample_plan_stats(&mut obs);
                set.sample_plan_profiles(&mut obs);
            }
        }
    }
    if let Some(rotation) = &checkpoint_rotation {
        let bytes = write_checkpoint(&engine, rotation, &faults, &mut registry, &mut trace)?;
        let _ = writeln!(
            out,
            "checkpoint written to {} ({bytes} bytes)",
            rotation.primary().display()
        );
    }
    let n_constraints = match &engine {
        CheckEngine::Independent(checkers) => checkers.len(),
        CheckEngine::Fleet(set) => set.len(),
    };
    let _ = writeln!(
        out,
        "checked {} transitions against {} constraint(s) [{}]: {} violation witness(es) over {} state(s)",
        transitions,
        n_constraints,
        backend,
        total_violations,
        violated_states,
    );
    if bad_lines > 0 {
        let _ = writeln!(
            out,
            "skipped {bad_lines} malformed line(s) (--on-bad-line skip, budget {bad_line_budget})"
        );
    }
    if let CheckEngine::Fleet(set) = &engine {
        for (name, detail) in set.quarantined() {
            let _ = writeln!(out, "quarantined `{name}`: {detail}");
        }
    }
    if profile {
        let profiles: Vec<(Symbol, rtic_core::PlanProfile)> = match &engine {
            CheckEngine::Independent(checkers) => checkers
                .iter()
                .filter_map(|ch| ch.plan_profile().map(|p| (ch.constraint().name, p)))
                .collect(),
            CheckEngine::Fleet(set) => set.plan_profiles(),
        };
        for (name, prof) in &profiles {
            let _ = writeln!(out, "profile[{name}]:");
            out.push_str(&explain::render_profile(prof));
        }
    }
    if profile || stats {
        if let CheckEngine::Fleet(set) = &engine {
            for (name, st) in set.shard_stats() {
                let _ = writeln!(
                    out,
                    "shards[{name}]: {} live, {} created, {} evicted, peak {}",
                    st.live, st.created, st.evicted, st.peak
                );
            }
        }
    }
    if stats {
        // Uniform across backends, read back from the registry (fed by
        // the final space sample above).
        for (constraint, _, space) in registry.latest_space_by_constraint() {
            let _ = writeln!(out, "space[{constraint}]: {space}");
            let inc = match &engine {
                CheckEngine::Independent(checkers) => checkers
                    .iter()
                    .find(|ch| ch.constraint().name.as_str() == constraint)
                    .and_then(|ch| ch.as_any().downcast_ref::<IncrementalChecker>()),
                CheckEngine::Fleet(_) => None,
            };
            if let Some(inc) = inc {
                for stat in inc.node_stats() {
                    let _ = writeln!(
                        out,
                        "  node `{}`: {} key(s), {} timestamp(s)",
                        stat.formula, stat.keys, stat.timestamps
                    );
                }
            }
        }
        if let CheckEngine::Fleet(set) = &engine {
            let d = set.dispatch_stats();
            let _ = writeln!(
                out,
                "dispatch: {} evaluation(s) total — {} affected, {} absorbed as quiescent ticks, {} quiescent but fully evaluated",
                d.total(),
                d.affected,
                d.skipped,
                d.quiescent_full,
            );
            if d.quarantined > 0 {
                let _ = writeln!(
                    out,
                    "dispatch: {} engine-step(s) skipped by quarantine",
                    d.quarantined
                );
            }
        }
        for (name, plan) in registry.plan_stats_by_checker() {
            let _ = writeln!(
                out,
                "plan[{name}]: {} node(s), {} atom shape(s), {} join shape(s), {} probe(s), {} memoized, scratch high-water {}",
                plan.plan.nodes,
                plan.plan.atom_shapes,
                plan.plan.join_shapes,
                plan.plan.probe_nodes,
                plan.plan.cached_nodes,
                plan.scratch_high_water,
            );
        }
        if registry.checkpoint_fallbacks() > 0 {
            let _ = writeln!(
                out,
                "recovery: {} corrupt checkpoint candidate(s) rejected",
                registry.checkpoint_fallbacks()
            );
        }
        if registry.bad_lines() > 0 {
            let _ = writeln!(out, "bad lines skipped: {}", registry.bad_lines());
        }
    }
    if let Some(path) = metrics_path {
        let rendered = if path.ends_with(".prom") {
            registry.render_prometheus()
        } else {
            registry.render_json()
        };
        write_atomic(Path::new(path), rendered.as_bytes())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    if let Some(t) = trace {
        let events = t.events_written();
        t.finish()?;
        if let Some(path) = trace_path.filter(|p| *p != "-") {
            let _ = writeln!(out, "trace written to {path} ({events} events)");
        }
    }
    Ok(if total_violations > 0 { 1 } else { 0 })
}

fn report_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let [path] = args else {
        return Err("report needs <metrics-file>; try --help".into());
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read metrics file `{path}`: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    out.push_str(&report::render(&doc)?);
    Ok(0)
}

/// The constraint a checkpoint section belongs to (its `constraint
/// <name>` line).
fn section_constraint_name(section: &str) -> Option<&str> {
    section
        .lines()
        .find_map(|line| line.strip_prefix("constraint "))
}

/// Serializes the engine's state into one multi-section v2 container and
/// writes it through the rotation set (atomic temp-file + fsync +
/// rename; previous generations shift to `.1`, `.2`, …). Emits one
/// `CheckpointSave` event per section. Returns the sealed size in bytes.
fn write_checkpoint(
    engine: &CheckEngine,
    rotation: &Rotation,
    faults: &FailPlan,
    registry: &mut MetricsRegistry,
    trace: &mut Option<AnyTrace>,
) -> Result<usize, String> {
    let sections: Vec<(Symbol, String)> = match engine {
        CheckEngine::Fleet(set) => checkpoint::save_set(set),
        CheckEngine::Independent(checkers) => {
            let mut sections = Vec::with_capacity(checkers.len());
            for checker in checkers {
                let inc = checker
                    .as_any()
                    .downcast_ref::<IncrementalChecker>()
                    .ok_or("--checkpoint requires the incremental checker")?;
                sections.push((inc.constraint().name, checkpoint::save(inc)));
            }
            sections
        }
    };
    let mut obs = MultiObserver::new().with(registry);
    if let Some(t) = trace.as_mut() {
        obs.push(t);
    }
    for (name, text) in &sections {
        obs.observe(&StepEvent::CheckpointSave {
            constraint: *name,
            bytes: text.len(),
        });
    }
    let sealed = container::seal(sections.iter().map(|(_, text)| text.as_str()));
    rotation
        .write(&sealed, faults, "checkpoint.write")
        .map_err(|e| format!("cannot write checkpoint: {e}"))?;
    Ok(sealed.len())
}

/// Applies the buffered `--batch` lines as one ingestion unit and prints
/// their reports in order, byte-identical to line-at-a-time output.
/// Space samples due inside the batch are taken once, against the
/// post-batch state; checkpoint ticks coalesce — the return value says
/// whether any line's tick fired, so the caller writes at most one
/// checkpoint per batch.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    set: &mut ConstraintSet,
    pending: &mut Vec<(TimePoint, Update)>,
    meta: &mut Vec<(usize, u64)>,
    registry: &mut MetricsRegistry,
    trace: &mut Option<AnyTrace>,
    sampler: &mut SpaceSampler,
    ticker: &mut CheckpointTicker,
    checkpointing: bool,
    quiet: bool,
    log_path: &str,
    total_violations: &mut usize,
    violated_states: &mut usize,
    out: &mut String,
) -> Result<bool, String> {
    if pending.is_empty() {
        return Ok(false);
    }
    let (first_line, last_line) = (meta[0].0, meta[meta.len() - 1].0);
    let mut obs = MultiObserver::new().with(registry);
    if let Some(t) = trace.as_mut() {
        obs.push(t);
    }
    let per_line = set
        .apply_batch(pending, &mut obs)
        .map_err(|e| format!("{log_path}:lines {first_line}-{last_line} (batch): {e}"))?;
    let mut sampled = false;
    let mut ticked = false;
    for (reports, (_, step_index)) in per_line.iter().zip(meta.iter()) {
        let mut state_bad = false;
        for report in reports {
            if !report.ok() {
                *total_violations += report.violation_count();
                state_bad = true;
                if !quiet {
                    let _ = writeln!(out, "{report}");
                }
            }
        }
        if state_bad {
            *violated_states += 1;
        }
        if !sampled && sampler.due(*step_index) {
            set.sample_space(*step_index, &mut obs);
            sampler.note_sampled();
            sampled = true;
        }
        if checkpointing && ticker.step_completed() {
            ticked = true;
        }
    }
    pending.clear();
    meta.clear();
    Ok(ticked)
}

fn explain_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [path] = positional.as_slice() else {
        return Err("explain needs <constraints-file>; try --help".into());
    };
    let profile_log = flag_value(args, "--profile");
    let file = load_constraints(path)?;
    let catalog = Arc::new(file.catalog.clone());

    // Without --profile this is a pure compile-time report. With it, the
    // log is replayed through profiling incremental checkers first, so
    // each constraint's report ends with measured per-node annotations —
    // an EXPLAIN ANALYZE for the compiled plans.
    let mut profiles: Vec<Option<rtic_core::PlanProfile>> = vec![None; file.constraints.len()];
    if let Some(log_path) = profile_log {
        let mut checkers: Vec<IncrementalChecker> = file
            .constraints
            .iter()
            .map(|c| {
                IncrementalChecker::with_options(
                    c.clone(),
                    Arc::clone(&catalog),
                    EncodingOptions {
                        profile_plans: true,
                        ..Default::default()
                    },
                )
                .map_err(|e| format!("constraint `{}`: {e}", c.name))
            })
            .collect::<Result<_, String>>()?;
        let log_file = std::fs::File::open(log_path)
            .map_err(|e| format!("cannot read log file `{log_path}`: {e}"))?;
        let mut reader = LogReader::new(std::io::BufReader::new(log_file));
        while let Some(item) = reader.next() {
            let tr: Transition = item.map_err(|e| format!("{log_path}:{e}"))?;
            let line = reader.lines_read();
            for checker in &mut checkers {
                checker
                    .step(tr.time, &tr.update)
                    .map_err(|e| format!("{log_path}:line {line}: at {}: {e}", tr.time))?;
            }
        }
        for (slot, checker) in profiles.iter_mut().zip(&checkers) {
            *slot = checker.plan_profile();
        }
    }

    for (c, profile) in file.constraints.iter().zip(&profiles) {
        let compiled = CompiledConstraint::compile(c.clone(), Arc::clone(&catalog))
            .map_err(|e| format!("constraint `{}`: {e}", c.name))?;
        let text = explain::explain(&compiled);
        match profile {
            Some(p) => {
                out.push_str(text.trim_end());
                let _ = writeln!(out);
                out.push_str(&explain::render_profile(p));
                let _ = writeln!(out);
            }
            None => {
                let _ = writeln!(out, "{text}");
            }
        }
    }
    Ok(0)
}

/// Parses the shared scenario-shape flags over the given defaults.
fn scenario_params(args: &[String], defaults: ScenarioParams) -> Result<ScenarioParams, String> {
    let mut p = defaults;
    if let Some(v) = flag_value(args, "--steps") {
        p.steps = v.parse().map_err(|e| format!("bad --steps: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--entities") {
        p.entities = v.parse().map_err(|e| format!("bad --entities: {e}"))?;
        if p.entities == 0 {
            return Err("--entities needs at least one entity".into());
        }
    }
    if let Some(v) = flag_value(args, "--events") {
        p.events_per_step = v.parse().map_err(|e| format!("bad --events: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--violation-rate") {
        p.violation_rate = v
            .parse()
            .map_err(|e| format!("bad --violation-rate: {e}"))?;
        if !(0.0..=1.0).contains(&p.violation_rate) {
            return Err("--violation-rate must be in [0, 1]".into());
        }
    }
    if let Some(v) = flag_value(args, "--seed") {
        p.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    Ok(p)
}

fn scenario_roster() -> String {
    library::names().join("|")
}

fn generate(args: &[String], out: &mut String) -> Result<i32, String> {
    let Some(kind) = args.first() else {
        return Err(format!(
            "generate needs a scenario name ({}); try --help",
            scenario_roster()
        ));
    };
    if kind == "--list" {
        for s in library::all() {
            let _ = writeln!(out, "{:<14} {}", s.name, s.summary);
        }
        return Ok(0);
    }
    let Some(scenario) = library::find(kind) else {
        return Err(format!("unknown scenario `{kind}` ({})", scenario_roster()));
    };
    // Default shape matches the historical CLI default of 100 steps.
    let params = scenario_params(
        args,
        ScenarioParams {
            steps: 100,
            ..Default::default()
        },
    )?;
    let generated = scenario.generate(&params);
    // Header: the matching constraint file, commented out for reference.
    let _ = writeln!(
        out,
        "# workload: {kind} steps={} entities={} events={} seed={}",
        params.steps, params.entities, params.events_per_step, params.seed
    );
    let _ = writeln!(out, "# matching constraint file:");
    for name in generated.catalog.names() {
        let Some(schema) = generated.catalog.schema_of(name) else {
            continue; // names() only lists declared relations
        };
        let attrs: Vec<String> = schema.attributes().iter().map(|a| format!("{a}")).collect();
        let _ = writeln!(out, "#   relation {name}({})", attrs.join(", "));
    }
    for c in &generated.constraints {
        let _ = writeln!(out, "#   {c}");
    }
    let _ = writeln!(out, "# injected violations: {}", generated.expected.len());
    out.push_str(&format_log(&generated.transitions));
    Ok(0)
}

fn smc_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let Some(name) = args.first() else {
        return Err(format!(
            "smc needs a scenario name ({}); try --help",
            scenario_roster()
        ));
    };
    // RTIC_SMC_SMOKE=1 shrinks the default shape and sample count so CI
    // can sweep every scenario × backend in seconds; explicit flags still
    // override the shrunken defaults.
    let smoke = std::env::var("RTIC_SMC_SMOKE").is_ok_and(|v| v == "1");
    let mut config = SmcConfig::new(name);
    config.params = scenario_params(
        args,
        if smoke {
            ScenarioParams {
                steps: 30,
                entities: 12,
                events_per_step: 3,
                violation_rate: 0.2,
                seed: 42,
            }
        } else {
            ScenarioParams::default()
        },
    )?;
    config.samples = match flag_value(args, "--samples") {
        None => {
            if smoke {
                SampleMode::Fixed(4)
            } else {
                SampleMode::Auto
            }
        }
        Some("auto") => SampleMode::Auto,
        Some(v) => SampleMode::Fixed(v.parse().map_err(|e| format!("bad --samples: {e}"))?),
    };
    let confidence: f64 = flag_value(args, "--confidence")
        .map(|v| v.parse().map_err(|e| format!("bad --confidence: {e}")))
        .transpose()?
        .unwrap_or(0.95);
    let epsilon: f64 = flag_value(args, "--epsilon")
        .map(|v| v.parse().map_err(|e| format!("bad --epsilon: {e}")))
        .transpose()?
        .unwrap_or(0.05);
    config.precision = rtic_smc::Precision::new(confidence, epsilon)?;
    if let Some(v) = flag_value(args, "--min-samples") {
        config.min_samples = v.parse().map_err(|e| format!("bad --min-samples: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--backend") {
        config.backend = rtic_smc::Backend::parse(v)?;
    }
    if let Some(v) = flag_value(args, "--oracle-every") {
        config.oracle_every = v.parse().map_err(|e| format!("bad --oracle-every: {e}"))?;
    }
    config.soak_dir = flag_value(args, "--soak-dir").map(std::path::PathBuf::from);
    config.soak_keep = args.iter().any(|a| a == "--soak-keep");
    config.soak_resume = args.iter().any(|a| a == "--resume");
    config.soak_failpoints = flag_value(args, "--failpoints").map(String::from);
    if config.backend != rtic_smc::Backend::Soak
        && (config.soak_dir.is_some()
            || config.soak_keep
            || config.soak_resume
            || config.soak_failpoints.is_some())
    {
        return Err(
            "--soak-dir/--soak-keep/--resume/--failpoints require --backend soak-serve".into(),
        );
    }

    let metrics_path = flag_value(args, "--metrics");
    let mut registry = MetricsRegistry::new();
    let report = rtic_smc::run(&config, &mut registry)?;

    out.push_str(&artifact::render_summary(&report));
    if let Some(path) = flag_value(args, "--out") {
        write_atomic(Path::new(path), artifact::render(&report).as_bytes())
            .map_err(|e| format!("cannot write artifact `{path}`: {e}"))?;
        let _ = writeln!(out, "artifact written to {path}");
    }
    if let Some(path) = metrics_path {
        let rendered = if path.ends_with(".prom") {
            registry.render_prometheus()
        } else {
            registry.render_json()
        };
        write_atomic(Path::new(path), rendered.as_bytes())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    if report.oracle_mismatches > 0 || report.soak_mismatches > 0 {
        let _ = writeln!(
            out,
            "CROSS-CHECK FAILURE: {} oracle, {} soak mismatches",
            report.oracle_mismatches, report.soak_mismatches
        );
        return Ok(1);
    }
    Ok(0)
}

fn serve_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [constraints_path] = positional.as_slice() else {
        return Err("serve needs <constraints-file>; try --help".into());
    };
    let listen_spec =
        flag_value(args, "--listen").ok_or("serve needs --listen unix:<path>|tcp:<host:port>")?;
    let mut config = ServeConfig::new(Listen::parse(listen_spec)?);
    if let Some(v) = flag_value(args, "--queue") {
        config.queue_capacity = v.parse().map_err(|e| format!("bad --queue: {e}"))?;
        if config.queue_capacity == 0 {
            return Err("--queue needs capacity for at least one update".into());
        }
    }
    if let Some(v) = flag_value(args, "--retry-ms") {
        config.retry_ms = v.parse().map_err(|e| format!("bad --retry-ms: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--write-timeout-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|e| format!("bad --write-timeout-ms: {e}"))?;
        if ms == 0 {
            return Err("--write-timeout-ms needs at least one millisecond".into());
        }
        config.write_timeout = Duration::from_millis(ms);
    }
    config.checkpoint = flag_value(args, "--checkpoint").map(String::from);
    config.checkpoint_keep = flag_value(args, "--checkpoint-keep")
        .map(|v| v.parse().map_err(|e| format!("bad --checkpoint-keep: {e}")))
        .transpose()?
        .unwrap_or(3);
    if config.checkpoint_keep == 0 {
        return Err("--checkpoint-keep needs at least one generation".into());
    }
    let checkpoint_every: Option<u64> = flag_value(args, "--checkpoint-every")
        .map(|v| {
            v.parse()
                .map_err(|e| format!("bad --checkpoint-every: {e}"))
        })
        .transpose()?;
    let checkpoint_secs: Option<f64> = flag_value(args, "--checkpoint-secs")
        .map(|v| v.parse().map_err(|e| format!("bad --checkpoint-secs: {e}")))
        .transpose()?;
    if (checkpoint_every.is_some() || checkpoint_secs.is_some()) && config.checkpoint.is_none() {
        return Err("--checkpoint-every/--checkpoint-secs require --checkpoint".into());
    }
    config.policy = CheckpointPolicy {
        every_steps: checkpoint_every,
        every: checkpoint_secs.map(Duration::from_secs_f64),
    };
    config.resume = args.iter().any(|a| a == "--resume");
    if config.resume && config.checkpoint.is_none() {
        return Err("--resume requires --checkpoint (the rotation to recover from)".into());
    }
    config.sharding = match flag_value(args, "--shard") {
        None | Some("off") => false,
        Some("auto") => true,
        Some(other) => return Err(format!("bad --shard `{other}` (auto|off)")),
    };
    config.shard_evict = flag_value(args, "--shard-evict")
        .map(|v| v.parse().map_err(|e| format!("bad --shard-evict: {e}")))
        .transpose()?;
    if config.shard_evict.is_some() && !config.sharding {
        return Err("--shard-evict requires --shard auto".into());
    }
    if let Some(0) = config.shard_evict {
        return Err("--shard-evict needs at least one step of idleness".into());
    }
    config.parallelism = match flag_value(args, "--parallel") {
        None => None,
        Some("auto") => Some(Parallelism::Auto),
        Some(n) => {
            let n: usize = n
                .parse()
                .map_err(|e| format!("bad --parallel `{n}`: {e}"))?;
            if n == 0 {
                return Err("--parallel needs at least one worker (or `auto`)".into());
            }
            Some(Parallelism::N(n))
        }
    };
    if let Some(v) = flag_value(args, "--batch") {
        config.batch = v.parse().map_err(|e| format!("bad --batch: {e}"))?;
        if config.batch == 0 {
            return Err("--batch needs at least one update per batch".into());
        }
    }
    config.vectorize = args.iter().any(|a| a == "--vectorize");
    config.faults = match flag_value(args, "--failpoints") {
        Some(spec) => FailPlan::parse(spec).map_err(|e| format!("bad --failpoints: {e}"))?,
        None => {
            FailPlan::from_env().map_err(|e| format!("bad {}: {e}", rtic_resilience::ENV_VAR))?
        }
    };
    config.report_path = flag_value(args, "--report").map(String::from);
    config.metrics_path = flag_value(args, "--metrics").map(String::from);

    let extra_constraint_paths = flag_values(args, "--constraints");
    let file = load_merged_constraints(constraints_path, &extra_constraint_paths)?;
    let catalog = Arc::new(file.catalog.clone());
    rtic_server::serve(file.constraints, catalog, config, out)
}

fn send_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [log_path] = positional.as_slice() else {
        return Err("send needs <log-file>; try --help".into());
    };
    let connect_spec =
        flag_value(args, "--connect").ok_or("send needs --connect unix:<path>|tcp:<host:port>")?;
    let listen = Listen::parse(connect_spec)?;
    let quiet = args.iter().any(|a| a == "--quiet");
    let do_drain = args.iter().any(|a| a == "--drain");
    let connect_timeout: u64 = flag_value(args, "--connect-timeout-ms")
        .map(|v| {
            v.parse()
                .map_err(|e| format!("bad --connect-timeout-ms: {e}"))
        })
        .transpose()?
        .unwrap_or(5000);

    let text = std::fs::read_to_string(log_path)
        .map_err(|e| format!("cannot read log file `{log_path}`: {e}"))?;
    let mut client = Client::connect_retry(&listen, Duration::from_millis(connect_timeout))?;
    let mut sent = 0u64;
    let mut replayed = 0u64;
    let mut witnesses = 0u64;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let reply = client
            .send_update(trimmed)
            .map_err(|e| format!("{log_path}: sending `{trimmed}`: {e}"))?;
        sent += 1;
        if reply.ok == "replayed" {
            replayed += 1;
        } else {
            witnesses += reply.ok.parse::<u64>().unwrap_or(0);
        }
        if !quiet {
            for violation in &reply.violations {
                let _ = writeln!(out, "{violation}");
            }
        }
    }
    if replayed > 0 {
        let _ = writeln!(
            out,
            "{replayed} update(s) acked as already covered by the server's checkpoint"
        );
    }
    if client.busy_retries() > 0 {
        let _ = writeln!(
            out,
            "absorbed {} BUSY rejection(s) with backoff",
            client.busy_retries()
        );
    }
    if do_drain {
        let drained = client.drain()?;
        let _ = writeln!(out, "server {drained}");
    }
    let _ = writeln!(
        out,
        "sent {sent} update(s): {witnesses} violation witness(es)"
    );
    Ok(if witnesses > 0 { 1 } else { 0 })
}
