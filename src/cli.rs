//! The `rtic` command-line interface.
//!
//! Thin, testable argument handling over the library: the binary in
//! `src/bin/rtic.rs` forwards to [`run`], and the CLI integration tests
//! call [`run`] directly with captured output.
//!
//! ```text
//! rtic check <constraints.rtic> <log.rticlog> [--checker NAME] [--quiet] [--stats] [--explain]
//!            [--constraints FILE]... [--parallel N|auto]
//!            [--checkpoint FILE] [--resume FILE] [--metrics FILE] [--trace FILE|-]
//!            [--sample-space N]
//! rtic report <metrics.json>
//! rtic explain <constraints.rtic>
//! rtic generate <reservations|library|monitor|audit|random> [--steps N] [--seed N] [--violation-rate R]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use rtic_active::ActiveChecker;
use rtic_core::observe;
use rtic_core::{checkpoint, explain, Checker, CompiledConstraint, EncodingOptions};
use rtic_core::{ConstraintSet, IncrementalChecker, NaiveChecker, Parallelism, WindowedChecker};
use rtic_history::log::{format_log, LogReader};
use rtic_history::Transition;
use rtic_obs::{json, report, MetricsRegistry, MultiObserver, SpaceSampler, TraceWriter};
use rtic_relation::Catalog;
use rtic_temporal::parser::{parse_file, ConstraintFile};
use rtic_workload::{Audit, Library, Monitor, RandomWorkload, Reservations};

const USAGE: &str = "\
rtic — real-time integrity constraints (Chomicki, PODS 1992)

USAGE:
  rtic check <constraints-file> <log-file> [--checker incremental|naive|windowed|active]
             [--constraints FILE]... [--parallel N|auto]
             [--quiet] [--stats] [--explain] [--checkpoint FILE] [--resume FILE]
             [--metrics FILE] [--trace FILE|-] [--sample-space N]
  rtic report <metrics-file>
  rtic explain <constraints-file>
  rtic generate <reservations|library|monitor|audit|random> [--steps N] [--seed N]
             [--violation-rate R]

The constraints file declares relations and deny/assert constraints; the
log file is one `@time +rel(values…) -rel(values…)` line per transition,
consumed streaming. `generate` writes a log (plus its constraint file as
`# commented` header lines) to standard output. `--checkpoint` saves the
incremental checkers' bounded state after the run; `--resume` restores it
before the run, so a log can be checked in consecutive segments
(incremental checker only).

Multi-constraint fleets: `--constraints FILE` (repeatable) merges more
constraint files into the run — relation declarations shared between
files must agree exactly, constraint names must be unique. `--parallel N`
(or `auto`) checks the whole fleet as one shared-state constraint set
with relevance dispatch, evaluating affected constraints on up to N
worker threads; reports and telemetry are identical to the sequential
run. Requires the incremental checker; not combinable with
`--checkpoint`/`--resume`.

Telemetry: `--metrics FILE` writes a metrics snapshot after the run (JSON,
or Prometheus text when FILE ends in `.prom`); `--trace FILE` appends one
JSON line per step event (`-` traces to stderr); `--sample-space N`
records every checker's space footprint every N steps. `rtic report`
renders a JSON metrics snapshot as a summary table.";

/// Runs the CLI; returns the process exit code. All output goes through
/// `out` so tests can capture it.
pub fn run(args: &[String], out: &mut String) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..], out),
        Some("report") => report_cmd(&args[1..], out),
        Some("explain") => explain_cmd(&args[1..], out),
        Some("generate") => generate(&args[1..], out),
        Some("--help") | Some("-h") | None => {
            let _ = writeln!(out, "{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`; try --help")),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// All values of a repeatable `--flag VALUE` pair, in order.
fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn load_constraints(path: &str) -> Result<ConstraintFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read constraints file `{path}`: {e}"))?;
    parse_file(&text).map_err(|e| format!("{path}:{e}"))
}

/// The two evaluation engines behind `rtic check`: one independent
/// checker per constraint (any backend), or a shared-state
/// [`ConstraintSet`] fleet with relevance dispatch and optional worker
/// threads (`--parallel`).
enum CheckEngine {
    Independent(Vec<Box<dyn Checker>>),
    Fleet(Box<ConstraintSet>),
}

#[allow(clippy::too_many_arguments)]
fn build_checkers(
    file: &ConstraintFile,
    catalog: &Arc<Catalog>,
    checker_name: &str,
    show_explain: bool,
    resume_path: Option<&str>,
    resume_sections: &[String],
    registry: &mut MetricsRegistry,
    trace: &mut Option<TraceWriter>,
    out: &mut String,
) -> Result<Vec<Box<dyn Checker>>, String> {
    let mut checkers: Vec<Box<dyn Checker>> = Vec::new();
    for c in &file.constraints {
        let compiled = CompiledConstraint::compile(c.clone(), Arc::clone(catalog))
            .map_err(|e| format!("constraint `{}`: {e}", c.name))?;
        if show_explain {
            let _ = writeln!(out, "{}", explain::explain(&compiled));
        }
        checkers.push(match checker_name {
            "incremental" => {
                let section = resume_sections
                    .iter()
                    .find(|s| s.lines().any(|l| l == format!("constraint {}", c.name)));
                match (resume_path, section) {
                    (Some(path), None) => {
                        return Err(format!(
                            "checkpoint `{path}` has no section for constraint `{}`",
                            c.name
                        ))
                    }
                    (Some(_), Some(section)) => {
                        let mut obs = MultiObserver::new().with(registry);
                        if let Some(t) = trace.as_mut() {
                            obs.push(t);
                        }
                        Box::new(
                            checkpoint::restore_observed(
                                c.clone(),
                                Arc::clone(catalog),
                                EncodingOptions::default(),
                                section,
                                &mut obs,
                            )
                            .map_err(|e| e.to_string())?,
                        )
                    }
                    (None, _) => Box::new(IncrementalChecker::from_compiled(
                        compiled,
                        EncodingOptions::default(),
                    )),
                }
            }
            "naive" => Box::new(NaiveChecker::from_compiled(compiled)),
            "windowed" => Box::new(WindowedChecker::from_compiled(compiled)),
            "active" => Box::new(ActiveChecker::from_compiled(compiled)),
            other => return Err(format!("unknown checker `{other}`")),
        });
    }
    Ok(checkers)
}

fn check(args: &[String], out: &mut String) -> Result<i32, String> {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [constraints_path, log_path] = positional.as_slice() else {
        return Err("check needs <constraints-file> and <log-file>; try --help".into());
    };
    let quiet = args.iter().any(|a| a == "--quiet");
    let stats = args.iter().any(|a| a == "--stats");
    let show_explain = args.iter().any(|a| a == "--explain");
    let checker_name = flag_value(args, "--checker").unwrap_or("incremental");
    let checkpoint_path = flag_value(args, "--checkpoint");
    let resume_path = flag_value(args, "--resume");
    if (checkpoint_path.is_some() || resume_path.is_some()) && checker_name != "incremental" {
        return Err("--checkpoint/--resume require the incremental checker".into());
    }
    let parallelism = match flag_value(args, "--parallel") {
        None => None,
        Some("auto") => Some(Parallelism::Auto),
        Some(n) => {
            let n: usize = n
                .parse()
                .map_err(|e| format!("bad --parallel `{n}`: {e}"))?;
            if n == 0 {
                return Err("--parallel needs at least one worker (or `auto`)".into());
            }
            Some(Parallelism::N(n))
        }
    };
    if parallelism.is_some() {
        if checker_name != "incremental" {
            return Err("--parallel requires the incremental checker".into());
        }
        if checkpoint_path.is_some() || resume_path.is_some() {
            return Err("--checkpoint/--resume cannot be combined with --parallel".into());
        }
    }
    let extra_constraint_paths = flag_values(args, "--constraints");
    let metrics_path = flag_value(args, "--metrics");
    let trace_path = flag_value(args, "--trace");
    let sample_every: u64 = flag_value(args, "--sample-space")
        .map(|v| v.parse().map_err(|e| format!("bad --sample-space: {e}")))
        .transpose()?
        .unwrap_or(0);

    // Every run aggregates into a registry; --stats, --metrics and the
    // sampler all read from the same event stream.
    let mut registry = MetricsRegistry::new();
    let mut trace = match trace_path {
        Some("-") => Some(TraceWriter::to_stderr()),
        Some(path) => Some(
            TraceWriter::to_file(path)
                .map_err(|e| format!("cannot open trace file `{path}`: {e}"))?,
        ),
        None => None,
    };
    let mut sampler = SpaceSampler::new(sample_every);

    let mut file = load_constraints(constraints_path)?;
    for path in &extra_constraint_paths {
        let extra = load_constraints(path)?;
        file.catalog
            .try_merge(&extra.catalog)
            .map_err(|e| format!("`{path}`: {e}"))?;
        for c in extra.constraints {
            if file.constraints.iter().any(|have| have.name == c.name) {
                return Err(format!(
                    "`{path}`: constraint `{}` is already defined by an earlier file",
                    c.name
                ));
            }
            file.constraints.push(c);
        }
    }
    if file.constraints.is_empty() {
        return Err(format!("`{constraints_path}` declares no constraints"));
    }
    let catalog = Arc::new(file.catalog.clone());

    let resume_sections: Vec<String> = match resume_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read checkpoint `{path}`: {e}"))?;
            split_checkpoints(&text)
        }
        None => Vec::new(),
    };

    let mut engine = if let Some(par) = parallelism {
        let set = ConstraintSet::new(file.constraints.iter().cloned(), Arc::clone(&catalog))
            .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
            .with_parallelism(par);
        if show_explain {
            for compiled in set.compiled() {
                let _ = writeln!(out, "{}", explain::explain(compiled));
            }
        }
        CheckEngine::Fleet(Box::new(set))
    } else {
        CheckEngine::Independent(build_checkers(
            &file,
            &catalog,
            checker_name,
            show_explain,
            resume_path,
            &resume_sections,
            &mut registry,
            &mut trace,
            out,
        )?)
    };

    // Stream the log: one transition at a time, never the whole file.
    let log_file = std::fs::File::open(log_path)
        .map_err(|e| format!("cannot read log file `{log_path}`: {e}"))?;
    let mut reader = LogReader::new(std::io::BufReader::new(log_file));
    let mut total_violations = 0usize;
    let mut violated_states = 0usize;
    let mut transitions = 0usize;
    let mut last_time = None;
    while let Some(item) = reader.next() {
        let tr: Transition = item.map_err(|e| format!("{log_path}:{e}"))?;
        let line = reader.lines_read();
        let step_index = transitions as u64;
        transitions += 1;
        last_time = Some(tr.time);
        let mut obs = MultiObserver::new().with(&mut registry);
        if let Some(t) = trace.as_mut() {
            obs.push(t);
        }
        let reports = match &mut engine {
            CheckEngine::Independent(checkers) => {
                observe::step_all(checkers, tr.time, &tr.update, &mut obs)
            }
            CheckEngine::Fleet(set) => set.step_observed(tr.time, &tr.update, &mut obs),
        }
        .map_err(|e| format!("{log_path}:line {line}: at {}: {e}", tr.time))?;
        match &mut engine {
            CheckEngine::Independent(checkers) => {
                sampler.after_step(checkers, tr.time, step_index, &mut obs);
            }
            CheckEngine::Fleet(set) => {
                if sampler.due(step_index) {
                    set.sample_space(step_index, &mut obs);
                    sampler.note_sampled();
                }
            }
        }
        let mut state_bad = false;
        for report in &reports {
            if !report.ok() {
                total_violations += report.violation_count();
                state_bad = true;
                if !quiet {
                    let _ = writeln!(out, "{report}");
                }
            }
        }
        if state_bad {
            violated_states += 1;
        }
    }
    {
        // Final footprint reading, so --stats and the metrics snapshot
        // reflect end-of-run space even without --sample-space.
        let mut obs = MultiObserver::new().with(&mut registry);
        if let Some(t) = trace.as_mut() {
            obs.push(t);
        }
        match &engine {
            CheckEngine::Independent(checkers) => observe::sample_space(
                checkers,
                last_time.unwrap_or(rtic_temporal::TimePoint(0)),
                transitions as u64,
                &mut obs,
            ),
            CheckEngine::Fleet(set) => set.sample_space(transitions as u64, &mut obs),
        }
    }
    if let Some(path) = checkpoint_path {
        // --checkpoint forces the incremental independent backend,
        // checked up top.
        let CheckEngine::Independent(checkers) = &engine else {
            return Err("--checkpoint cannot be combined with --parallel".into());
        };
        let mut text = String::new();
        for checker in checkers {
            let inc = checker
                .as_any()
                .downcast_ref::<IncrementalChecker>()
                .ok_or("--checkpoint requires the incremental checker")?;
            let mut obs = MultiObserver::new().with(&mut registry);
            if let Some(t) = trace.as_mut() {
                obs.push(t);
            }
            text.push_str(&checkpoint::save_observed(inc, &mut obs));
        }
        std::fs::write(path, text).map_err(|e| format!("cannot write checkpoint `{path}`: {e}"))?;
        let _ = writeln!(out, "checkpoint written to {path}");
    }
    let n_constraints = match &engine {
        CheckEngine::Independent(checkers) => checkers.len(),
        CheckEngine::Fleet(set) => set.len(),
    };
    let _ = writeln!(
        out,
        "checked {} transitions against {} constraint(s) [{}]: {} violation witness(es) over {} state(s)",
        transitions,
        n_constraints,
        checker_name,
        total_violations,
        violated_states,
    );
    if stats {
        // Uniform across backends, read back from the registry (fed by
        // the final space sample above).
        for (constraint, _, space) in registry.latest_space_by_constraint() {
            let _ = writeln!(out, "space[{constraint}]: {space}");
            let inc = match &engine {
                CheckEngine::Independent(checkers) => checkers
                    .iter()
                    .find(|ch| ch.constraint().name.as_str() == constraint)
                    .and_then(|ch| ch.as_any().downcast_ref::<IncrementalChecker>()),
                CheckEngine::Fleet(_) => None,
            };
            if let Some(inc) = inc {
                for stat in inc.node_stats() {
                    let _ = writeln!(
                        out,
                        "  node `{}`: {} key(s), {} timestamp(s)",
                        stat.formula, stat.keys, stat.timestamps
                    );
                }
            }
        }
        if let CheckEngine::Fleet(set) = &engine {
            let d = set.dispatch_stats();
            let _ = writeln!(
                out,
                "dispatch: {} evaluation(s) total — {} affected, {} absorbed as quiescent ticks, {} quiescent but fully evaluated",
                d.total(),
                d.affected,
                d.skipped,
                d.quiescent_full,
            );
        }
    }
    if let Some(path) = metrics_path {
        let rendered = if path.ends_with(".prom") {
            registry.render_prometheus()
        } else {
            registry.render_json()
        };
        std::fs::write(path, rendered)
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    if let Some(t) = trace {
        let lines = t.lines_written();
        t.finish()?;
        if let Some(path) = trace_path.filter(|p| *p != "-") {
            let _ = writeln!(out, "trace written to {path} ({lines} events)");
        }
    }
    Ok(if total_violations > 0 { 1 } else { 0 })
}

fn report_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let [path] = args else {
        return Err("report needs <metrics-file>; try --help".into());
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read metrics file `{path}`: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    out.push_str(&report::render(&doc)?);
    Ok(0)
}

/// Splits a multi-constraint checkpoint file back into per-checker
/// sections (each starts with the version header).
fn split_checkpoints(text: &str) -> Vec<String> {
    let mut sections: Vec<String> = Vec::new();
    for line in text.lines() {
        if line == "rtic-checkpoint v1" {
            sections.push(String::new());
        }
        if let Some(current) = sections.last_mut() {
            current.push_str(line);
            current.push('\n');
        }
    }
    sections
}

fn explain_cmd(args: &[String], out: &mut String) -> Result<i32, String> {
    let [path] = args else {
        return Err("explain needs <constraints-file>; try --help".into());
    };
    let file = load_constraints(path)?;
    let catalog = Arc::new(file.catalog.clone());
    for c in &file.constraints {
        let compiled = CompiledConstraint::compile(c.clone(), Arc::clone(&catalog))
            .map_err(|e| format!("constraint `{}`: {e}", c.name))?;
        let _ = writeln!(out, "{}", explain::explain(&compiled));
    }
    Ok(0)
}

fn generate(args: &[String], out: &mut String) -> Result<i32, String> {
    let Some(kind) = args.first() else {
        return Err("generate needs a workload name; try --help".into());
    };
    let steps: usize = flag_value(args, "--steps")
        .map(|v| v.parse().map_err(|e| format!("bad --steps: {e}")))
        .transpose()?
        .unwrap_or(100);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let rate: f64 = flag_value(args, "--violation-rate")
        .map(|v| v.parse().map_err(|e| format!("bad --violation-rate: {e}")))
        .transpose()?
        .unwrap_or(0.05);

    let generated = match kind.as_str() {
        "reservations" => Reservations {
            steps,
            seed,
            violation_rate: rate,
            ..Default::default()
        }
        .generate(),
        "library" => Library {
            steps,
            seed,
            violation_rate: rate,
            ..Default::default()
        }
        .generate(),
        "monitor" => Monitor {
            steps,
            seed,
            violation_rate: rate,
            ..Default::default()
        }
        .generate(),
        "audit" => Audit {
            steps,
            seed,
            unapproved_rate: rate,
            ..Default::default()
        }
        .generate(),
        "random" => RandomWorkload {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        other => return Err(format!("unknown workload `{other}`")),
    };
    // Header: the matching constraint file, commented out for reference.
    let _ = writeln!(out, "# workload: {kind} steps={steps} seed={seed}");
    let _ = writeln!(out, "# matching constraint file:");
    for name in generated.catalog.names() {
        let Some(schema) = generated.catalog.schema_of(name) else {
            continue; // names() only lists declared relations
        };
        let attrs: Vec<String> = schema.attributes().iter().map(|a| format!("{a}")).collect();
        let _ = writeln!(out, "#   relation {name}({})", attrs.join(", "));
    }
    for c in &generated.constraints {
        let _ = writeln!(out, "#   {c}");
    }
    let _ = writeln!(out, "# injected violations: {}", generated.expected.len());
    out.push_str(&format_log(&generated.transitions));
    Ok(0)
}
