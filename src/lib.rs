//! Facade crate: re-exports the whole rtic workspace under one name, and
//! hosts the `rtic` command-line interface.
//!
//! ```
//! use rtic::core::{Checker, IncrementalChecker};
//! use rtic::relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic::temporal::parser::parse_constraint;
//! use rtic::temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new().with("p", Schema::of(&[("x", Sort::Str)])).unwrap(),
//! );
//! let c = parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap();
//! let mut checker = IncrementalChecker::new(c, catalog).unwrap();
//! checker
//!     .step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
//!     .unwrap();
//! let report = checker.step(TimePoint(2), &Update::new()).unwrap();
//! assert_eq!(report.violation_count(), 1); // p(a) held at both recent states
//! ```
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cli;

pub use rtic_active as active;
pub use rtic_core as core;
pub use rtic_history as history;
pub use rtic_obs as obs;
pub use rtic_relation as relation;
pub use rtic_resilience as resilience;
pub use rtic_server as server;
pub use rtic_temporal as temporal;
pub use rtic_workload as workload;
