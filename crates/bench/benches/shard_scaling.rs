//! T9 — step latency of the entity-key sharded data plane vs the
//! unsharded fleet as the number of distinct entities grows: sharding
//! should keep per-step cost tied to the touched shard, not the total
//! population, while staying report-identical to the unsharded run.
//!
//! `RTIC_BENCH_SMOKE=1` shrinks the sweep to one small key count — used
//! by CI to keep the bench compiling and running without paying for a
//! full measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_bench::experiments::{shard_catalog, shard_constraint, shard_stream};
use rtic_core::{ConstraintSet, Parallelism};
use std::sync::Arc;

const WARMUP_STEPS: usize = 128;

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("RTIC_BENCH_SMOKE").is_ok();
    let key_counts: &[usize] = if smoke { &[8] } else { &[8, 64, 256] };
    let mut group = c.benchmark_group("t9_shard_scaling");
    group.sample_size(10);
    for &keys in key_counts {
        let catalog = shard_catalog();
        let constraint = shard_constraint();
        let warmup = shard_stream(keys, WARMUP_STEPS, 42);
        // The steady-state updates the warmed-up sets keep replaying;
        // times keep advancing so windows stay live.
        let steady = shard_stream(keys, 96, 43);

        for (label, sharded, par) in [
            ("unsharded", false, Parallelism::Sequential),
            ("sharded", true, Parallelism::Sequential),
            ("sharded_4_workers", true, Parallelism::N(4)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, keys), &keys, |b, _| {
                let mut set = ConstraintSet::new([constraint.clone()], Arc::clone(&catalog))
                    .map_err(|(_, e)| e)
                    .unwrap()
                    .with_sharding(sharded)
                    .with_parallelism(par);
                for tr in &warmup {
                    set.step(tr.time, &tr.update).unwrap();
                }
                let mut t = WARMUP_STEPS as u64;
                let mut i = 0usize;
                b.iter(|| {
                    t += 1;
                    let tr = &steady[i];
                    i = (i + 1) % steady.len();
                    set.step(t.into(), &tr.update).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
