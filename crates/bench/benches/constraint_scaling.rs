//! T8 — fleet step latency vs #constraints at a fixed relevance fraction:
//! a [`ConstraintSet`] with relevance dispatch should stay near-flat as
//! quiescent constraints are absorbed, while `n` independent checkers pay
//! for every constraint on every step.
//!
//! `RTIC_BENCH_SMOKE=1` shrinks the sweep to one tiny fleet — used by CI
//! to keep the bench compiling and running without paying for a full
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_bench::experiments::{fleet_catalog, fleet_constraints, fleet_stream};
use rtic_core::{Checker, ConstraintSet, IncrementalChecker, Parallelism};
use rtic_relation::Update;
use std::sync::Arc;

const WARMUP_STEPS: usize = 64;

/// The rotating updates the warmed-up engines keep stepping through.
fn steady_updates(n: usize, affected: usize) -> Vec<Update> {
    fleet_stream(n, affected, 6)
        .into_iter()
        .map(|tr| tr.update)
        .collect()
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("RTIC_BENCH_SMOKE").is_ok();
    let fleets: &[usize] = if smoke { &[4] } else { &[4, 16, 64] };
    let mut group = c.benchmark_group("t8_constraint_scaling");
    group.sample_size(10);
    for &n in fleets {
        let affected = (n / 4).max(1);
        let cat = fleet_catalog(n);
        let constraints = fleet_constraints(n);
        let warmup = fleet_stream(n, affected, WARMUP_STEPS);
        let updates = steady_updates(n, affected);

        group.bench_with_input(BenchmarkId::new("independent", n), &n, |b, _| {
            let mut singles: Vec<IncrementalChecker> = constraints
                .iter()
                .map(|c| IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap())
                .collect();
            for tr in &warmup {
                for s in &mut singles {
                    s.step(tr.time, &tr.update).unwrap();
                }
            }
            let mut t = WARMUP_STEPS as u64;
            let mut i = 0usize;
            b.iter(|| {
                t += 1;
                i = (i + 1) % updates.len();
                for s in &mut singles {
                    s.step(t.into(), &updates[i]).unwrap();
                }
            })
        });

        for (label, par) in [
            ("set_dispatch", Parallelism::Sequential),
            ("set_4_workers", Parallelism::N(4)),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut set = ConstraintSet::new(constraints.iter().cloned(), Arc::clone(&cat))
                    .map_err(|(_, e)| e)
                    .unwrap()
                    .with_parallelism(par);
                for tr in &warmup {
                    set.step(tr.time, &tr.update).unwrap();
                }
                let mut t = WARMUP_STEPS as u64;
                let mut i = 0usize;
                b.iter(|| {
                    t += 1;
                    i = (i + 1) % updates.len();
                    set.step(t.into(), &updates[i]).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
