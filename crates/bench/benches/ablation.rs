//! T6 — stamp-specialization ablation: a=0 latest-only vs general deque.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_core::{Checker, EncodingOptions, IncrementalChecker};
use rtic_workload::RandomWorkload;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t6_ablation");
    group.sample_size(10);
    for b_bound in [8u64, 64] {
        let g = RandomWorkload {
            steps: 150,
            bound: b_bound,
            ..Default::default()
        }
        .generate();
        let constraint = g.constraints[0].clone();
        group.bench_with_input(
            BenchmarkId::new("specialized", b_bound),
            &b_bound,
            |bch, _| {
                bch.iter(|| {
                    let mut ck =
                        IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog))
                            .unwrap();
                    for tr in &g.transitions {
                        ck.step(tr.time, &tr.update).unwrap();
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("general_deque", b_bound),
            &b_bound,
            |bch, _| {
                bch.iter(|| {
                    let mut ck = IncrementalChecker::with_options(
                        constraint.clone(),
                        Arc::clone(&g.catalog),
                        EncodingOptions {
                            disable_stamp_specialization: true,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                    for tr in &g.transitions {
                        ck.step(tr.time, &tr.update).unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
