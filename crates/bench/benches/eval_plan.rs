//! T9 — compiled evaluation plans vs the interpreting evaluator, on the
//! paper's unbounded motivating constraint (the F1 workload), measured the
//! same way as F1: one step taken after an n-length warmup. Plan-once/
//! execute-many stepping amortizes conjunct ordering, join column maps,
//! and projection vectors across steps, memoizes database-pure relation
//! scans by database generation, and skips idempotent window re-recording
//! on unchanged extensions — so steady-state planned stepping beats
//! re-interpreting the formula tree on every transition. The `vectorized`
//! entry additionally turns on the columnar kernels with the
//! per-relation-generation memo and monotone probe partitions
//! (`EncodingOptions::vectorize`).
//!
//! `RTIC_BENCH_SMOKE=1` shrinks the sweep to one short history — used by
//! CI to keep the bench compiling and running without paying for a full
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_core::{Checker, EncodingOptions, IncrementalChecker};
use rtic_temporal::parser::parse_constraint;
use rtic_workload::Reservations;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("RTIC_BENCH_SMOKE").is_ok();
    let sweep: &[usize] = if smoke { &[50] } else { &[200, 800] };
    let mut group = c.benchmark_group("t9_eval_plan");
    group.sample_size(10);
    let constraint = parse_constraint(
        "deny unconfirmed_ever: reserved(p, f) && once[2,*] reserved_at(p, f) \
         && !once confirmed(p, f)",
    )
    .unwrap();
    for &n in sweep {
        let g = Reservations {
            steps: n,
            ..Default::default()
        }
        .generate();
        let options = [
            ("planned", EncodingOptions::default()),
            (
                "vectorized",
                EncodingOptions {
                    vectorize: true,
                    ..Default::default()
                },
            ),
            (
                "interpreted",
                EncodingOptions {
                    interpret_eval: true,
                    ..Default::default()
                },
            ),
        ];
        for (name, opts) in options {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut ck = IncrementalChecker::with_options(
                    constraint.clone(),
                    Arc::clone(&g.catalog),
                    opts,
                )
                .unwrap();
                for tr in &g.transitions {
                    ck.step(tr.time, &tr.update).unwrap();
                }
                let mut t = g.transitions.last().unwrap().time.0;
                b.iter(|| {
                    t += 1;
                    ck.step(t.into(), &rtic_relation::Update::new()).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
