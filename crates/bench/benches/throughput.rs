//! F3 — end-to-end throughput on the three domain workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtic_core::{Checker, IncrementalChecker};
use rtic_workload::{Library, Monitor, Reservations};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_throughput");
    group.sample_size(10);
    let workloads = vec![
        (
            "reservations",
            Reservations {
                steps: 200,
                ..Default::default()
            }
            .generate(),
        ),
        (
            "library",
            Library {
                steps: 200,
                ..Default::default()
            }
            .generate(),
        ),
        (
            "monitor",
            Monitor {
                steps: 200,
                ..Default::default()
            }
            .generate(),
        ),
    ];
    for (name, g) in &workloads {
        let constraint = g.constraints[0].clone();
        group.throughput(Throughput::Elements(g.transitions.len() as u64));
        group.bench_with_input(BenchmarkId::new("incremental", name), name, |b, _| {
            b.iter(|| {
                let mut ck =
                    IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
                for tr in &g.transitions {
                    ck.step(tr.time, &tr.update).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
