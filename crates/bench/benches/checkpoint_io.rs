//! Periodic-checkpoint overhead: stepping a constraint fleet through the
//! reservations workload while durably checkpointing every N steps,
//! against the checkpoint-free baseline. Each checkpoint serializes the
//! whole fleet into a checksummed v2 container and writes it atomically
//! (temp file + fsync + rename) through a 3-deep rotation set, so this
//! measures the real `--checkpoint-every N` cost, fsyncs included.
//!
//! `RTIC_BENCH_SMOKE=1` shrinks the workload and sweeps one interval —
//! used by CI to keep the bench compiling and honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_core::{checkpoint, ConstraintSet};
use rtic_resilience::{container, FailPlan, Rotation};
use rtic_temporal::parser::parse_constraint;
use rtic_workload::Reservations;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let smoke = std::env::var("RTIC_BENCH_SMOKE").is_ok();
    let steps = if smoke { 60 } else { 400 };
    let intervals: &[u64] = if smoke { &[10] } else { &[10, 50, 200] };
    let g = Reservations {
        steps,
        new_per_step: 2,
        deadline: 5,
        violation_rate: 0.02,
        seed: 42,
    }
    .generate();
    let constraints: Vec<_> = [
        "deny unconfirmed_ever: reserved(p, f) && once[2,*] reserved_at(p, f) \
         && !once confirmed(p, f)",
        "deny reconfirm: confirmed(p, f) && once[1,*] confirmed(p, f)",
    ]
    .iter()
    .map(|body| parse_constraint(body).unwrap())
    .collect();
    let dir = std::env::temp_dir().join(format!("rtic-checkpoint-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut group = c.benchmark_group("checkpoint_io");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("no_checkpoint", steps), &g, |b, g| {
        b.iter(|| {
            let mut set =
                ConstraintSet::new(constraints.iter().cloned(), Arc::clone(&g.catalog)).unwrap();
            for tr in &g.transitions {
                set.step(tr.time, &tr.update).unwrap();
            }
            set.space().retained_units()
        })
    });
    for &every in intervals {
        let rotation = Rotation::new(dir.join(format!("every-{every}.ckpt")), 3);
        group.bench_with_input(BenchmarkId::new("checkpoint_every", every), &g, |b, g| {
            b.iter(|| {
                let mut set =
                    ConstraintSet::new(constraints.iter().cloned(), Arc::clone(&g.catalog))
                        .unwrap();
                for (i, tr) in g.transitions.iter().enumerate() {
                    set.step(tr.time, &tr.update).unwrap();
                    if (i as u64 + 1).is_multiple_of(every) {
                        let sections = checkpoint::save_set(&set);
                        let sealed =
                            container::seal(sections.iter().map(|(_, text)| text.as_str()));
                        rotation
                            .write(&sealed, &FailPlan::none(), "checkpoint.write")
                            .unwrap();
                    }
                }
                set.space().retained_units()
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
