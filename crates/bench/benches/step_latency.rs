//! F1 — per-step latency vs history length, on the paper's unbounded
//! motivating constraint: the incremental checker's step time stays flat
//! while naive re-evaluation grows with the stored history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_core::{Checker, IncrementalChecker, NaiveChecker};
use rtic_temporal::parser::parse_constraint;
use rtic_workload::Reservations;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_step_latency");
    group.sample_size(10);
    let constraint = parse_constraint(
        "deny unconfirmed_ever: reserved(p, f) && once[2,*] reserved_at(p, f) \
         && !once confirmed(p, f)",
    )
    .unwrap();
    for n in [200usize, 800] {
        let g = Reservations {
            steps: n,
            ..Default::default()
        }
        .generate();
        // Benchmark ONE step taken after an n-length warmup, per checker.
        group.bench_with_input(BenchmarkId::new("incremental_after_n", n), &n, |b, _| {
            let mut ck =
                IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            for tr in &g.transitions {
                ck.step(tr.time, &tr.update).unwrap();
            }
            let mut t = g.transitions.last().unwrap().time.0;
            b.iter(|| {
                t += 1;
                ck.step(t.into(), &rtic_relation::Update::new()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_after_n", n), &n, |b, _| {
            let mut ck = NaiveChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            for tr in &g.transitions {
                ck.step(tr.time, &tr.update).unwrap();
            }
            let mut t = g.transitions.last().unwrap().time.0;
            b.iter(|| {
                t += 1;
                ck.step(t.into(), &rtic_relation::Update::new()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
