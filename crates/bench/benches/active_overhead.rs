//! T5 — constant-factor overhead of the trigger-table realization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_active::ActiveChecker;
use rtic_core::{Checker, IncrementalChecker};
use rtic_workload::Reservations;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_active_overhead");
    group.sample_size(10);
    let g = Reservations {
        steps: 200,
        ..Default::default()
    }
    .generate();
    let constraint = g.constraints[0].clone();
    group.bench_function(BenchmarkId::new("direct", 200), |b| {
        b.iter(|| {
            let mut ck =
                IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            for tr in &g.transitions {
                ck.step(tr.time, &tr.update).unwrap();
            }
        })
    });
    group.bench_function(BenchmarkId::new("active", 200), |b| {
        b.iter(|| {
            let mut ck = ActiveChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            for tr in &g.transitions {
                ck.step(tr.time, &tr.update).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
