//! Observation hooks must be free when disabled: `step` vs
//! `step_observed(NopObserver)` on the motivating reservations workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_core::{Checker, IncrementalChecker, NopObserver};
use rtic_temporal::parser::parse_constraint;
use rtic_workload::Reservations;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let g = Reservations {
        steps: 300,
        new_per_step: 2,
        deadline: 5,
        violation_rate: 0.02,
        seed: 42,
    }
    .generate();
    let constraint = parse_constraint(
        "deny unconfirmed_ever: reserved(p, f) && once[2,*] reserved_at(p, f) \
         && !once confirmed(p, f)",
    )
    .unwrap();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("plain_step", 300), &g, |b, g| {
        b.iter(|| {
            let mut checker =
                IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            for tr in &g.transitions {
                checker.step(tr.time, &tr.update).unwrap();
            }
            checker.space().retained_units()
        })
    });
    group.bench_with_input(BenchmarkId::new("nop_observed_step", 300), &g, |b, g| {
        b.iter(|| {
            let mut checker =
                IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            let dyn_c: &mut dyn Checker = &mut checker;
            for tr in &g.transitions {
                dyn_c
                    .step_observed(tr.time, &tr.update, &mut NopObserver)
                    .unwrap();
            }
            dyn_c.space().retained_units()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
