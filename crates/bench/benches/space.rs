//! T1 — space vs history length. Criterion measures the run time of each
//! full checker pass; the space figures themselves are printed once per
//! configuration (Criterion has no space axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_core::{Checker, IncrementalChecker, NaiveChecker};
use rtic_workload::Reservations;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_space");
    group.sample_size(10);
    for n in [200usize, 800] {
        let g = Reservations {
            steps: n,
            ..Default::default()
        }
        .generate();
        let constraint = g.constraints[0].clone();
        {
            let mut inc =
                IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            let mut nai = NaiveChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
            for tr in &g.transitions {
                inc.step(tr.time, &tr.update).unwrap();
                nai.step(tr.time, &tr.update).unwrap();
            }
            eprintln!(
                "t1_space n={n}: incremental={} naive={}",
                inc.space().retained_units(),
                nai.space().retained_units()
            );
        }
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut ck =
                    IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
                for tr in &g.transitions {
                    ck.step(tr.time, &tr.update).unwrap();
                }
                ck.space().retained_units()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let mut ck = NaiveChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
                for tr in &g.transitions {
                    ck.step(tr.time, &tr.update).unwrap();
                }
                ck.space().retained_units()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
