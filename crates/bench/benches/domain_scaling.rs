//! T3 — scaling in update size / active-domain churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtic_core::{Checker, IncrementalChecker};
use rtic_workload::RandomWorkload;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_domain_scaling");
    group.sample_size(10);
    for u in [8usize, 64] {
        let g = RandomWorkload {
            steps: 150,
            domain: 4 * u,
            updates_per_step: u,
            bound: 8,
            seed: 42,
            ..Default::default()
        }
        .generate();
        let constraint = g.constraints[0].clone();
        group.throughput(Throughput::Elements((g.transitions.len() * u) as u64));
        group.bench_with_input(BenchmarkId::new("incremental", u), &u, |b, _| {
            b.iter(|| {
                let mut ck =
                    IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
                for tr in &g.transitions {
                    ck.step(tr.time, &tr.update).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
