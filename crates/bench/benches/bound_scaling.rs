//! T2/F2 — scaling in the metric bound: the general deque encoding's
//! update cost vs the windowed checker's (whose window holds O(b) states).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtic_core::{Checker, IncrementalChecker, WindowedChecker};
use rtic_workload::Reservations;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_bound_scaling");
    group.sample_size(10);
    for d in [4u64, 32] {
        let g = Reservations {
            steps: 150,
            deadline: d,
            ..Default::default()
        }
        .generate();
        let constraint = g.constraints[0].clone();
        group.bench_with_input(BenchmarkId::new("incremental", d), &d, |b, _| {
            b.iter(|| {
                let mut ck =
                    IncrementalChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
                for tr in &g.transitions {
                    ck.step(tr.time, &tr.update).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("windowed", d), &d, |b, _| {
            b.iter(|| {
                let mut ck =
                    WindowedChecker::new(constraint.clone(), Arc::clone(&g.catalog)).unwrap();
                for tr in &g.transitions {
                    ck.step(tr.time, &tr.update).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
