//! Prints the experiment tables. See EXPERIMENTS.md for the mapping to the
//! paper's claims.

use rtic_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: experiments [--quick] [--table t1|f1|t2|f2|t3|t4|f3|t5|t6|t7|t8]\n\
             \x20                  [--metrics FILE] [--trace FILE]"
        );
        eprintln!(
            "--metrics/--trace run the instrumented telemetry pass (motivating\n\
             constraint, reservations workload) and write the observer output."
        );
        return;
    }
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1));
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1));
    if metrics_path.is_some() || trace_path.is_some() {
        let mut registry = rtic_obs::MetricsRegistry::new();
        let mut trace = trace_path.map(|p| {
            rtic_obs::TraceWriter::to_file(p)
                .unwrap_or_else(|e| panic!("cannot open trace file `{p}`: {e}"))
        });
        let m = {
            let mut obs = rtic_obs::MultiObserver::new().with(&mut registry);
            if let Some(t) = trace.as_mut() {
                obs.push(t);
            }
            experiments::telemetry_run(&scale, &mut obs)
        };
        println!(
            "telemetry run [{}]: {} steps, {} violation(s), tail {:.1} us/step",
            m.checker, m.steps, m.violations, m.tail_step_us
        );
        if let Some(p) = metrics_path {
            rtic_resilience::write_atomic(
                std::path::Path::new(p),
                registry.render_json().as_bytes(),
            )
            .unwrap_or_else(|e| panic!("cannot write metrics `{p}`: {e}"));
            println!("metrics written to {p}");
        }
        if let Some(t) = trace {
            let lines = t.lines_written();
            t.finish().expect("trace flush");
            println!(
                "trace written to {} ({lines} events)",
                trace_path.expect("trace implies trace_path")
            );
        }
        return;
    }
    println!(
        "rtic experiments — {} scale\n",
        if quick { "quick" } else { "full" }
    );
    #[allow(clippy::type_complexity)]
    let tables: Vec<(&str, fn(&Scale) -> rtic_bench::table::Table)> = vec![
        ("t1", experiments::t1_space),
        ("f1", experiments::f1_step_latency),
        ("t2", experiments::t2_bound_space),
        ("f2", experiments::f2_bound_time),
        ("t3", experiments::t3_domain_scaling),
        ("t4", experiments::t4_detection),
        ("f3", experiments::f3_throughput),
        ("t5", experiments::t5_active_overhead),
        ("t6", experiments::t6_ablation),
        ("t7", experiments::t7_adom_bound),
        ("t8", experiments::t8_constraint_scaling),
    ];
    for (id, f) in tables {
        if only.as_deref().is_some_and(|o| o != id) {
            continue;
        }
        println!("{}", f(&scale).render());
    }
}
