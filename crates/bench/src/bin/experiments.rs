//! Prints the experiment tables. See EXPERIMENTS.md for the mapping to the
//! paper's claims.

use rtic_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--quick] [--table t1|f1|t2|f2|t3|t4|f3|t5|t6|t7]");
        return;
    }
    println!(
        "rtic experiments — {} scale\n",
        if quick { "quick" } else { "full" }
    );
    #[allow(clippy::type_complexity)]
    let tables: Vec<(&str, fn(&Scale) -> rtic_bench::table::Table)> = vec![
        ("t1", experiments::t1_space),
        ("f1", experiments::f1_step_latency),
        ("t2", experiments::t2_bound_space),
        ("f2", experiments::f2_bound_time),
        ("t3", experiments::t3_domain_scaling),
        ("t4", experiments::t4_detection),
        ("f3", experiments::f3_throughput),
        ("t5", experiments::t5_active_overhead),
        ("t6", experiments::t6_ablation),
        ("t7", experiments::t7_adom_bound),
    ];
    for (id, f) in tables {
        if only.as_deref().is_some_and(|o| o != id) {
            continue;
        }
        println!("{}", f(&scale).render());
    }
}
