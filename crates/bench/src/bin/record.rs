//! `record` — write a `BENCH_<workload>.json` perf snapshot.
//!
//! ```text
//! record [WORKLOAD] [--steps N] [--seed N] [--out FILE]
//!        [--compare BASELINE] [--warn-pct P]
//! record compare-all [--current DIR] [--baselines DIR] [--warn-pct P]
//! ```
//!
//! WORKLOAD defaults to `motivating` (the paper's reservations example);
//! `--out` defaults to `BENCH_<workload>.json` in the current directory.
//! With `--compare`, the fresh snapshot is diffed against a committed
//! baseline and regressions beyond `--warn-pct` (default 25%) are
//! printed — warn-only, the exit code stays 0 so noisy CI runners never
//! block a merge on timing jitter. Every document kind participates:
//! the curve workloads (`shard-scaling`, `scenarios`, `batch-exec`)
//! diff point-by-point against their committed baselines.
//!
//! `compare-all` discovers every committed `BENCH_*.json` baseline (in
//! `--baselines`, default `.`) and warn-diffs each against the
//! same-named fresh snapshot in `--current` (default `bench-current`) —
//! baselines without a fresh counterpart are reported, so coverage gaps
//! are visible in the log.

use rtic_bench::record::{
    batch_exec_curve, batch_exec_to_json, batch_size_sweep, compare, compare_all, git_rev, record,
    scenario_sweep, scenario_sweep_to_json, shard_curve, shard_curve_to_json, to_json, WORKLOADS,
};
use rtic_obs::json;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn run(args: &[String]) -> Result<i32, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "record [WORKLOAD] [--steps N] [--seed N] [--out FILE] \
             [--compare BASELINE] [--warn-pct P]\n\
             record compare-all [--current DIR] [--baselines DIR] [--warn-pct P]\n\
             workloads: {}, shard-scaling, scenarios, batch-exec",
            WORKLOADS.join(", ")
        );
        return Ok(0);
    }
    let workload = args
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(String::as_str)
        .next()
        .unwrap_or("motivating");
    let steps: usize = flag_value(args, "--steps")
        .map(|v| v.parse().map_err(|e| format!("bad --steps: {e}")))
        .transpose()?
        .unwrap_or(2_000);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let warn_pct: f64 = flag_value(args, "--warn-pct")
        .map(|v| v.parse().map_err(|e| format!("bad --warn-pct: {e}")))
        .transpose()?
        .unwrap_or(25.0);
    let out_path = flag_value(args, "--out")
        .map(String::from)
        .unwrap_or_else(|| format!("BENCH_{}.json", workload.replace('-', "_")));

    // Discovery mode: diff every committed baseline against the fresh
    // snapshots a CI run just recorded.
    if workload == "compare-all" {
        let baselines = flag_value(args, "--baselines").unwrap_or(".");
        let current = flag_value(args, "--current").unwrap_or("bench-current");
        let reports = compare_all(
            std::path::Path::new(baselines),
            std::path::Path::new(current),
            warn_pct,
        )?;
        if reports.is_empty() {
            println!("no BENCH_*.json baselines found in {baselines}");
            return Ok(0);
        }
        for (file, warnings) in &reports {
            if warnings.is_empty() {
                println!("{file}: within {warn_pct}% of every tracked metric");
            } else {
                for w in warnings {
                    println!("PERF WARNING {file}: {w}");
                }
            }
        }
        return Ok(0);
    }

    // The shard-scaling sweep writes a curve document, not a single
    // workload snapshot — it times the same entity-churn history with
    // the sharded data plane off and on across key counts.
    let doc = if workload == "shard-scaling" {
        let smoke = std::env::var("RTIC_BENCH_SMOKE").is_ok();
        let key_counts: &[usize] = if smoke { &[8] } else { &[4, 16, 64, 256] };
        let points = shard_curve(key_counts, steps, seed)?;
        let doc = shard_curve_to_json(&points, steps, seed, &git_rev());
        write_doc(&out_path, &doc)?;
        for p in &points {
            println!(
                "shard-scaling keys={}: unsharded {:.0} steps/s, sharded {:.0} steps/s, \
                 sharded+4 workers {:.0} steps/s, peak {} shard(s)",
                p.keys,
                p.unsharded_steps_per_sec,
                p.sharded_steps_per_sec,
                p.sharded_parallel_steps_per_sec,
                p.peak_shards
            );
        }
        println!("recorded shard-scaling ({steps} steps/point, seed {seed}) -> {out_path}");
        doc
    } else if workload == "batch-exec" {
        // The batch-exec recording writes the columnar-execution
        // document: a tuples/sec-vs-active-domain curve (scalar
        // line-at-a-time vs vectorized batched ingestion, reports
        // asserted byte-identical) plus a batch-size sweep at the
        // largest domain.
        let smoke = std::env::var("RTIC_BENCH_SMOKE").is_ok();
        let entity_counts: &[usize] = if smoke {
            &[256]
        } else {
            &[1_000, 10_000, 100_000]
        };
        let batches: &[usize] = if smoke { &[1, 8] } else { &[1, 4, 16, 64, 256] };
        let curve_steps = if flag_value(args, "--steps").is_some() {
            steps
        } else if smoke {
            40
        } else {
            400
        };
        let sweep_entities = *entity_counts.last().expect("entity counts are nonempty");
        let curve = batch_exec_curve(entity_counts, curve_steps, seed)?;
        let sweep = batch_size_sweep(sweep_entities, curve_steps, batches, seed)?;
        let doc = batch_exec_to_json(
            &curve,
            &sweep,
            sweep_entities,
            curve_steps,
            seed,
            &git_rev(),
        );
        write_doc(&out_path, &doc)?;
        for p in &curve {
            println!(
                "batch-exec entities={}: scalar {:.0} tuples/s, vectorized {:.0} tuples/s \
                 ({:.2}x) over {} tuples",
                p.entities,
                p.scalar_tuples_per_sec,
                p.vectorized_tuples_per_sec,
                p.speedup,
                p.tuples
            );
        }
        for p in &sweep {
            println!(
                "batch-exec sweep batch={}: {:.0} tuples/s at {} entities",
                p.batch, p.tuples_per_sec, sweep_entities
            );
        }
        println!("recorded batch-exec ({curve_steps} steps/point, seed {seed}) -> {out_path}");
        doc
    } else if workload == "scenarios" {
        // The production-scenario sweep times the whole scenario library
        // (fraud, telemetry, ratelimit, access) through the sharded
        // constraint set at a production-scale entity domain (default 10⁵).
        let smoke = std::env::var("RTIC_BENCH_SMOKE").is_ok();
        let entities: usize = flag_value(args, "--entities")
            .map(|v| v.parse().map_err(|e| format!("bad --entities: {e}")))
            .transpose()?
            .unwrap_or(if smoke { 64 } else { 100_000 });
        let sweep_steps = if flag_value(args, "--steps").is_some() {
            steps
        } else if smoke {
            40
        } else {
            500
        };
        let points = scenario_sweep(sweep_steps, entities, 8, seed)?;
        let doc = scenario_sweep_to_json(&points, seed, &git_rev());
        write_doc(&out_path, &doc)?;
        for p in &points {
            println!(
                "scenarios {}: {:.0} steps/s over {} steps at {} entities, \
                 {} violations ({} injected), peak {} shard(s)",
                p.scenario,
                p.steps_per_sec,
                p.steps,
                p.entities,
                p.violations,
                p.expected,
                p.peak_shards
            );
        }
        println!("recorded scenarios (seed {seed}) -> {out_path}");
        doc
    } else {
        let recording = record(workload, steps, seed)?;
        let doc = to_json(&recording, &git_rev());
        write_doc(&out_path, &doc)?;
        println!(
            "recorded {} ({} steps, seed {}) -> {out_path}: {:.0} steps/s, \
             p50 {:.1}us p90 {:.1}us p99 {:.1}us",
            recording.workload,
            recording.steps,
            recording.seed,
            recording.throughput,
            recording.latency_us.0,
            recording.latency_us.1,
            recording.latency_us.2,
        );
        doc
    };

    if let Some(baseline_path) = flag_value(args, "--compare") {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
        let baseline = json::parse(&text)
            .map_err(|e| format!("baseline `{baseline_path}` is not valid JSON: {e}"))?;
        let warnings = compare(&doc, &baseline, warn_pct);
        if warnings.is_empty() {
            println!("baseline {baseline_path}: within {warn_pct}% of every tracked metric");
        } else {
            for w in &warnings {
                println!("PERF WARNING {w}");
            }
        }
    }
    Ok(0)
}

fn write_doc(out_path: &str, doc: &json::Json) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
    }
    std::fs::write(out_path, format!("{}\n", doc.render()))
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("record: {e}");
            std::process::exit(2);
        }
    }
}
