//! Perf-trajectory recorder: machine-readable benchmark snapshots.
//!
//! `cargo run -p rtic-bench --release --bin record` runs a named workload
//! through the profiled incremental checker and writes a
//! `BENCH_<workload>.json` snapshot — throughput, step-latency
//! percentiles, the plan-node hot list, and the git revision — so a
//! repository can accumulate a perf trajectory over time. `--compare
//! BASELINE --warn-pct N` diffs the fresh snapshot against a committed
//! baseline and prints warn-only regressions (CI never fails on noise,
//! it surfaces it).

use std::time::Instant;

use rtic_core::{Checker, EncodingOptions, IncrementalChecker, ProfiledNode};
use rtic_obs::json::{self, Json};
use rtic_workload::{
    library, Audit, Library, Monitor, RandomWorkload, Reservations, ScenarioParams,
};

/// Bumped when the snapshot layout changes shape (field renames,
/// semantic changes) so downstream tooling can refuse mixed files.
pub const SCHEMA_VERSION: u64 = 1;

/// Workload names `record` understands. `motivating` is the paper's
/// running reservations example — the one whose baseline is committed.
pub const WORKLOADS: &[&str] = &["motivating", "library", "monitor", "audit", "random"];

/// One recorded run: the measured numbers behind the JSON snapshot.
#[derive(Clone, Debug)]
pub struct Recording {
    /// Workload name (see [`WORKLOADS`]).
    pub workload: String,
    /// Transitions processed.
    pub steps: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// End-to-end throughput in steps/second.
    pub throughput: f64,
    /// Exact step-latency percentiles in microseconds:
    /// `(p50, p90, p99, max)`.
    pub latency_us: (f64, f64, f64, f64),
    /// Violation witnesses across the run.
    pub violations: usize,
    /// Hottest plan nodes across all constraints, by inclusive time.
    pub hot_nodes: Vec<(String, ProfiledNode)>,
}

/// Exact (nearest-rank) percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs `workload` for `steps` transitions through one profiled
/// incremental checker per constraint, timing every step.
pub fn record(workload: &str, steps: usize, seed: u64) -> Result<Recording, String> {
    let generated = match workload {
        "motivating" => Reservations {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "library" => Library {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "monitor" => Monitor {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "audit" => Audit {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "random" => RandomWorkload {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        other => {
            return Err(format!(
                "unknown workload `{other}` (expected one of {})",
                WORKLOADS.join(", ")
            ))
        }
    };
    let mut checkers: Vec<IncrementalChecker> = generated
        .constraints
        .iter()
        .map(|c| {
            IncrementalChecker::with_options(
                c.clone(),
                std::sync::Arc::clone(&generated.catalog),
                EncodingOptions {
                    profile_plans: true,
                    ..Default::default()
                },
            )
            .map_err(|e| format!("constraint `{}`: {e}", c.name))
        })
        .collect::<Result<_, String>>()?;

    let mut step_us = Vec::with_capacity(generated.transitions.len());
    let mut violations = 0usize;
    let run_start = Instant::now();
    for tr in &generated.transitions {
        let s = Instant::now();
        for checker in &mut checkers {
            let report = checker
                .step(tr.time, &tr.update)
                .map_err(|e| format!("workload step at {}: {e}", tr.time))?;
            violations += report.violation_count();
        }
        step_us.push(s.elapsed().as_secs_f64() * 1e6);
    }
    let total_secs = run_start.elapsed().as_secs_f64();

    let mut sorted = step_us.clone();
    sorted.sort_by(f64::total_cmp);
    let max_us = sorted.last().copied().unwrap_or(0.0);

    // Hot list across the whole fleet, hottest first; node identity is
    // `<constraint> <path>` so multi-constraint workloads stay readable.
    let mut hot: Vec<(String, ProfiledNode)> = Vec::new();
    for checker in &checkers {
        let name = checker.constraint().name;
        if let Some(profile) = checker.plan_profile() {
            for node in profile.hot(5) {
                hot.push((name.to_string(), node.clone()));
            }
        }
    }
    hot.sort_by(|a, b| {
        b.1.counts
            .time_ns
            .cmp(&a.1.counts.time_ns)
            .then_with(|| a.0.cmp(&b.0))
    });
    hot.truncate(10);

    Ok(Recording {
        workload: workload.to_string(),
        steps: generated.transitions.len(),
        seed,
        throughput: if total_secs > 0.0 {
            generated.transitions.len() as f64 / total_secs
        } else {
            0.0
        },
        latency_us: (
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.90),
            percentile(&sorted, 0.99),
            max_us,
        ),
        violations,
        hot_nodes: hot,
    })
}

/// One point of the shard-scaling throughput curve: the same
/// entity-churn history checked with the sharded data plane off and on.
#[derive(Clone, Debug)]
pub struct ShardCurvePoint {
    /// Distinct entity keys (passengers) in the stream.
    pub keys: usize,
    /// Steps/second through the unsharded [`rtic_core::ConstraintSet`].
    pub unsharded_steps_per_sec: f64,
    /// Steps/second with `--shard auto` semantics (sharding on).
    pub sharded_steps_per_sec: f64,
    /// Steps/second sharded with four workers — per-shard jobs of one
    /// constraint spread over the scoped-thread pool.
    pub sharded_parallel_steps_per_sec: f64,
    /// High-water mark of live shards across the sharded run.
    pub peak_shards: usize,
}

/// Runs the shard-scaling sweep: for each key count, the same
/// [`crate::experiments::shard_stream`] history through an unsharded and
/// a sharded fleet, timed end to end. The two runs' report lines are
/// asserted identical — a curve over diverging planes would be
/// meaningless.
pub fn shard_curve(
    key_counts: &[usize],
    steps: usize,
    seed: u64,
) -> Result<Vec<ShardCurvePoint>, String> {
    use crate::experiments::{shard_catalog, shard_constraint, shard_stream};
    use rtic_core::{ConstraintSet, Parallelism};

    let catalog = shard_catalog();
    let constraint = shard_constraint();
    let mut points = Vec::with_capacity(key_counts.len());
    for &keys in key_counts {
        let transitions = shard_stream(keys, steps, seed);
        let run = |sharded: bool,
                   parallelism: Parallelism|
         -> Result<(f64, usize, Vec<String>), String> {
            let mut set = ConstraintSet::new([constraint.clone()], std::sync::Arc::clone(&catalog))
                .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
                .with_sharding(sharded)
                .with_parallelism(parallelism);
            let mut lines = Vec::new();
            let start = Instant::now();
            for tr in &transitions {
                let reports = set
                    .step(tr.time, &tr.update)
                    .map_err(|e| format!("shard curve step at {}: {e}", tr.time))?;
                lines.extend(reports.iter().map(|r| r.to_string()));
            }
            let secs = start.elapsed().as_secs_f64();
            let peak = set
                .shard_stats()
                .iter()
                .map(|(_, s)| s.peak)
                .max()
                .unwrap_or(0);
            let throughput = if secs > 0.0 {
                transitions.len() as f64 / secs
            } else {
                0.0
            };
            Ok((throughput, peak, lines))
        };
        let (unsharded, _, plain_lines) = run(false, Parallelism::Sequential)?;
        let (sharded, peak, sharded_lines) = run(true, Parallelism::Sequential)?;
        let (sharded_par, _, par_lines) = run(true, Parallelism::N(4))?;
        if plain_lines != sharded_lines || plain_lines != par_lines {
            return Err(format!(
                "shard curve at {keys} key(s): sharded reports diverge from unsharded"
            ));
        }
        points.push(ShardCurvePoint {
            keys,
            unsharded_steps_per_sec: unsharded,
            sharded_steps_per_sec: sharded,
            sharded_parallel_steps_per_sec: sharded_par,
            peak_shards: peak,
        });
    }
    Ok(points)
}

/// Renders a shard-scaling sweep as the `BENCH_shard_scaling.json`
/// document.
pub fn shard_curve_to_json(points: &[ShardCurvePoint], steps: usize, seed: u64, rev: &str) -> Json {
    let curve: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::object()
                .set("keys", p.keys as u64)
                .set("unsharded_steps_per_sec", round3(p.unsharded_steps_per_sec))
                .set("sharded_steps_per_sec", round3(p.sharded_steps_per_sec))
                .set(
                    "sharded_parallel_steps_per_sec",
                    round3(p.sharded_parallel_steps_per_sec),
                )
                .set("peak_shards", p.peak_shards as u64)
        })
        .collect();
    Json::object()
        .set("schema_version", SCHEMA_VERSION)
        .set("workload", "shard-scaling")
        .set("steps", steps as u64)
        .set("seed", seed)
        .set("git_rev", rev)
        .set("shard_curve", Json::Arr(curve))
}

/// One production scenario's measured point in the `record scenarios`
/// sweep: the whole fleet checked through the entity-key sharded
/// constraint set at a production-scale entity domain.
#[derive(Clone, Debug)]
pub struct ScenarioPoint {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Transitions processed.
    pub steps: usize,
    /// Entity-key domain size.
    pub entities: usize,
    /// Steps/second through the sharded constraint set.
    pub steps_per_sec: f64,
    /// Violation witnesses across the run.
    pub violations: usize,
    /// Injected-violation expectations the generator planted.
    pub expected: usize,
    /// High-water mark of live shards across the run.
    pub peak_shards: usize,
}

/// Runs every production scenario (fraud, telemetry, ratelimit, access)
/// at the given shape through the sharded [`rtic_core::ConstraintSet`],
/// timed end to end. `entities` is the knob that soaks the sharded
/// plane — production shapes run it at 10⁵.
pub fn scenario_sweep(
    steps: usize,
    entities: usize,
    events_per_step: usize,
    seed: u64,
) -> Result<Vec<ScenarioPoint>, String> {
    use rtic_core::ConstraintSet;

    let params = ScenarioParams {
        steps,
        entities,
        events_per_step,
        violation_rate: 0.05,
        seed,
    };
    let mut points = Vec::new();
    for scenario in library::production() {
        let generated = scenario.generate(&params);
        let mut set = ConstraintSet::new(
            generated.constraints.iter().cloned(),
            std::sync::Arc::clone(&generated.catalog),
        )
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
        .with_sharding(true);
        let mut violations = 0usize;
        let start = Instant::now();
        for tr in &generated.transitions {
            let reports = set
                .step(tr.time, &tr.update)
                .map_err(|e| format!("{} step at {}: {e}", scenario.name, tr.time))?;
            violations += reports.iter().map(|r| r.violation_count()).sum::<usize>();
        }
        let secs = start.elapsed().as_secs_f64();
        let peak = set
            .shard_stats()
            .iter()
            .map(|(_, s)| s.peak)
            .max()
            .unwrap_or(0);
        points.push(ScenarioPoint {
            scenario: scenario.name.to_string(),
            steps: generated.transitions.len(),
            entities,
            steps_per_sec: if secs > 0.0 {
                generated.transitions.len() as f64 / secs
            } else {
                0.0
            },
            violations,
            expected: generated.expected.len(),
            peak_shards: peak,
        });
    }
    Ok(points)
}

/// Renders a scenario sweep as the `BENCH_scenarios.json` document.
pub fn scenario_sweep_to_json(points: &[ScenarioPoint], seed: u64, rev: &str) -> Json {
    let rows: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::object()
                .set("scenario", p.scenario.as_str())
                .set("steps", p.steps as u64)
                .set("entities", p.entities as u64)
                .set("steps_per_sec", round3(p.steps_per_sec))
                .set("violations", p.violations as u64)
                .set("expected", p.expected as u64)
                .set("peak_shards", p.peak_shards as u64)
        })
        .collect();
    Json::object()
        .set("schema_version", SCHEMA_VERSION)
        .set("workload", "scenarios")
        .set("seed", seed)
        .set("git_rev", rev)
        .set("scenarios", Json::Arr(rows))
}

/// One point of the batch-exec throughput curve: the same ingestion
/// stream checked scalar line-at-a-time and vectorized in micro-batches.
#[derive(Clone, Debug)]
pub struct BatchExecPoint {
    /// Entity-key domain size (the active domain the stream grows to).
    pub entities: usize,
    /// Transitions in the stream.
    pub steps: usize,
    /// Total update tuples ingested.
    pub tuples: usize,
    /// Tuples/second through the scalar path, one line at a time.
    pub scalar_tuples_per_sec: f64,
    /// Tuples/second through the vectorized path, batched ingestion.
    pub vectorized_tuples_per_sec: f64,
    /// `vectorized / scalar`.
    pub speedup: f64,
}

/// One point of the batch-size sweep: the vectorized path's throughput
/// as a function of lines per `apply_batch` call, at a fixed domain.
#[derive(Clone, Debug)]
pub struct BatchSweepPoint {
    /// Lines per ingestion batch (1 = line-at-a-time).
    pub batch: usize,
    /// Tuples/second through the vectorized path at this batch size.
    pub tuples_per_sec: f64,
}

/// Runs a [`crate::experiments::batch_stream`] history through one
/// [`rtic_core::ConstraintSet`], line-at-a-time when `chunk <= 1` or via
/// [`rtic_core::ConstraintSet::apply_batch`] in `chunk`-line batches.
/// Returns `(tuples/sec, total tuples, report lines)` — callers assert
/// the lines byte-identical across configurations before trusting the
/// numbers.
fn run_batch_exec(
    transitions: &[rtic_history::Transition],
    options: EncodingOptions,
    chunk: usize,
) -> Result<(f64, usize, Vec<String>), String> {
    use crate::experiments::{shard_catalog, shard_constraint};
    use rtic_core::{ConstraintSet, NopObserver};

    let mut set = ConstraintSet::with_options([shard_constraint()], shard_catalog(), options)
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?;
    let tuples: usize = transitions.iter().map(|t| t.update.len()).sum();
    let mut lines = Vec::new();
    let start = Instant::now();
    if chunk <= 1 {
        for tr in transitions {
            let reports = set
                .step(tr.time, &tr.update)
                .map_err(|e| format!("batch-exec step at {}: {e}", tr.time))?;
            lines.extend(reports.iter().map(|r| r.to_string()));
        }
    } else {
        let batch: Vec<_> = transitions
            .iter()
            .map(|t| (t.time, t.update.clone()))
            .collect();
        for c in batch.chunks(chunk) {
            let per_line = set
                .apply_batch(c, &mut NopObserver)
                .map_err(|e| format!("batch-exec batch: {e}"))?;
            for reports in &per_line {
                lines.extend(reports.iter().map(|r| r.to_string()));
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let throughput = if secs > 0.0 {
        tuples as f64 / secs
    } else {
        0.0
    };
    Ok((throughput, tuples, lines))
}

/// The tuples/sec-vs-active-domain curve: for each entity count, the
/// same stream through the scalar line-at-a-time path and the
/// vectorized batched path (64-line batches). Report lines are asserted
/// byte-identical — a curve over diverging engines would be
/// meaningless.
pub fn batch_exec_curve(
    entity_counts: &[usize],
    steps: usize,
    seed: u64,
) -> Result<Vec<BatchExecPoint>, String> {
    use crate::experiments::batch_stream;

    let mut points = Vec::with_capacity(entity_counts.len());
    for &entities in entity_counts {
        let events = entities.div_ceil(steps.max(1)).max(1);
        let transitions = batch_stream(entities, steps, events, seed);
        let (scalar, tuples, scalar_lines) =
            run_batch_exec(&transitions, EncodingOptions::default(), 1)?;
        let (vectorized, _, vec_lines) = run_batch_exec(
            &transitions,
            EncodingOptions {
                vectorize: true,
                ..Default::default()
            },
            64,
        )?;
        if scalar_lines != vec_lines {
            return Err(format!(
                "batch-exec at {entities} entities: vectorized reports diverge from scalar"
            ));
        }
        points.push(BatchExecPoint {
            entities,
            steps: transitions.len(),
            tuples,
            scalar_tuples_per_sec: scalar,
            vectorized_tuples_per_sec: vectorized,
            speedup: if scalar > 0.0 {
                vectorized / scalar
            } else {
                0.0
            },
        });
    }
    Ok(points)
}

/// The batch-size sweep: the vectorized path's throughput at one domain
/// size across ingestion batch sizes, each run asserted byte-identical
/// to the scalar line-at-a-time reference.
pub fn batch_size_sweep(
    entities: usize,
    steps: usize,
    batches: &[usize],
    seed: u64,
) -> Result<Vec<BatchSweepPoint>, String> {
    use crate::experiments::batch_stream;

    let events = entities.div_ceil(steps.max(1)).max(1);
    let transitions = batch_stream(entities, steps, events, seed);
    let (_, _, reference) = run_batch_exec(&transitions, EncodingOptions::default(), 1)?;
    let mut points = Vec::with_capacity(batches.len());
    for &batch in batches {
        let (tuples_per_sec, _, lines) = run_batch_exec(
            &transitions,
            EncodingOptions {
                vectorize: true,
                ..Default::default()
            },
            batch,
        )?;
        if lines != reference {
            return Err(format!(
                "batch-exec sweep at batch {batch}: reports diverge from scalar"
            ));
        }
        points.push(BatchSweepPoint {
            batch,
            tuples_per_sec,
        });
    }
    Ok(points)
}

/// Renders the batch-exec curve and sweep as the
/// `BENCH_batch_exec.json` document.
pub fn batch_exec_to_json(
    curve: &[BatchExecPoint],
    sweep: &[BatchSweepPoint],
    sweep_entities: usize,
    steps: usize,
    seed: u64,
    rev: &str,
) -> Json {
    let curve_rows: Vec<Json> = curve
        .iter()
        .map(|p| {
            Json::object()
                .set("entities", p.entities as u64)
                .set("steps", p.steps as u64)
                .set("tuples", p.tuples as u64)
                .set("scalar_tuples_per_sec", round3(p.scalar_tuples_per_sec))
                .set(
                    "vectorized_tuples_per_sec",
                    round3(p.vectorized_tuples_per_sec),
                )
                .set("speedup", round3(p.speedup))
        })
        .collect();
    let sweep_rows: Vec<Json> = sweep
        .iter()
        .map(|p| {
            Json::object()
                .set("batch", p.batch as u64)
                .set("tuples_per_sec", round3(p.tuples_per_sec))
        })
        .collect();
    Json::object()
        .set("schema_version", SCHEMA_VERSION)
        .set("workload", "batch-exec")
        .set("steps", steps as u64)
        .set("seed", seed)
        .set("git_rev", rev)
        .set("domain_curve", Json::Arr(curve_rows))
        .set("batch_sweep_entities", sweep_entities as u64)
        .set("batch_sweep", Json::Arr(sweep_rows))
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (snapshots must never fail on a bare export).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Renders a recording as the `BENCH_<workload>.json` document.
pub fn to_json(rec: &Recording, git_rev: &str) -> Json {
    let hot: Vec<Json> = rec
        .hot_nodes
        .iter()
        .map(|(constraint, node)| {
            Json::object()
                .set("constraint", constraint.as_str())
                .set("path", node.desc.path.as_str())
                .set("label", node.desc.label.as_str())
                .set("calls", node.counts.calls)
                .set("time_ns", node.counts.time_ns)
                .set("rows_in", node.counts.rows_in)
                .set("rows_out", node.counts.rows_out)
                .set("cache_hits", node.counts.cache_hits)
                .set("cache_misses", node.counts.cache_misses)
        })
        .collect();
    let (p50, p90, p99, max) = rec.latency_us;
    Json::object()
        .set("schema_version", SCHEMA_VERSION)
        .set("workload", rec.workload.as_str())
        .set("steps", rec.steps as u64)
        .set("seed", rec.seed)
        .set("git_rev", git_rev)
        .set("throughput_steps_per_sec", round3(rec.throughput))
        .set(
            "step_latency_us",
            Json::object()
                .set("p50_us", round3(p50))
                .set("p90_us", round3(p90))
                .set("p99_us", round3(p99))
                .set("max_us", round3(max)),
        )
        .set("violations", rec.violations as u64)
        .set("plan_hot_nodes", Json::Arr(hot))
}

/// The comparable metrics of a snapshot document, flattened to
/// `(label, value, higher_is_better)` rows. Schema-aware: curve
/// documents (`shard-scaling`, `scenarios`, `batch-exec`) key their
/// rows by the sweep parameter so two docs only compare points measured
/// at the same scale — a smoke-scale run silently shares no labels with
/// a full-scale baseline instead of producing nonsense deltas.
fn metric_rows(doc: &Json) -> Vec<(String, f64, bool)> {
    type Row = (String, f64, bool);
    let mut rows: Vec<Row> = Vec::new();
    let num = |node: &Json, key: &str| node.get(key).and_then(Json::as_f64);
    let each = |doc: &Json, arr: &str, f: &mut dyn FnMut(&Json, &mut Vec<Row>)| {
        let mut out = Vec::new();
        if let Some(points) = doc.get(arr).and_then(Json::as_arr) {
            for p in points {
                f(p, &mut out);
            }
        }
        out
    };
    match doc.get("workload").and_then(Json::as_str).unwrap_or("") {
        "shard-scaling" => {
            rows = each(doc, "shard_curve", &mut |p, out| {
                let Some(keys) = num(p, "keys") else { return };
                for m in [
                    "unsharded_steps_per_sec",
                    "sharded_steps_per_sec",
                    "sharded_parallel_steps_per_sec",
                ] {
                    if let Some(v) = num(p, m) {
                        out.push((format!("shard_curve[keys={keys}].{m}"), v, true));
                    }
                }
            });
        }
        "scenarios" => {
            rows = each(doc, "scenarios", &mut |p, out| {
                let Some(name) = p.get("scenario").and_then(Json::as_str) else {
                    return;
                };
                if let Some(v) = num(p, "steps_per_sec") {
                    out.push((format!("scenarios[{name}].steps_per_sec"), v, true));
                }
            });
        }
        "batch-exec" => {
            rows = each(doc, "domain_curve", &mut |p, out| {
                let Some(entities) = num(p, "entities") else {
                    return;
                };
                for m in [
                    "scalar_tuples_per_sec",
                    "vectorized_tuples_per_sec",
                    "speedup",
                ] {
                    if let Some(v) = num(p, m) {
                        out.push((format!("domain_curve[entities={entities}].{m}"), v, true));
                    }
                }
            });
            rows.extend(each(doc, "batch_sweep", &mut |p, out| {
                let Some(batch) = num(p, "batch") else { return };
                if let Some(v) = num(p, "tuples_per_sec") {
                    out.push((
                        format!("batch_sweep[batch={batch}].tuples_per_sec"),
                        v,
                        true,
                    ));
                }
            }));
        }
        // Single-workload snapshots: throughput up, latency down.
        _ => {
            if let Some(v) = num(doc, "throughput_steps_per_sec") {
                rows.push(("throughput_steps_per_sec".into(), v, true));
            }
            if let Some(lat) = doc.get("step_latency_us") {
                for m in ["p50_us", "p99_us"] {
                    if let Some(v) = num(lat, m) {
                        rows.push((format!("step_latency_us.{m}"), v, false));
                    }
                }
            }
        }
    }
    rows
}

/// Compares a fresh snapshot against a baseline document. Returns one
/// human-readable warning per metric that regressed by more than
/// `warn_pct` percent — empty means within threshold. Comparison is
/// warn-only by design: one-shot CI timings are noisy, so the trajectory
/// is surfaced, not enforced. Understands every committed `BENCH_*.json`
/// schema (single workloads, shard-scaling, scenarios, batch-exec);
/// metrics present in only one document are skipped.
pub fn compare(current: &Json, baseline: &Json, warn_pct: f64) -> Vec<String> {
    let mut warnings = Vec::new();
    let cur_kind = current.get("workload").and_then(Json::as_str);
    let base_kind = baseline.get("workload").and_then(Json::as_str);
    if cur_kind != base_kind {
        warnings.push(format!(
            "workload mismatch: fresh snapshot is {:?}, baseline is {:?}",
            cur_kind.unwrap_or("<missing>"),
            base_kind.unwrap_or("<missing>")
        ));
        return warnings;
    }
    let base_rows: std::collections::HashMap<String, f64> = metric_rows(baseline)
        .into_iter()
        .map(|(label, v, _)| (label, v))
        .collect();
    for (label, cur, higher_better) in metric_rows(current) {
        let Some(&base) = base_rows.get(&label) else {
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        let delta_pct = (cur - base) / base * 100.0;
        let regressed = if higher_better {
            delta_pct < -warn_pct
        } else {
            delta_pct > warn_pct
        };
        if regressed {
            warnings.push(format!(
                "{label}: {cur:.3} vs baseline {base:.3} ({delta_pct:+.1}%, \
                 warn threshold {warn_pct}%)"
            ));
        }
    }
    warnings
}

/// Discovers every `BENCH_*.json` baseline in `baseline_dir` and
/// warn-diffs each against the same-named fresh snapshot in
/// `current_dir`. Returns `(file, warnings)` per baseline, sorted by
/// file name; a baseline without a fresh counterpart gets a single
/// "no fresh snapshot" note so missing coverage is visible rather than
/// silently green.
pub fn compare_all(
    baseline_dir: &std::path::Path,
    current_dir: &std::path::Path,
    warn_pct: f64,
) -> Result<Vec<(String, Vec<String>)>, String> {
    let mut names: Vec<String> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("cannot read `{}`: {e}", baseline_dir.display()))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    let mut reports = Vec::with_capacity(names.len());
    for name in names {
        let base_text = std::fs::read_to_string(baseline_dir.join(&name))
            .map_err(|e| format!("cannot read baseline `{name}`: {e}"))?;
        let baseline =
            json::parse(&base_text).map_err(|e| format!("baseline `{name}` is not JSON: {e}"))?;
        let current_path = current_dir.join(&name);
        let warnings = match std::fs::read_to_string(&current_path) {
            Ok(text) => {
                let current = json::parse(&text).map_err(|e| {
                    format!("snapshot `{}` is not JSON: {e}", current_path.display())
                })?;
                compare(&current, &baseline, warn_pct)
            }
            Err(_) => vec![format!(
                "no fresh snapshot at {} — baseline not covered this run",
                current_path.display()
            )],
        };
        reports.push((name, warnings));
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_obs::json;

    #[test]
    fn records_the_motivating_workload() {
        let rec = record("motivating", 60, 7).unwrap();
        assert_eq!(rec.workload, "motivating");
        assert_eq!(rec.steps, 60);
        assert!(rec.throughput > 0.0);
        let (p50, p90, p99, max) = rec.latency_us;
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{rec:?}");
        assert!(!rec.hot_nodes.is_empty(), "profiled nodes recorded");
        // Hot list is hottest-first.
        for pair in rec.hot_nodes.windows(2) {
            assert!(pair[0].1.counts.time_ns >= pair[1].1.counts.time_ns);
        }
    }

    #[test]
    fn unknown_workloads_are_rejected() {
        let err = record("nope", 10, 1).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let rec = record("motivating", 40, 7).unwrap();
        let doc = json::parse(&to_json(&rec, "abc123").render()).unwrap();
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("motivating")
        );
        assert_eq!(doc.get("git_rev").and_then(Json::as_str), Some("abc123"));
        assert!(doc
            .get("throughput_steps_per_sec")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
        let hot = doc.get("plan_hot_nodes").and_then(Json::as_arr).unwrap();
        assert!(!hot.is_empty());
        assert!(hot[0].get("path").and_then(Json::as_str).is_some());
    }

    #[test]
    fn compare_warns_only_beyond_threshold() {
        let base = json::parse(
            r#"{"throughput_steps_per_sec": 1000.0,
                "step_latency_us": {"p50_us": 100.0, "p99_us": 200.0}}"#,
        )
        .unwrap();
        // Within threshold: no warnings.
        let near = json::parse(
            r#"{"throughput_steps_per_sec": 960.0,
                "step_latency_us": {"p50_us": 104.0, "p99_us": 208.0}}"#,
        )
        .unwrap();
        assert!(compare(&near, &base, 10.0).is_empty());
        // Throughput collapse and latency blow-up both warn.
        let worse = json::parse(
            r#"{"throughput_steps_per_sec": 500.0,
                "step_latency_us": {"p50_us": 100.0, "p99_us": 400.0}}"#,
        )
        .unwrap();
        let warnings = compare(&worse, &base, 10.0);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("throughput"), "{warnings:?}");
        // Improvements never warn.
        let better = json::parse(
            r#"{"throughput_steps_per_sec": 2000.0,
                "step_latency_us": {"p50_us": 50.0, "p99_us": 90.0}}"#,
        )
        .unwrap();
        assert!(compare(&better, &base, 10.0).is_empty());
    }

    #[test]
    fn compare_understands_curve_schemas() {
        // batch-exec: rows are keyed by sweep parameter, so only points
        // measured at the same scale compare, and a slower vectorized
        // path at a matching domain warns.
        let base = json::parse(
            r#"{"workload": "batch-exec",
                "domain_curve": [
                  {"entities": 1000, "scalar_tuples_per_sec": 100.0,
                   "vectorized_tuples_per_sec": 400.0, "speedup": 4.0}],
                "batch_sweep": [{"batch": 64, "tuples_per_sec": 400.0}]}"#,
        )
        .unwrap();
        let worse = json::parse(
            r#"{"workload": "batch-exec",
                "domain_curve": [
                  {"entities": 1000, "scalar_tuples_per_sec": 100.0,
                   "vectorized_tuples_per_sec": 150.0, "speedup": 1.5}],
                "batch_sweep": [{"batch": 64, "tuples_per_sec": 150.0}]}"#,
        )
        .unwrap();
        let warnings = compare(&worse, &base, 25.0);
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("domain_curve[entities=1000].vectorized_tuples_per_sec")),
            "{warnings:?}"
        );
        // A smoke-scale snapshot shares no row labels with a full-scale
        // baseline: vacuously green, never nonsense deltas.
        let smoke = json::parse(
            r#"{"workload": "batch-exec",
                "domain_curve": [
                  {"entities": 256, "scalar_tuples_per_sec": 1.0,
                   "vectorized_tuples_per_sec": 1.0, "speedup": 1.0}],
                "batch_sweep": [{"batch": 8, "tuples_per_sec": 1.0}]}"#,
        )
        .unwrap();
        assert!(compare(&smoke, &base, 25.0).is_empty());
        // Mismatched document kinds warn instead of comparing.
        let scenarios = json::parse(r#"{"workload": "scenarios", "scenarios": []}"#).unwrap();
        let warnings = compare(&scenarios, &base, 25.0);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("workload mismatch"), "{warnings:?}");
    }

    #[test]
    fn compare_all_discovers_every_committed_baseline() {
        let root = std::env::temp_dir().join(format!("rtic_compare_all_{}", std::process::id()));
        let baselines = root.join("baselines");
        let fresh = root.join("fresh");
        std::fs::create_dir_all(&baselines).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        let motivating = r#"{"workload": "motivating", "throughput_steps_per_sec": 1000.0}"#;
        std::fs::write(baselines.join("BENCH_motivating.json"), motivating).unwrap();
        std::fs::write(
            baselines.join("BENCH_scenarios.json"),
            r#"{"workload": "scenarios",
                "scenarios": [{"scenario": "fraud", "steps_per_sec": 100.0}]}"#,
        )
        .unwrap();
        std::fs::write(baselines.join("not_a_baseline.txt"), "ignored").unwrap();
        // Fresh snapshot only for motivating: a regression there warns,
        // and the uncovered scenarios baseline is reported, not skipped.
        std::fs::write(
            fresh.join("BENCH_motivating.json"),
            r#"{"workload": "motivating", "throughput_steps_per_sec": 400.0}"#,
        )
        .unwrap();
        let reports = compare_all(&baselines, &fresh, 25.0).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(
            reports.iter().map(|(f, _)| f.as_str()).collect::<Vec<_>>(),
            vec!["BENCH_motivating.json", "BENCH_scenarios.json"]
        );
        assert!(reports[0].1[0].contains("throughput"), "{reports:?}");
        assert!(reports[1].1[0].contains("no fresh snapshot"), "{reports:?}");
    }

    #[test]
    fn shard_curve_sweeps_and_serializes() {
        let points = shard_curve(&[2, 8], 120, 7).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points
            .iter()
            .all(|p| p.sharded_steps_per_sec > 0.0 && p.unsharded_steps_per_sec > 0.0));
        // More keys materialize more shards.
        assert!(points[1].peak_shards > points[0].peak_shards, "{points:?}");
        assert!(points[0].peak_shards >= 1, "{points:?}");
        let doc = json::parse(&shard_curve_to_json(&points, 120, 7, "abc").render()).unwrap();
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("shard-scaling")
        );
        let curve = doc.get("shard_curve").and_then(Json::as_arr).unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].get("keys").and_then(Json::as_u64), Some(2));
        assert!(curve[1]
            .get("peak_shards")
            .and_then(Json::as_u64)
            .is_some_and(|p| p > 1));
    }

    #[test]
    fn scenario_sweep_covers_every_production_scenario() {
        let points = scenario_sweep(40, 32, 4, 7).unwrap();
        assert_eq!(points.len(), 4);
        let names: Vec<&str> = points.iter().map(|p| p.scenario.as_str()).collect();
        assert_eq!(names, ["fraud", "telemetry", "ratelimit", "access"]);
        for p in &points {
            assert!(p.steps_per_sec > 0.0, "{p:?}");
            assert!(p.expected > 0, "{} injects at this seed", p.scenario);
            assert!(
                p.violations >= p.expected,
                "{}: every injection is caught",
                p.scenario
            );
            assert!(p.peak_shards >= 1, "{}: sharded plane engaged", p.scenario);
        }
        let doc = json::parse(&scenario_sweep_to_json(&points, 7, "abc").render()).unwrap();
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("scenarios")
        );
        let rows = doc.get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0].get("scenario").and_then(Json::as_str),
            Some("fraud")
        );
        assert!(rows[0]
            .get("peak_shards")
            .and_then(Json::as_u64)
            .is_some_and(|p| p >= 1));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn batch_exec_curve_measures_both_paths() {
        // Smoke scale; the real acceptance point runs at 10⁵ entities.
        // `batch_exec_curve` itself asserts the vectorized reports are
        // byte-identical to the scalar ones, so a pass here is also a
        // correctness check on the vectorized execution path.
        let points = batch_exec_curve(&[128], 30, 11).unwrap();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.entities, 128);
        assert_eq!(p.steps, 30);
        assert!(p.tuples > 0);
        assert!(p.scalar_tuples_per_sec > 0.0);
        assert!(p.vectorized_tuples_per_sec > 0.0);
        assert!(p.speedup > 0.0);
    }

    #[test]
    fn batch_size_sweep_holds_reports_fixed() {
        let sweep = batch_size_sweep(128, 30, &[1, 4, 16], 11).unwrap();
        assert_eq!(
            sweep.iter().map(|p| p.batch).collect::<Vec<_>>(),
            vec![1, 4, 16]
        );
        assert!(sweep.iter().all(|p| p.tuples_per_sec > 0.0));
    }

    #[test]
    fn batch_exec_json_round_trips() {
        let curve = batch_exec_curve(&[64], 20, 5).unwrap();
        let sweep = batch_size_sweep(64, 20, &[1, 8], 5).unwrap();
        let doc =
            json::parse(&batch_exec_to_json(&curve, &sweep, 64, 20, 5, "abc123").render()).unwrap();
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("batch-exec")
        );
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(5));
        let rows = doc
            .get("domain_curve")
            .and_then(Json::as_arr)
            .expect("domain_curve array");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("entities").and_then(Json::as_u64), Some(64));
        assert!(rows[0]
            .get("speedup")
            .and_then(Json::as_f64)
            .is_some_and(|s| s > 0.0));
        let sweep_rows = doc
            .get("batch_sweep")
            .and_then(Json::as_arr)
            .expect("batch_sweep array");
        assert_eq!(sweep_rows.len(), 2);
        assert_eq!(sweep_rows[0].get("batch").and_then(Json::as_u64), Some(1));
    }
}
