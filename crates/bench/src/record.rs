//! Perf-trajectory recorder: machine-readable benchmark snapshots.
//!
//! `cargo run -p rtic-bench --release --bin record` runs a named workload
//! through the profiled incremental checker and writes a
//! `BENCH_<workload>.json` snapshot — throughput, step-latency
//! percentiles, the plan-node hot list, and the git revision — so a
//! repository can accumulate a perf trajectory over time. `--compare
//! BASELINE --warn-pct N` diffs the fresh snapshot against a committed
//! baseline and prints warn-only regressions (CI never fails on noise,
//! it surfaces it).

use std::time::Instant;

use rtic_core::{Checker, EncodingOptions, IncrementalChecker, ProfiledNode};
use rtic_obs::json::Json;
use rtic_workload::{
    library, Audit, Library, Monitor, RandomWorkload, Reservations, ScenarioParams,
};

/// Bumped when the snapshot layout changes shape (field renames,
/// semantic changes) so downstream tooling can refuse mixed files.
pub const SCHEMA_VERSION: u64 = 1;

/// Workload names `record` understands. `motivating` is the paper's
/// running reservations example — the one whose baseline is committed.
pub const WORKLOADS: &[&str] = &["motivating", "library", "monitor", "audit", "random"];

/// One recorded run: the measured numbers behind the JSON snapshot.
#[derive(Clone, Debug)]
pub struct Recording {
    /// Workload name (see [`WORKLOADS`]).
    pub workload: String,
    /// Transitions processed.
    pub steps: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// End-to-end throughput in steps/second.
    pub throughput: f64,
    /// Exact step-latency percentiles in microseconds:
    /// `(p50, p90, p99, max)`.
    pub latency_us: (f64, f64, f64, f64),
    /// Violation witnesses across the run.
    pub violations: usize,
    /// Hottest plan nodes across all constraints, by inclusive time.
    pub hot_nodes: Vec<(String, ProfiledNode)>,
}

/// Exact (nearest-rank) percentile of an ascending-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs `workload` for `steps` transitions through one profiled
/// incremental checker per constraint, timing every step.
pub fn record(workload: &str, steps: usize, seed: u64) -> Result<Recording, String> {
    let generated = match workload {
        "motivating" => Reservations {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "library" => Library {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "monitor" => Monitor {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "audit" => Audit {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        "random" => RandomWorkload {
            steps,
            seed,
            ..Default::default()
        }
        .generate(),
        other => {
            return Err(format!(
                "unknown workload `{other}` (expected one of {})",
                WORKLOADS.join(", ")
            ))
        }
    };
    let mut checkers: Vec<IncrementalChecker> = generated
        .constraints
        .iter()
        .map(|c| {
            IncrementalChecker::with_options(
                c.clone(),
                std::sync::Arc::clone(&generated.catalog),
                EncodingOptions {
                    profile_plans: true,
                    ..Default::default()
                },
            )
            .map_err(|e| format!("constraint `{}`: {e}", c.name))
        })
        .collect::<Result<_, String>>()?;

    let mut step_us = Vec::with_capacity(generated.transitions.len());
    let mut violations = 0usize;
    let run_start = Instant::now();
    for tr in &generated.transitions {
        let s = Instant::now();
        for checker in &mut checkers {
            let report = checker
                .step(tr.time, &tr.update)
                .map_err(|e| format!("workload step at {}: {e}", tr.time))?;
            violations += report.violation_count();
        }
        step_us.push(s.elapsed().as_secs_f64() * 1e6);
    }
    let total_secs = run_start.elapsed().as_secs_f64();

    let mut sorted = step_us.clone();
    sorted.sort_by(f64::total_cmp);
    let max_us = sorted.last().copied().unwrap_or(0.0);

    // Hot list across the whole fleet, hottest first; node identity is
    // `<constraint> <path>` so multi-constraint workloads stay readable.
    let mut hot: Vec<(String, ProfiledNode)> = Vec::new();
    for checker in &checkers {
        let name = checker.constraint().name;
        if let Some(profile) = checker.plan_profile() {
            for node in profile.hot(5) {
                hot.push((name.to_string(), node.clone()));
            }
        }
    }
    hot.sort_by(|a, b| {
        b.1.counts
            .time_ns
            .cmp(&a.1.counts.time_ns)
            .then_with(|| a.0.cmp(&b.0))
    });
    hot.truncate(10);

    Ok(Recording {
        workload: workload.to_string(),
        steps: generated.transitions.len(),
        seed,
        throughput: if total_secs > 0.0 {
            generated.transitions.len() as f64 / total_secs
        } else {
            0.0
        },
        latency_us: (
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.90),
            percentile(&sorted, 0.99),
            max_us,
        ),
        violations,
        hot_nodes: hot,
    })
}

/// One point of the shard-scaling throughput curve: the same
/// entity-churn history checked with the sharded data plane off and on.
#[derive(Clone, Debug)]
pub struct ShardCurvePoint {
    /// Distinct entity keys (passengers) in the stream.
    pub keys: usize,
    /// Steps/second through the unsharded [`rtic_core::ConstraintSet`].
    pub unsharded_steps_per_sec: f64,
    /// Steps/second with `--shard auto` semantics (sharding on).
    pub sharded_steps_per_sec: f64,
    /// Steps/second sharded with four workers — per-shard jobs of one
    /// constraint spread over the scoped-thread pool.
    pub sharded_parallel_steps_per_sec: f64,
    /// High-water mark of live shards across the sharded run.
    pub peak_shards: usize,
}

/// Runs the shard-scaling sweep: for each key count, the same
/// [`crate::experiments::shard_stream`] history through an unsharded and
/// a sharded fleet, timed end to end. The two runs' report lines are
/// asserted identical — a curve over diverging planes would be
/// meaningless.
pub fn shard_curve(
    key_counts: &[usize],
    steps: usize,
    seed: u64,
) -> Result<Vec<ShardCurvePoint>, String> {
    use crate::experiments::{shard_catalog, shard_constraint, shard_stream};
    use rtic_core::{ConstraintSet, Parallelism};

    let catalog = shard_catalog();
    let constraint = shard_constraint();
    let mut points = Vec::with_capacity(key_counts.len());
    for &keys in key_counts {
        let transitions = shard_stream(keys, steps, seed);
        let run = |sharded: bool,
                   parallelism: Parallelism|
         -> Result<(f64, usize, Vec<String>), String> {
            let mut set = ConstraintSet::new([constraint.clone()], std::sync::Arc::clone(&catalog))
                .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
                .with_sharding(sharded)
                .with_parallelism(parallelism);
            let mut lines = Vec::new();
            let start = Instant::now();
            for tr in &transitions {
                let reports = set
                    .step(tr.time, &tr.update)
                    .map_err(|e| format!("shard curve step at {}: {e}", tr.time))?;
                lines.extend(reports.iter().map(|r| r.to_string()));
            }
            let secs = start.elapsed().as_secs_f64();
            let peak = set
                .shard_stats()
                .iter()
                .map(|(_, s)| s.peak)
                .max()
                .unwrap_or(0);
            let throughput = if secs > 0.0 {
                transitions.len() as f64 / secs
            } else {
                0.0
            };
            Ok((throughput, peak, lines))
        };
        let (unsharded, _, plain_lines) = run(false, Parallelism::Sequential)?;
        let (sharded, peak, sharded_lines) = run(true, Parallelism::Sequential)?;
        let (sharded_par, _, par_lines) = run(true, Parallelism::N(4))?;
        if plain_lines != sharded_lines || plain_lines != par_lines {
            return Err(format!(
                "shard curve at {keys} key(s): sharded reports diverge from unsharded"
            ));
        }
        points.push(ShardCurvePoint {
            keys,
            unsharded_steps_per_sec: unsharded,
            sharded_steps_per_sec: sharded,
            sharded_parallel_steps_per_sec: sharded_par,
            peak_shards: peak,
        });
    }
    Ok(points)
}

/// Renders a shard-scaling sweep as the `BENCH_shard_scaling.json`
/// document.
pub fn shard_curve_to_json(points: &[ShardCurvePoint], steps: usize, seed: u64, rev: &str) -> Json {
    let curve: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::object()
                .set("keys", p.keys as u64)
                .set("unsharded_steps_per_sec", round3(p.unsharded_steps_per_sec))
                .set("sharded_steps_per_sec", round3(p.sharded_steps_per_sec))
                .set(
                    "sharded_parallel_steps_per_sec",
                    round3(p.sharded_parallel_steps_per_sec),
                )
                .set("peak_shards", p.peak_shards as u64)
        })
        .collect();
    Json::object()
        .set("schema_version", SCHEMA_VERSION)
        .set("workload", "shard-scaling")
        .set("steps", steps as u64)
        .set("seed", seed)
        .set("git_rev", rev)
        .set("shard_curve", Json::Arr(curve))
}

/// One production scenario's measured point in the `record scenarios`
/// sweep: the whole fleet checked through the entity-key sharded
/// constraint set at a production-scale entity domain.
#[derive(Clone, Debug)]
pub struct ScenarioPoint {
    /// Registry name of the scenario.
    pub scenario: String,
    /// Transitions processed.
    pub steps: usize,
    /// Entity-key domain size.
    pub entities: usize,
    /// Steps/second through the sharded constraint set.
    pub steps_per_sec: f64,
    /// Violation witnesses across the run.
    pub violations: usize,
    /// Injected-violation expectations the generator planted.
    pub expected: usize,
    /// High-water mark of live shards across the run.
    pub peak_shards: usize,
}

/// Runs every production scenario (fraud, telemetry, ratelimit, access)
/// at the given shape through the sharded [`rtic_core::ConstraintSet`],
/// timed end to end. `entities` is the knob that soaks the sharded
/// plane — production shapes run it at 10⁵.
pub fn scenario_sweep(
    steps: usize,
    entities: usize,
    events_per_step: usize,
    seed: u64,
) -> Result<Vec<ScenarioPoint>, String> {
    use rtic_core::ConstraintSet;

    let params = ScenarioParams {
        steps,
        entities,
        events_per_step,
        violation_rate: 0.05,
        seed,
    };
    let mut points = Vec::new();
    for scenario in library::production() {
        let generated = scenario.generate(&params);
        let mut set = ConstraintSet::new(
            generated.constraints.iter().cloned(),
            std::sync::Arc::clone(&generated.catalog),
        )
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
        .with_sharding(true);
        let mut violations = 0usize;
        let start = Instant::now();
        for tr in &generated.transitions {
            let reports = set
                .step(tr.time, &tr.update)
                .map_err(|e| format!("{} step at {}: {e}", scenario.name, tr.time))?;
            violations += reports.iter().map(|r| r.violation_count()).sum::<usize>();
        }
        let secs = start.elapsed().as_secs_f64();
        let peak = set
            .shard_stats()
            .iter()
            .map(|(_, s)| s.peak)
            .max()
            .unwrap_or(0);
        points.push(ScenarioPoint {
            scenario: scenario.name.to_string(),
            steps: generated.transitions.len(),
            entities,
            steps_per_sec: if secs > 0.0 {
                generated.transitions.len() as f64 / secs
            } else {
                0.0
            },
            violations,
            expected: generated.expected.len(),
            peak_shards: peak,
        });
    }
    Ok(points)
}

/// Renders a scenario sweep as the `BENCH_scenarios.json` document.
pub fn scenario_sweep_to_json(points: &[ScenarioPoint], seed: u64, rev: &str) -> Json {
    let rows: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::object()
                .set("scenario", p.scenario.as_str())
                .set("steps", p.steps as u64)
                .set("entities", p.entities as u64)
                .set("steps_per_sec", round3(p.steps_per_sec))
                .set("violations", p.violations as u64)
                .set("expected", p.expected as u64)
                .set("peak_shards", p.peak_shards as u64)
        })
        .collect();
    Json::object()
        .set("schema_version", SCHEMA_VERSION)
        .set("workload", "scenarios")
        .set("seed", seed)
        .set("git_rev", rev)
        .set("scenarios", Json::Arr(rows))
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository (snapshots must never fail on a bare export).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Renders a recording as the `BENCH_<workload>.json` document.
pub fn to_json(rec: &Recording, git_rev: &str) -> Json {
    let hot: Vec<Json> = rec
        .hot_nodes
        .iter()
        .map(|(constraint, node)| {
            Json::object()
                .set("constraint", constraint.as_str())
                .set("path", node.desc.path.as_str())
                .set("label", node.desc.label.as_str())
                .set("calls", node.counts.calls)
                .set("time_ns", node.counts.time_ns)
                .set("rows_in", node.counts.rows_in)
                .set("rows_out", node.counts.rows_out)
                .set("cache_hits", node.counts.cache_hits)
                .set("cache_misses", node.counts.cache_misses)
        })
        .collect();
    let (p50, p90, p99, max) = rec.latency_us;
    Json::object()
        .set("schema_version", SCHEMA_VERSION)
        .set("workload", rec.workload.as_str())
        .set("steps", rec.steps as u64)
        .set("seed", rec.seed)
        .set("git_rev", git_rev)
        .set("throughput_steps_per_sec", round3(rec.throughput))
        .set(
            "step_latency_us",
            Json::object()
                .set("p50_us", round3(p50))
                .set("p90_us", round3(p90))
                .set("p99_us", round3(p99))
                .set("max_us", round3(max)),
        )
        .set("violations", rec.violations as u64)
        .set("plan_hot_nodes", Json::Arr(hot))
}

/// Compares a fresh snapshot against a baseline document. Returns one
/// human-readable warning per metric that regressed by more than
/// `warn_pct` percent — empty means within threshold. Comparison is
/// warn-only by design: one-shot CI timings are noisy, so the trajectory
/// is surfaced, not enforced.
pub fn compare(current: &Json, baseline: &Json, warn_pct: f64) -> Vec<String> {
    let mut warnings = Vec::new();
    let field = |doc: &Json, path: &[&str]| -> Option<f64> {
        let mut node = doc.clone();
        for key in path {
            node = node.get(key)?.clone();
        }
        node.as_f64()
    };
    // (path, higher-is-better)
    let metrics: &[(&[&str], bool)] = &[
        (&["throughput_steps_per_sec"], true),
        (&["step_latency_us", "p50_us"], false),
        (&["step_latency_us", "p99_us"], false),
    ];
    for (path, higher_better) in metrics {
        let (Some(cur), Some(base)) = (field(current, path), field(baseline, path)) else {
            continue;
        };
        if base <= 0.0 {
            continue;
        }
        let delta_pct = (cur - base) / base * 100.0;
        let regressed = if *higher_better {
            delta_pct < -warn_pct
        } else {
            delta_pct > warn_pct
        };
        if regressed {
            warnings.push(format!(
                "{}: {:.3} vs baseline {:.3} ({:+.1}%, warn threshold {}%)",
                path.join("."),
                cur,
                base,
                delta_pct,
                warn_pct
            ));
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_obs::json;

    #[test]
    fn records_the_motivating_workload() {
        let rec = record("motivating", 60, 7).unwrap();
        assert_eq!(rec.workload, "motivating");
        assert_eq!(rec.steps, 60);
        assert!(rec.throughput > 0.0);
        let (p50, p90, p99, max) = rec.latency_us;
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{rec:?}");
        assert!(!rec.hot_nodes.is_empty(), "profiled nodes recorded");
        // Hot list is hottest-first.
        for pair in rec.hot_nodes.windows(2) {
            assert!(pair[0].1.counts.time_ns >= pair[1].1.counts.time_ns);
        }
    }

    #[test]
    fn unknown_workloads_are_rejected() {
        let err = record("nope", 10, 1).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let rec = record("motivating", 40, 7).unwrap();
        let doc = json::parse(&to_json(&rec, "abc123").render()).unwrap();
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("motivating")
        );
        assert_eq!(doc.get("git_rev").and_then(Json::as_str), Some("abc123"));
        assert!(doc
            .get("throughput_steps_per_sec")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
        let hot = doc.get("plan_hot_nodes").and_then(Json::as_arr).unwrap();
        assert!(!hot.is_empty());
        assert!(hot[0].get("path").and_then(Json::as_str).is_some());
    }

    #[test]
    fn compare_warns_only_beyond_threshold() {
        let base = json::parse(
            r#"{"throughput_steps_per_sec": 1000.0,
                "step_latency_us": {"p50_us": 100.0, "p99_us": 200.0}}"#,
        )
        .unwrap();
        // Within threshold: no warnings.
        let near = json::parse(
            r#"{"throughput_steps_per_sec": 960.0,
                "step_latency_us": {"p50_us": 104.0, "p99_us": 208.0}}"#,
        )
        .unwrap();
        assert!(compare(&near, &base, 10.0).is_empty());
        // Throughput collapse and latency blow-up both warn.
        let worse = json::parse(
            r#"{"throughput_steps_per_sec": 500.0,
                "step_latency_us": {"p50_us": 100.0, "p99_us": 400.0}}"#,
        )
        .unwrap();
        let warnings = compare(&worse, &base, 10.0);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("throughput"), "{warnings:?}");
        // Improvements never warn.
        let better = json::parse(
            r#"{"throughput_steps_per_sec": 2000.0,
                "step_latency_us": {"p50_us": 50.0, "p99_us": 90.0}}"#,
        )
        .unwrap();
        assert!(compare(&better, &base, 10.0).is_empty());
    }

    #[test]
    fn shard_curve_sweeps_and_serializes() {
        let points = shard_curve(&[2, 8], 120, 7).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points
            .iter()
            .all(|p| p.sharded_steps_per_sec > 0.0 && p.unsharded_steps_per_sec > 0.0));
        // More keys materialize more shards.
        assert!(points[1].peak_shards > points[0].peak_shards, "{points:?}");
        assert!(points[0].peak_shards >= 1, "{points:?}");
        let doc = json::parse(&shard_curve_to_json(&points, 120, 7, "abc").render()).unwrap();
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("shard-scaling")
        );
        let curve = doc.get("shard_curve").and_then(Json::as_arr).unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].get("keys").and_then(Json::as_u64), Some(2));
        assert!(curve[1]
            .get("peak_shards")
            .and_then(Json::as_u64)
            .is_some_and(|p| p > 1));
    }

    #[test]
    fn scenario_sweep_covers_every_production_scenario() {
        let points = scenario_sweep(40, 32, 4, 7).unwrap();
        assert_eq!(points.len(), 4);
        let names: Vec<&str> = points.iter().map(|p| p.scenario.as_str()).collect();
        assert_eq!(names, ["fraud", "telemetry", "ratelimit", "access"]);
        for p in &points {
            assert!(p.steps_per_sec > 0.0, "{p:?}");
            assert!(p.expected > 0, "{} injects at this seed", p.scenario);
            assert!(
                p.violations >= p.expected,
                "{}: every injection is caught",
                p.scenario
            );
            assert!(p.peak_shards >= 1, "{}: sharded plane engaged", p.scenario);
        }
        let doc = json::parse(&scenario_sweep_to_json(&points, 7, "abc").render()).unwrap();
        assert_eq!(
            doc.get("workload").and_then(Json::as_str),
            Some("scenarios")
        );
        let rows = doc.get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0].get("scenario").and_then(Json::as_str),
            Some("fraud")
        );
        assert!(rows[0]
            .get("peak_shards")
            .and_then(Json::as_u64)
            .is_some_and(|p| p >= 1));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
