//! One function per table/figure of EXPERIMENTS.md.
//!
//! Each function builds its workload, runs the relevant checkers with
//! instrumentation, and renders a [`Table`]. The binary
//! `cargo run -p rtic-bench --release --bin experiments` prints them all;
//! the Criterion benches in `benches/` sample the same code paths.

use std::sync::Arc;
use std::time::Instant;

use rtic_active::ActiveChecker;
use rtic_core::{
    BackendId, Checker, ConstraintSet, EncodingOptions, IncrementalChecker, NaiveChecker,
    Parallelism, WindowedChecker,
};
use rtic_history::Transition;
use rtic_relation::{tuple, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;
use rtic_workload::{Generated, Library, Monitor, RandomWorkload, Reservations};

use crate::measure::{run_instrumented, RunMeasurement};
use crate::table::{fmt_micros, Table};

/// Sweep sizes: `quick` for CI-speed runs, `full` for the recorded tables.
#[derive(Clone, Debug)]
pub struct Scale {
    /// History lengths for T1/F1.
    pub history_lengths: Vec<usize>,
    /// Largest history the naive checker is asked to process for
    /// *unbounded* constraints (quadratic cost); longer rows print `—`.
    pub naive_cap: usize,
    /// Metric bounds for T2/F2/T6.
    pub bounds: Vec<u64>,
    /// Updates-per-step sizes for T3.
    pub update_sizes: Vec<usize>,
    /// History length for throughput/overhead runs (F3/T5).
    pub run_length: usize,
    /// Fleet sizes (#constraints) for T8.
    pub fleet_sizes: Vec<usize>,
}

impl Scale {
    /// The full published sweep.
    pub fn full() -> Scale {
        Scale {
            history_lengths: vec![250, 500, 1000, 2000, 4000, 8000],
            naive_cap: 2000,
            bounds: vec![4, 8, 16, 32, 64, 128],
            update_sizes: vec![4, 8, 16, 32, 64, 128],
            run_length: 600,
            fleet_sizes: vec![4, 16, 64],
        }
    }

    /// A seconds-scale smoke sweep.
    pub fn quick() -> Scale {
        Scale {
            history_lengths: vec![100, 200, 400],
            naive_cap: 400,
            bounds: vec![4, 16, 64],
            update_sizes: vec![4, 16, 64],
            run_length: 150,
            fleet_sizes: vec![4, 16],
        }
    }
}

fn reservations_at(n: usize) -> Generated {
    Reservations {
        steps: n,
        new_per_step: 2,
        deadline: 5,
        violation_rate: 0.02,
        seed: 42,
    }
    .generate()
}

/// The paper's *motivating* (unbounded-interval) constraint over the
/// reservations schema — the one that forces naive history scans.
fn motivating_constraint() -> Constraint {
    parse_constraint(
        "deny unconfirmed_ever: reserved(p, f) && once[2,*] reserved_at(p, f) \
         && !once confirmed(p, f)",
    )
    .expect("parses")
}

fn inc(c: &Constraint, g: &Generated) -> IncrementalChecker {
    IncrementalChecker::new(c.clone(), Arc::clone(&g.catalog)).expect("compiles")
}

/// The incremental encoding with the compiled-plan executor switched off:
/// same maintenance, but every per-step evaluation re-walks the formula
/// tree. The planned-vs-interpreted columns in F1/T8 isolate what the
/// plan layer buys on top of the encoding itself.
fn inc_interp(c: &Constraint, g: &Generated) -> IncrementalChecker {
    IncrementalChecker::with_options(
        c.clone(),
        Arc::clone(&g.catalog),
        EncodingOptions {
            interpret_eval: true,
            ..EncodingOptions::default()
        },
    )
    .expect("compiles")
}

fn win(c: &Constraint, g: &Generated) -> WindowedChecker {
    WindowedChecker::new(c.clone(), Arc::clone(&g.catalog)).expect("compiles")
}

fn nai(c: &Constraint, g: &Generated) -> NaiveChecker {
    NaiveChecker::new(c.clone(), Arc::clone(&g.catalog)).expect("compiles")
}

fn act(c: &Constraint, g: &Generated) -> ActiveChecker {
    ActiveChecker::new(c.clone(), Arc::clone(&g.catalog)).expect("compiles")
}

/// Constructs any backend from the shared [`BackendId`] enumeration against
/// a generated workload, so tables that sweep "all checkers" derive their
/// columns from `BackendId::ALL` instead of a hand-maintained list.
pub fn backend_checker(b: BackendId, c: &Constraint, g: &Generated) -> Box<dyn Checker> {
    match b {
        BackendId::Incremental => Box::new(inc(c, g)),
        BackendId::Naive => Box::new(nai(c, g)),
        BackendId::Windowed => Box::new(win(c, g)),
        BackendId::Active => Box::new(act(c, g)),
    }
}

/// T1 — retained space vs. history length, bounded constraint.
pub fn t1_space(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T1",
        "retained space vs history length (bounded constraint; units = aux keys + timestamps + stored tuples)",
        &["n", "incremental", "windowed", "naive", "naive/incremental"],
    );
    t.note("claim: encoding space is independent of history length; naive grows linearly");
    for &n in &scale.history_lengths {
        let g = reservations_at(n);
        let c = &g.constraints[0];
        let mi = run_instrumented(&mut inc(c, &g), &g.transitions, 16);
        let mw = run_instrumented(&mut win(c, &g), &g.transitions, 16);
        let mn = run_instrumented(&mut nai(c, &g), &g.transitions, 16);
        assert_eq!(mi.violations, mn.violations, "checkers must agree");
        t.row(vec![
            n.to_string(),
            mi.max_retained_units.to_string(),
            mw.max_retained_units.to_string(),
            mn.max_retained_units.to_string(),
            format!(
                "{:.1}x",
                mn.max_retained_units as f64 / mi.max_retained_units.max(1) as f64
            ),
        ]);
    }
    t
}

/// F1 — per-step latency vs. history length, both constraint classes.
pub fn f1_step_latency(scale: &Scale) -> Table {
    let mut t = Table::new(
        "F1",
        "tail per-step latency vs history length",
        &[
            "n",
            "inc (bounded)",
            "naive (bounded)",
            "inc (unbounded)",
            "inc interp (unbounded)",
            "naive (unbounded)",
        ],
    );
    t.note("claim: encoding step time does not grow with history length;");
    t.note("naive re-evaluation over the full history does (visible on the unbounded constraint);");
    t.note("'inc interp' disables the compiled-plan executor — the gap to 'inc' is the plan layer");
    let unbounded = motivating_constraint();
    for &n in &scale.history_lengths {
        let g = reservations_at(n);
        let bounded = &g.constraints[0];
        let mib = run_instrumented(&mut inc(bounded, &g), &g.transitions, 0);
        let mnb = run_instrumented(&mut nai(bounded, &g), &g.transitions, 0);
        let miu = run_instrumented(&mut inc(&unbounded, &g), &g.transitions, 0);
        let mii = run_instrumented(&mut inc_interp(&unbounded, &g), &g.transitions, 0);
        assert_eq!(miu.violations, mii.violations, "executors must agree");
        let mnu = if n <= scale.naive_cap {
            Some(run_instrumented(
                &mut nai(&unbounded, &g),
                &g.transitions,
                0,
            ))
        } else {
            None
        };
        t.row(vec![
            n.to_string(),
            fmt_micros(mib.tail_step_us),
            fmt_micros(mnb.tail_step_us),
            fmt_micros(miu.tail_step_us),
            fmt_micros(mii.tail_step_us),
            mnu.map_or("—".into(), |m| fmt_micros(m.tail_step_us)),
        ]);
    }
    t
}

/// T2 — aux space vs. metric bound for the general (two-sided) window.
pub fn t2_bound_space(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T2",
        "aux timestamps vs metric bound b for once[1,b] (general deque encoding)",
        &[
            "b",
            "max aux timestamps",
            "live keys",
            "ts per key",
            "paper bound b+1",
        ],
    );
    t.note("claim: per-key timestamps stay ≤ b+1 on an integer clock");
    for &b in &scale.bounds {
        let g = RandomWorkload {
            steps: scale.run_length,
            domain: 16,
            updates_per_step: 8,
            bound: b,
            seed: 42,
            ..Default::default()
        }
        .generate();
        let c = parse_constraint(&format!("deny hit: base(k) && once[1,{b}] ev(k)"))
            .expect("template parses");
        let mut checker = inc(&c, &g);
        let mut max_ts = 0usize;
        let mut keys_at_max = 1usize;
        for tr in &g.transitions {
            checker
                .step(tr.time, &tr.update)
                .expect("generated stream is monotone");
            let s = checker.space();
            if s.aux_timestamps > max_ts {
                max_ts = s.aux_timestamps;
                keys_at_max = s.aux_keys.max(1);
            }
        }
        let per_key = max_ts as f64 / keys_at_max as f64;
        assert!(per_key <= (b + 1) as f64 + 1e-9, "paper bound violated");
        t.row(vec![
            b.to_string(),
            max_ts.to_string(),
            keys_at_max.to_string(),
            format!("{per_key:.1}"),
            (b + 1).to_string(),
        ]);
    }
    t
}

/// F2 — per-step time vs. metric bound (deadline), three checkers.
pub fn f2_bound_time(scale: &Scale) -> Table {
    let mut t = Table::new(
        "F2",
        "tail per-step latency vs deadline d (reservations, bounded constraint)",
        &["d", "incremental", "windowed", "naive"],
    );
    t.note("claim: windowed degrades with the bound (window holds O(d) states);");
    t.note("the encoding pays only for what changes");
    for &d in &scale.bounds {
        let g = Reservations {
            steps: scale.run_length,
            new_per_step: 2,
            deadline: d.max(2),
            violation_rate: 0.02,
            seed: 42,
        }
        .generate();
        let c = &g.constraints[0];
        let mi = run_instrumented(&mut inc(c, &g), &g.transitions, 0);
        let mw = run_instrumented(&mut win(c, &g), &g.transitions, 0);
        let mn = run_instrumented(&mut nai(c, &g), &g.transitions, 0);
        t.row(vec![
            d.to_string(),
            fmt_micros(mi.tail_step_us),
            fmt_micros(mw.tail_step_us),
            fmt_micros(mn.tail_step_us),
        ]);
    }
    t
}

/// T3 — scaling in update size (active-domain churn).
pub fn t3_domain_scaling(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T3",
        "tail per-step latency and aux keys vs update size u (random workload)",
        &["u", "inc step", "win step", "naive step", "inc aux keys"],
    );
    t.note("claim: encoding step cost scales with the update/state, not the history");
    for &u in &scale.update_sizes {
        let g = RandomWorkload {
            steps: scale.run_length,
            domain: 4 * u,
            updates_per_step: u,
            bound: 8,
            seed: 42,
            ..Default::default()
        }
        .generate();
        let c = &g.constraints[0];
        let mi = run_instrumented(&mut inc(c, &g), &g.transitions, 16);
        let mw = run_instrumented(&mut win(c, &g), &g.transitions, 0);
        let mn = run_instrumented(&mut nai(c, &g), &g.transitions, 0);
        t.row(vec![
            u.to_string(),
            fmt_micros(mi.tail_step_us),
            fmt_micros(mw.tail_step_us),
            fmt_micros(mn.tail_step_us),
            mi.final_space.aux_keys.to_string(),
        ]);
    }
    t
}

/// T4 — detection exactness on the three domain workloads.
pub fn t4_detection(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T4",
        "injected violations vs detections (incremental checker)",
        &[
            "workload",
            "constraint",
            "injected",
            "found at deadline",
            "exact",
        ],
    );
    t.note("claim: every violation is reported at the earliest state where it is definite");
    let n = scale.run_length;
    let res = Reservations {
        steps: n,
        violation_rate: 0.08,
        ..Default::default()
    }
    .generate();
    let lib = Library {
        steps: n,
        violation_rate: 0.08,
        ..Default::default()
    }
    .generate();
    let mon = Monitor {
        steps: n,
        violation_rate: 0.2,
        spike_rate: 0.02,
        ..Default::default()
    }
    .generate();
    for g in [&res, &lib, &mon] {
        for c in &g.constraints {
            let relevant: Vec<_> = g
                .expected
                .iter()
                .filter(|e| e.constraint == c.name)
                .collect();
            let mut checker = inc(c, g);
            let reports: Vec<_> = g
                .transitions
                .iter()
                .map(|tr| {
                    checker
                        .step(tr.time, &tr.update)
                        .expect("generated stream is monotone")
                })
                .collect();
            let found = relevant
                .iter()
                .filter(|e| reports.iter().any(|r| e.found_in(r)))
                .count();
            t.row(vec![
                match g.constraints[0].name.as_str() {
                    "unconfirmed" => "reservations".into(),
                    "overdue" => "library".into(),
                    _ => "monitor".into(),
                },
                c.name.to_string(),
                relevant.len().to_string(),
                found.to_string(),
                if found == relevant.len() {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    t
}

/// F3 — steady-state throughput across workloads and checkers.
pub fn f3_throughput(scale: &Scale) -> Table {
    let mut columns = vec!["workload"];
    columns.extend(BackendId::ALL.iter().map(|b| b.name()));
    let mut t = Table::new(
        "F3",
        "steady-state throughput (states/second, tail mean)",
        &columns,
    );
    let n = scale.run_length;
    let workloads: Vec<(&str, Generated)> = vec![
        (
            "reservations",
            Reservations {
                steps: n,
                ..Default::default()
            }
            .generate(),
        ),
        (
            "library",
            Library {
                steps: n,
                ..Default::default()
            }
            .generate(),
        ),
        (
            "monitor",
            Monitor {
                steps: n,
                ..Default::default()
            }
            .generate(),
        ),
    ];
    for (name, g) in &workloads {
        let c = &g.constraints[0];
        let mut row = vec![name.to_string()];
        for b in BackendId::ALL {
            let mut checker = backend_checker(b, c, g);
            let m = run_instrumented(checker.as_mut(), &g.transitions, 0);
            row.push(format!("{:.0}", m.tail_throughput()));
        }
        t.row(row);
    }
    t
}

/// T5 — trigger-engine overhead vs. the direct encoding.
pub fn t5_active_overhead(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T5",
        "active (trigger-table) realization vs direct encoding (reservations)",
        &[
            "n",
            "direct step",
            "active step",
            "overhead",
            "direct units",
            "active units",
        ],
    );
    t.note("claim: the encoding is realizable as ECA rules over ordinary tables");
    t.note("at a constant-factor cost, with the same bounded table sizes");
    for &n in &scale.history_lengths {
        if n > 2 * scale.naive_cap {
            continue;
        }
        let g = reservations_at(n);
        let c = &g.constraints[0];
        let mi = run_instrumented(&mut inc(c, &g), &g.transitions, 16);
        let ma = run_instrumented(&mut act(c, &g), &g.transitions, 16);
        assert_eq!(mi.violations, ma.violations);
        t.row(vec![
            n.to_string(),
            fmt_micros(mi.tail_step_us),
            fmt_micros(ma.tail_step_us),
            format!("{:.1}x", ma.tail_step_us / mi.tail_step_us.max(1e-9)),
            mi.max_retained_units.to_string(),
            ma.max_retained_units.to_string(),
        ]);
    }
    t
}

/// T6 — the stamp-specialization ablation.
pub fn t6_ablation(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T6",
        "one-timestamp specialization (a=0 keeps latest) vs general deque, once[0,b]",
        &["b", "spec ts", "plain ts", "spec step", "plain step"],
    );
    t.note("claim: the a=0 / b=∞ specializations cut per-key storage to 1 timestamp");
    t.note("with identical semantics (equivalence is property-tested)");
    for &b in &scale.bounds {
        let g = RandomWorkload {
            steps: scale.run_length,
            domain: 16,
            updates_per_step: 8,
            bound: b,
            seed: 42,
            ..Default::default()
        }
        .generate();
        let c = &g.constraints[0];
        let mut spec = inc(c, &g);
        let mut plain = IncrementalChecker::with_options(
            c.clone(),
            Arc::clone(&g.catalog),
            EncodingOptions {
                disable_stamp_specialization: true,
                ..Default::default()
            },
        )
        .expect("generated constraint compiles");
        let ms = run_instrumented(&mut spec, &g.transitions, 4);
        let mut max_plain_ts = 0usize;
        let mut plain_times = Vec::new();
        for tr in &g.transitions {
            let s = std::time::Instant::now();
            plain
                .step(tr.time, &tr.update)
                .expect("generated stream is monotone");
            plain_times.push(s.elapsed().as_secs_f64() * 1e6);
            max_plain_ts = max_plain_ts.max(plain.space().aux_timestamps);
        }
        let tail_from = plain_times.len() - plain_times.len() / 4 - 1;
        let plain_tail =
            plain_times[tail_from..].iter().sum::<f64>() / (plain_times.len() - tail_from) as f64;
        let mut max_spec_ts = 0usize;
        {
            // Re-run spec with per-step space polling for a fair maximum.
            let mut s2 = inc(c, &g);
            for tr in &g.transitions {
                s2.step(tr.time, &tr.update)
                    .expect("generated stream is monotone");
                max_spec_ts = max_spec_ts.max(s2.space().aux_timestamps);
            }
        }
        t.row(vec![
            b.to_string(),
            max_spec_ts.to_string(),
            max_plain_ts.to_string(),
            fmt_micros(ms.tail_step_us),
            fmt_micros(plain_tail),
        ]);
    }
    t
}

/// T7 — unbounded intervals: space bounded by the *active domain*, not the
/// history.
pub fn t7_adom_bound(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T7",
        "aux space for an unbounded constraint vs history length (fixed key domain)",
        &[
            "n",
            "inc aux keys",
            "domain",
            "inc step",
            "naive stored tuples",
        ],
    );
    t.note("claim: with b = ∞ the aux relations grow with the active domain and then stop;");
    t.note("the naive checker's footprint keeps growing with the history regardless");
    let domain = 24usize;
    let c = parse_constraint("deny hit: base(k) && once[1,*] ev(k)").expect("template parses");
    for &n in &scale.history_lengths {
        let g = RandomWorkload {
            steps: n,
            domain,
            updates_per_step: 8,
            bound: 8, // unused by this constraint
            seed: 42,
            ..Default::default()
        }
        .generate();
        let mi = run_instrumented(&mut inc(&c, &g), &g.transitions, 0);
        let naive_tuples = if n <= scale.naive_cap {
            let mn = run_instrumented(&mut nai(&c, &g), &g.transitions, 0);
            mn.final_space.stored_tuples.to_string()
        } else {
            "—".into()
        };
        assert!(
            mi.final_space.aux_keys <= domain,
            "aux keys exceeded the domain: {}",
            mi.final_space.aux_keys
        );
        t.row(vec![
            n.to_string(),
            mi.final_space.aux_keys.to_string(),
            domain.to_string(),
            fmt_micros(mi.tail_step_us),
            naive_tuples,
        ]);
    }
    t
}

/// Declares the T8 fleet catalog: `n` unary relations `r0..r{n-1}` (one
/// per constraint, so relevance dispatch can tell the fleet apart) plus a
/// shared `audit` relation the streams never touch.
pub fn fleet_catalog(n: usize) -> Arc<rtic_relation::Catalog> {
    let mut cat = rtic_relation::Catalog::new();
    for i in 0..n {
        cat.declare(format!("r{i}"), Schema::of(&[("x", Sort::Str)]))
            .expect("generated names are distinct");
    }
    cat.declare("audit", Schema::of(&[("x", Sort::Str)]))
        .expect("audit is not an r{i}");
    Arc::new(cat)
}

/// One fast-path-eligible constraint per relation: the body is gain-free
/// (a `once[0,b]` window only ever loses tuples on a clock tick), so a
/// [`ConstraintSet`] can absorb quiescent steps as window maintenance.
/// Joining against the never-populated `audit` relation keeps the steady
/// state violation-free — a violating step disables the next step's fast
/// path for that constraint, which is the re-check the dispatcher owes.
pub fn fleet_constraints(n: usize) -> Vec<Constraint> {
    (0..n)
        .map(|i| {
            parse_constraint(&format!("deny c{i}: r{i}(x) && once[0,8] audit(x)"))
                .expect("generated constraint parses")
        })
        .collect()
}

/// A stream of `steps` transitions that touches `affected` rotating
/// relations per step — the relevance fraction `affected / n` stays fixed
/// as the fleet grows.
pub fn fleet_stream(n: usize, affected: usize, steps: usize) -> Vec<Transition> {
    const VALS: [&str; 6] = ["v0", "v1", "v2", "v3", "v4", "v5"];
    (0..steps)
        .map(|s| {
            let mut u = Update::new();
            for k in 0..affected.min(n) {
                let rel = format!("r{}", (s + k) % n);
                u.insert(rel.as_str(), tuple![VALS[s % 6]]);
                u.delete(rel.as_str(), tuple![VALS[(s + 3) % 6]]);
            }
            Transition::new((s + 1) as u64, u)
        })
        .collect()
}

/// Catalog for the shard-scaling workload: the paper's two reservation
/// relations, both keyed by passenger — the entity key the compiler
/// discovers and the sharded data plane partitions on.
pub fn shard_catalog() -> Arc<rtic_relation::Catalog> {
    let mut cat = rtic_relation::Catalog::new();
    for name in ["reserved", "confirmed"] {
        cat.declare(name, Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]))
            .expect("the two relation names are distinct");
    }
    Arc::new(cat)
}

/// The motivating deadline constraint over [`shard_catalog`]; every atom
/// shares both variables, and key analysis picks the lexicographically
/// smallest (`f`), so the fleet shards on the flight.
pub fn shard_constraint() -> Constraint {
    parse_constraint(
        "deny unconfirmed: reserved(p, f) && once[2,*] reserved(p, f) && !once confirmed(p, f)",
    )
    .expect("the motivating constraint parses")
}

/// A `steps`-transition entity-churn stream over `keys` distinct
/// flights (one passenger per flight): each entity independently cycles
/// reserve → confirm → cancel, and each step touches one seed-derived
/// entity. Larger `keys` means more shards, each individually colder —
/// the sweep the shard-scaling curve measures.
pub fn shard_stream(keys: usize, steps: usize, seed: u64) -> Vec<Transition> {
    let mut rng = seed | 1;
    let mut phase = vec![0u8; keys.max(1)];
    (0..steps)
        .map(|s| {
            // xorshift64: deterministic, dependency-free key choice.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let k = (rng % keys.max(1) as u64) as usize;
            let name = format!("p{k}");
            let flight = k as i64;
            let mut u = Update::new();
            match phase[k] {
                0 => {
                    u.insert("reserved", tuple![name.as_str(), flight]);
                }
                1 => {
                    u.insert("confirmed", tuple![name.as_str(), flight]);
                }
                _ => {
                    u.delete("reserved", tuple![name.as_str(), flight]);
                    u.delete("confirmed", tuple![name.as_str(), flight]);
                }
            }
            phase[k] = (phase[k] + 1) % 3;
            Transition::new((s + 1) as u64, u)
        })
        .collect()
}

/// An ingestion stream for the batch-exec curve: per step,
/// `events_per_step` fresh reservations land over an `entities`-sized
/// key domain; last step's keys are confirmed, except a deterministic
/// straggler per 64 keys that instead fires a real violation at age 2
/// and is cancelled one step later. The live `reserved`/`confirmed`
/// relations grow toward `entities` rows — the active domain the curve
/// sweeps — while per-step deltas stay `O(events_per_step)`, which is
/// exactly the shape where generation-keyed memo refresh beats the
/// global-stamp rescan. `seed` rotates which keys straggle.
pub fn batch_stream(
    entities: usize,
    steps: usize,
    events_per_step: usize,
    seed: u64,
) -> Vec<Transition> {
    let events = events_per_step.max(1);
    let key = |i: usize| i % entities.max(1);
    let straggler = |k: usize| (k as u64).wrapping_add(seed).is_multiple_of(64);
    (0..steps)
        .map(|s| {
            let mut u = Update::new();
            for j in 0..events {
                let k = key(s * events + j);
                u.insert("reserved", tuple![format!("p{k}").as_str(), k as i64]);
            }
            if s >= 1 {
                for j in 0..events {
                    let k = key((s - 1) * events + j);
                    if !straggler(k) {
                        u.insert("confirmed", tuple![format!("p{k}").as_str(), k as i64]);
                    }
                }
            }
            if s >= 3 {
                for j in 0..events {
                    let k = key((s - 3) * events + j);
                    if straggler(k) {
                        u.delete("reserved", tuple![format!("p{k}").as_str(), k as i64]);
                    }
                }
            }
            Transition::new((s + 1) as u64, u)
        })
        .collect()
}

/// T8 — fleet scaling: mean step latency vs #constraints with a fixed
/// number of affected constraints per step, for three engines — `n`
/// independent incremental checkers, a [`ConstraintSet`] with relevance
/// dispatch, and the same set stepping with four workers.
pub fn t8_constraint_scaling(scale: &Scale) -> Table {
    let mut t = Table::new(
        "T8",
        "fleet step latency vs #constraints × relevance fraction",
        &[
            "constraints",
            "affected/step",
            "independent",
            "independent (interp)",
            "set (dispatch)",
            "set (4 workers)",
            "absorbed",
        ],
    );
    t.note("claim: with a fixed number of affected constraints per step, relevance");
    t.note("dispatch absorbs the quiescent rest, so set step latency grows sub-linearly");
    t.note("in fleet size while n independent checkers pay full price for every one;");
    t.note("workers only pay off once per-constraint evaluation outweighs fan-out cost;");
    t.note("'independent (interp)' runs the same checkers without compiled plans");
    let steps = scale.run_length;
    for &n in &scale.fleet_sizes {
        let mut fractions = vec![1usize, (n / 4).max(1)];
        fractions.dedup();
        for affected in fractions {
            let cat = fleet_catalog(n);
            let constraints = fleet_constraints(n);
            let stream = fleet_stream(n, affected, steps);

            // Baseline: one independent checker per constraint.
            let mut singles: Vec<IncrementalChecker> = constraints
                .iter()
                .map(|c| {
                    IncrementalChecker::new(c.clone(), Arc::clone(&cat))
                        .expect("generated constraint compiles")
                })
                .collect();
            let start = Instant::now();
            for tr in &stream {
                for s in &mut singles {
                    s.step(tr.time, &tr.update)
                        .expect("generated stream is monotone");
                }
            }
            let independent = start.elapsed();

            // Same fleet, interpreted executor: isolates the plan layer's
            // contribution at fleet scale.
            let mut interp_singles: Vec<IncrementalChecker> = constraints
                .iter()
                .map(|c| {
                    IncrementalChecker::with_options(
                        c.clone(),
                        Arc::clone(&cat),
                        EncodingOptions {
                            interpret_eval: true,
                            ..EncodingOptions::default()
                        },
                    )
                    .expect("generated constraint compiles")
                })
                .collect();
            let start = Instant::now();
            for tr in &stream {
                for s in &mut interp_singles {
                    s.step(tr.time, &tr.update)
                        .expect("generated stream is monotone");
                }
            }
            let independent_interp = start.elapsed();

            let run_set = |par: Parallelism| {
                let mut set = ConstraintSet::new(constraints.iter().cloned(), Arc::clone(&cat))
                    .map_err(|(_, e)| e)
                    .expect("generated constraint compiles")
                    .with_parallelism(par);
                let start = Instant::now();
                for tr in &stream {
                    set.step(tr.time, &tr.update)
                        .expect("generated stream is monotone");
                }
                (start.elapsed(), set.dispatch_stats())
            };
            let (seq, stats) = run_set(Parallelism::Sequential);
            let (par4, _) = run_set(Parallelism::N(4));

            let per_step = |d: std::time::Duration| d.as_secs_f64() * 1e6 / steps as f64;
            let absorbed = 100.0 * stats.skipped as f64 / stats.total().max(1) as f64;
            t.row(vec![
                n.to_string(),
                affected.to_string(),
                fmt_micros(per_step(independent)),
                fmt_micros(per_step(independent_interp)),
                fmt_micros(per_step(seq)),
                fmt_micros(per_step(par4)),
                format!("{absorbed:.0}%"),
            ]);
        }
    }
    t
}

/// The motivating-constraint reservations run with an observer attached:
/// the experiment harness's entry point for external telemetry (`--metrics`
/// / `--trace` on the experiments binary). Returns the incremental
/// checker's measurement; every step and space poll also flows to `obs`.
pub fn telemetry_run(
    scale: &Scale,
    obs: &mut dyn rtic_core::observe::StepObserver,
) -> RunMeasurement {
    let g = reservations_at(scale.run_length);
    let c = motivating_constraint();
    crate::measure::run_instrumented_observed(&mut inc(&c, &g), &g.transitions, 16, obs)
}

/// Runs every experiment at `scale`, in id order.
pub fn all_tables(scale: &Scale) -> Vec<Table> {
    vec![
        t1_space(scale),
        f1_step_latency(scale),
        t2_bound_space(scale),
        f2_bound_time(scale),
        t3_domain_scaling(scale),
        t4_detection(scale),
        f3_throughput(scale),
        t5_active_overhead(scale),
        t6_ablation(scale),
        t7_adom_bound(scale),
        t8_constraint_scaling(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: every experiment runs at tiny scale and produces rows.
    #[test]
    fn all_experiments_run_at_tiny_scale() {
        let scale = Scale {
            history_lengths: vec![40, 80],
            naive_cap: 80,
            bounds: vec![3, 6],
            update_sizes: vec![4, 8],
            run_length: 50,
            fleet_sizes: vec![2, 4],
        };
        for table in all_tables(&scale) {
            assert!(!table.rows.is_empty(), "{} has no rows", table.id);
            let rendered = table.render();
            assert!(rendered.contains(table.id));
        }
    }

    #[test]
    fn t1_shows_the_separation() {
        let scale = Scale {
            history_lengths: vec![50, 200],
            naive_cap: 200,
            bounds: vec![],
            update_sizes: vec![],
            run_length: 50,
            fleet_sizes: vec![],
        };
        let t = t1_space(&scale);
        let small: usize = t.rows[0][3].parse().unwrap();
        let large: usize = t.rows[1][3].parse().unwrap();
        assert!(large > 2 * small, "naive space must grow with n");
        let inc_small: usize = t.rows[0][1].parse().unwrap();
        let inc_large: usize = t.rows[1][1].parse().unwrap();
        assert!(
            inc_large <= inc_small * 2,
            "encoding space must not grow with n ({inc_small} -> {inc_large})"
        );
    }
}
