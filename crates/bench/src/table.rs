//! Plain-text table rendering for the experiment harness.

use std::fmt::Write as _;

/// A rendered experiment table (one per table/figure of EXPERIMENTS.md).
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. `"T1"`.
    pub id: &'static str,
    /// One-line title.
    pub title: String,
    /// Free-form notes printed under the title.
    pub notes: Vec<String>,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            notes: Vec::new(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Adds a row; pads or truncates to the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   {n}");
        }
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", c, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_micros(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T0", "demo", &["n", "value"]);
        t.note("a note");
        t.row(vec!["10".into(), "1.5".into()]);
        t.row(vec!["10000".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("T0"));
        assert!(s.contains("a note"));
        let lines: Vec<&str> = s.lines().collect();
        let data: Vec<&str> = lines.iter().filter(|l| l.contains("10")).copied().collect();
        assert_eq!(data.len(), 2);
        assert_eq!(data[0].len(), data[1].len(), "columns aligned");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("T0", "demo", &["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_micros(12.34), "12.3µs");
        assert_eq!(fmt_micros(12_340.0), "12.34ms");
        assert_eq!(fmt_micros(3_000_000.0), "3.00s");
    }
}
