//! # rtic-bench — experiment harness
//!
//! Regenerates every table and figure of EXPERIMENTS.md:
//!
//! * [`experiments`] — one function per experiment (T1–T6, F1–F3);
//! * [`measure`] — instrumented checker runs (per-step timing, space polls);
//! * [`record`] — perf-trajectory snapshots (`BENCH_<workload>.json`);
//! * [`table`] — plain-text table rendering.
//!
//! `cargo run -p rtic-bench --release --bin experiments` prints every
//! table (`--quick` for a smoke-scale sweep, `--table t1` for one);
//! `cargo run -p rtic-bench --release --bin record` writes a perf
//! snapshot and optionally diffs it against a committed baseline;
//! `cargo bench` runs the Criterion benches sampling the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod experiments;
pub mod measure;
pub mod record;
pub mod table;
