//! Running a checker over a transition stream with instrumentation.

use std::time::Instant;

use rtic_core::observe::{sample_space_one, StepObserver};
use rtic_core::{Checker, NopObserver, SpaceStats};
use rtic_history::Transition;

/// Instrumented results of one checker run.
#[derive(Clone, Debug)]
pub struct RunMeasurement {
    /// Checker implementation name.
    pub checker: &'static str,
    /// Transitions processed.
    pub steps: usize,
    /// Total wall time in microseconds.
    pub total_us: f64,
    /// Mean per-step time over the **last quarter** of the run (where a
    /// history-dependent checker is at its slowest) in microseconds.
    pub tail_step_us: f64,
    /// Worst single step in microseconds.
    pub max_step_us: f64,
    /// Space at the end of the run.
    pub final_space: SpaceStats,
    /// Largest retained-unit footprint observed at any step.
    pub max_retained_units: usize,
    /// Total violation witnesses reported across the run.
    pub violations: usize,
}

impl RunMeasurement {
    /// Steady-state throughput (states/second) based on the tail mean.
    pub fn tail_throughput(&self) -> f64 {
        if self.tail_step_us == 0.0 {
            f64::INFINITY
        } else {
            1_000_000.0 / self.tail_step_us
        }
    }
}

/// Runs `checker` over `transitions`, timing every step and polling space.
///
/// Space is polled every `space_every` steps (1 = every step) because
/// space polling itself walks the aux structures.
pub fn run_instrumented(
    checker: &mut dyn Checker,
    transitions: &[Transition],
    space_every: usize,
) -> RunMeasurement {
    run_instrumented_observed(checker, transitions, space_every, &mut NopObserver)
}

/// [`run_instrumented`] with an observer attached: step events flow to
/// `obs` (so a metrics registry or trace writer can watch an experiment)
/// and each space poll also emits a `SpaceSample` event.
pub fn run_instrumented_observed(
    checker: &mut dyn Checker,
    transitions: &[Transition],
    space_every: usize,
    obs: &mut dyn StepObserver,
) -> RunMeasurement {
    assert!(!transitions.is_empty(), "nothing to measure");
    let mut step_times = Vec::with_capacity(transitions.len());
    let mut violations = 0usize;
    let mut max_retained = 0usize;
    let total_start = Instant::now();
    for (i, tr) in transitions.iter().enumerate() {
        let s = Instant::now();
        let report = checker
            .step_observed(tr.time, &tr.update, obs)
            .unwrap_or_else(|e| panic!("checker {} failed at {}: {e}", checker.name(), tr.time));
        step_times.push(s.elapsed().as_secs_f64() * 1e6);
        violations += report.violation_count();
        if space_every > 0 && i % space_every == 0 {
            let stats = sample_space_one(checker, tr.time, i as u64, obs);
            max_retained = max_retained.max(stats.retained_units());
        }
    }
    let total_us = total_start.elapsed().as_secs_f64() * 1e6;
    let final_space = checker.space();
    max_retained = max_retained.max(final_space.retained_units());
    let tail_from = step_times.len() - step_times.len() / 4 - 1;
    let tail: &[f64] = &step_times[tail_from..];
    RunMeasurement {
        checker: checker.name(),
        steps: transitions.len(),
        total_us,
        tail_step_us: tail.iter().sum::<f64>() / tail.len() as f64,
        max_step_us: step_times.iter().copied().fold(0.0, f64::max),
        final_space,
        max_retained_units: max_retained,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::IncrementalChecker;
    use rtic_temporal::parser::parse_constraint;
    use rtic_workload::RandomWorkload;
    use std::sync::Arc;

    #[test]
    fn instrumentation_reports_sane_numbers() {
        let gen = RandomWorkload {
            steps: 40,
            ..Default::default()
        }
        .generate();
        let c = parse_constraint(&RandomWorkload::default().constraint_text()).unwrap();
        let mut checker = IncrementalChecker::new(c, Arc::clone(&gen.catalog)).unwrap();
        let m = run_instrumented(&mut checker, &gen.transitions, 1);
        assert_eq!(m.steps, 40);
        assert!(m.total_us > 0.0);
        assert!(m.tail_step_us > 0.0);
        assert!(m.max_step_us >= m.tail_step_us / 2.0);
        assert!(m.max_retained_units >= m.final_space.retained_units());
        assert!(m.tail_throughput() > 0.0);
    }
}
