//! Property tests for the log text format: round-trips through
//! format/parse and through the streaming reader.

use proptest::prelude::*;
use rtic_history::log::{format_log, parse_log, LogReader};
use rtic_history::Transition;
use rtic_relation::{Tuple, Update, Value};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        // Strings with the characters that stress the escaping code.
        proptest::string::string_regex("[a-z\"\\\\\n ,()@|#0-9]{0,12}")
            .unwrap()
            .prop_map(|s| Value::str(&s)),
    ]
}

fn tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value(), 0..4).prop_map(Tuple::new)
}

fn transition_stream() -> impl Strategy<Value = Vec<Transition>> {
    let change = (
        proptest::string::string_regex("[a-z_][a-z0-9_]{0,6}").unwrap(),
        any::<bool>(),
        tuple(),
    );
    proptest::collection::vec((1u64..5, proptest::collection::vec(change, 0..4)), 0..10).prop_map(
        |steps| {
            let mut t = 0u64;
            steps
                .into_iter()
                .map(|(gap, changes)| {
                    t += gap;
                    let mut u = Update::new();
                    for (rel, ins, tup) in changes {
                        if ins {
                            u.insert(rel.as_str(), tup);
                        } else {
                            u.delete(rel.as_str(), tup);
                        }
                    }
                    Transition::new(t, u)
                })
                .collect()
        },
    )
}

proptest! {
    #[test]
    fn format_parse_round_trip(ts in transition_stream()) {
        let text = format_log(&ts);
        let back = parse_log(&text)
            .unwrap_or_else(|e| panic!("formatted log failed to parse: {e}\n{text}"));
        prop_assert_eq!(back, ts);
    }

    #[test]
    fn streaming_matches_batch(ts in transition_stream()) {
        let text = format_log(&ts);
        let streamed: Result<Vec<Transition>, _> =
            LogReader::new(std::io::Cursor::new(text.clone())).collect();
        prop_assert_eq!(streamed.unwrap(), parse_log(&text).unwrap());
    }

    #[test]
    fn formatting_is_deterministic(ts in transition_stream()) {
        prop_assert_eq!(format_log(&ts), format_log(&ts));
    }
}
