//! # rtic-history — timestamped database histories
//!
//! The substrate real-time integrity constraints are interpreted over: a
//! sequence of database states, each stamped with a strictly increasing
//! discrete-clock [`TimePoint`](rtic_temporal::TimePoint).
//!
//! * [`History`] — a materialized history (every state stored); what the
//!   naive baseline checker keeps, and what the paper's bounded encoding
//!   avoids keeping.
//! * [`Transition`] — one `(time, update)` step; the unit every checker
//!   consumes online.
//! * [`log`] — a line-oriented text format for transition logs
//!   (`@10 +reserved("ann", 17)`), with a round-tripping parser/printer.
//!
//! ```
//! use rtic_history::{log::parse_log, History};
//! use rtic_relation::{Catalog, Schema, Sort};
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new()
//!         .with("reserved", Schema::of(&[("p", Sort::Str), ("f", Sort::Int)]))
//!         .unwrap(),
//! );
//! let transitions = parse_log("@1 +reserved(\"ann\", 17)\n@4 -reserved(\"ann\", 17)\n").unwrap();
//! let h = History::replay(catalog, transitions).unwrap();
//! assert_eq!(h.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
mod history;
pub mod log;

pub use history::{History, HistoryError, Transition};
