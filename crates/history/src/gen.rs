//! Timestamp-schedule helpers for generated histories.
//!
//! Real-time operators are most fragile exactly where the clock behaves
//! oddly: bursts of states one tick apart (windows slide by single steps),
//! long silent gaps (whole windows expire between two states), and
//! histories with a single state. These helpers build strictly increasing
//! timestamp schedules with those shapes, deterministically from caller
//! randomness, so workload and fuzz generators can share them.

use rtic_temporal::TimePoint;

/// How the gap between consecutive timestamps is chosen.
///
/// The schedule builders take a gap-picking closure, so callers own the
/// randomness; this enum is a convenience vocabulary for the common shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapKind {
    /// A dense cluster: the next state lands one tick later.
    Cluster,
    /// A moderate advance of the given size (must be ≥ 1).
    Step(u64),
    /// A jump large enough to expire any window bounded by `horizon`:
    /// advances by `horizon + 1 + extra`.
    BeyondHorizon {
        /// The largest finite metric bound in play.
        horizon: u64,
        /// Additional slack past the horizon.
        extra: u64,
    },
}

impl GapKind {
    /// The timestamp advance this gap produces (always ≥ 1).
    pub fn advance(self) -> u64 {
        match self {
            GapKind::Cluster => 1,
            GapKind::Step(n) => n.max(1),
            GapKind::BeyondHorizon { horizon, extra } => horizon.saturating_add(1 + extra),
        }
    }
}

/// Builds a strictly increasing schedule of `n` timestamps starting at
/// `start`, with each subsequent gap chosen by `pick` (called with the
/// zero-based index of the gap, 0..n-1).
///
/// ```
/// use rtic_history::gen::{schedule, GapKind};
/// use rtic_temporal::TimePoint;
///
/// let s = schedule(TimePoint(5), 4, |i| {
///     if i == 1 {
///         GapKind::BeyondHorizon { horizon: 10, extra: 0 }
///     } else {
///         GapKind::Cluster
///     }
/// });
/// assert_eq!(s, vec![TimePoint(5), TimePoint(6), TimePoint(17), TimePoint(18)]);
/// ```
pub fn schedule(
    start: TimePoint,
    n: usize,
    mut pick: impl FnMut(usize) -> GapKind,
) -> Vec<TimePoint> {
    let mut out = Vec::with_capacity(n);
    let mut t = start.0;
    for i in 0..n {
        if i > 0 {
            t = t.saturating_add(pick(i - 1).advance());
        }
        out.push(TimePoint(t));
    }
    out
}

/// A schedule of `n` timestamps that alternates dense clusters with
/// horizon-expiring jumps: runs of `cluster_len` one-tick gaps separated by
/// `BeyondHorizon` jumps. Deterministic; useful as a fixed stress shape.
pub fn clustered_schedule(
    start: TimePoint,
    n: usize,
    cluster_len: usize,
    horizon: u64,
) -> Vec<TimePoint> {
    let len = cluster_len.max(1);
    schedule(start, n, |i| {
        if (i + 1) % (len + 1) == 0 {
            GapKind::BeyondHorizon { horizon, extra: 0 }
        } else {
            GapKind::Cluster
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_strictly_increasing() {
        let s = clustered_schedule(TimePoint(0), 50, 3, 7);
        assert_eq!(s.len(), 50);
        for w in s.windows(2) {
            assert!(w[0] < w[1], "{:?} not increasing", w);
        }
    }

    #[test]
    fn beyond_horizon_clears_the_window() {
        let horizon = 9;
        let s = schedule(TimePoint(0), 2, |_| GapKind::BeyondHorizon {
            horizon,
            extra: 0,
        });
        assert!(s[1].0 - s[0].0 > horizon);
    }

    #[test]
    fn single_state_schedule() {
        assert_eq!(
            schedule(TimePoint(3), 1, |_| GapKind::Cluster),
            vec![TimePoint(3)]
        );
    }

    #[test]
    fn zero_step_is_clamped_to_one() {
        assert_eq!(GapKind::Step(0).advance(), 1);
    }
}
