//! A line-oriented text format for update logs.
//!
//! One line per transition:
//!
//! ```text
//! @10 +reserved("ann", 17) -confirmed("bob", 3)
//! @12                      # a pure clock tick
//! ```
//!
//! `@T` is the timestamp, `+rel(v…)` inserts, `-rel(v…)` deletes. Values
//! are integers (`17`, `-3`), quoted strings (`"ann"`), or booleans
//! (`true`/`false`). Comments run from `#` to end of line. The format
//! round-trips: `parse_log(format_log(ts)) == ts`.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use rtic_relation::{Tuple, Update, Value};
use rtic_temporal::TimePoint;

use crate::history::Transition;

/// What went wrong while reading a log: the *content* of a line, or the
/// *channel* it arrived on. Consumers with a skip-bad-lines policy may
/// tolerate [`Parse`](LogErrorKind::Parse) errors, but an
/// [`Io`](LogErrorKind::Io) error means the source itself failed and no
/// further lines can be trusted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogErrorKind {
    /// The line was read but does not conform to the log grammar.
    Parse,
    /// The underlying reader failed; the stream cannot continue.
    Io,
}

/// A log-parsing failure with its line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// Whether this is a content error or a source failure.
    pub kind: LogErrorKind,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for LogError {}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Str(s) => {
            let _ = write!(out, "{:?}", s.as_str());
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Serializes transitions to the text format.
pub fn format_log(transitions: &[Transition]) -> String {
    let mut out = String::new();
    for t in transitions {
        let _ = write!(out, "@{}", t.time.0);
        for (rel, tuples) in t.update.inserts() {
            for tuple in tuples {
                let _ = write!(out, " +{rel}(");
                for (i, v) in tuple.values().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(&mut out, v);
                }
                out.push(')');
            }
        }
        for (rel, tuples) in t.update.deletes() {
            for tuple in tuples {
                let _ = write!(out, " -{rel}(");
                for (i, v) in tuple.values().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(&mut out, v);
                }
                out.push(')');
            }
        }
        out.push('\n');
    }
    out
}

struct LineParser<'s> {
    chars: Vec<char>,
    pos: usize,
    line_no: usize,
    _src: &'s str,
}

impl<'s> LineParser<'s> {
    fn err(&self, message: impl Into<String>) -> LogError {
        LogError {
            message: message.into(),
            line: self.line_no,
            kind: LogErrorKind::Parse,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.chars.len() || self.chars[self.pos] == '#'
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), LogError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{c}`, found {}",
                self.peek()
                    .map(|c| format!("`{c}`"))
                    .unwrap_or_else(|| "end of line".into())
            )))
        }
    }

    fn integer(&mut self) -> Result<i64, LogError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if text.is_empty() || text == "-" {
            return Err(self.err("expected an integer"));
        }
        text.parse()
            .map_err(|_| self.err(format!("integer `{text}` out of range")))
    }

    fn ident(&mut self) -> Result<String, LogError> {
        let start = self.pos;
        while self.pos < self.chars.len()
            && (self.chars[self.pos].is_ascii_alphanumeric() || self.chars[self.pos] == '_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn value(&mut self) -> Result<Value, LogError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek() {
                        None => return Err(self.err("unterminated string")),
                        Some('"') => {
                            self.pos += 1;
                            break;
                        }
                        Some('\\') => {
                            self.pos += 1;
                            match self.peek() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                _ => return Err(self.err("unknown escape")),
                            }
                            self.pos += 1;
                        }
                        Some(c) => {
                            s.push(c);
                            self.pos += 1;
                        }
                    }
                }
                Ok(Value::str(&s))
            }
            Some(c) if c == '-' || c.is_ascii_digit() => Ok(Value::Int(self.integer()?)),
            Some(c) if c.is_ascii_alphabetic() => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    other => Err(self.err(format!(
                        "unknown bare value `{other}` (strings must be quoted)"
                    ))),
                }
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn change(&mut self, update: &mut Update) -> Result<(), LogError> {
        let insert = match self.peek() {
            Some('+') => true,
            Some('-') => false,
            _ => return Err(self.err("expected `+rel(…)` or `-rel(…)`")),
        };
        self.pos += 1;
        let rel = self.ident()?;
        self.expect('(')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() != Some(')') {
            loop {
                values.push(self.value()?);
                self.skip_ws();
                if self.peek() == Some(')') {
                    break;
                }
                self.expect(',')?;
            }
        }
        self.expect(')')?;
        let tuple = Tuple::new(values);
        if insert {
            update.insert(rel.as_str(), tuple);
        } else {
            update.delete(rel.as_str(), tuple);
        }
        Ok(())
    }

    fn transition(&mut self) -> Result<Transition, LogError> {
        self.skip_ws();
        self.expect('@')?;
        let t = self.integer()?;
        if t < 0 {
            return Err(self.err("timestamps are non-negative"));
        }
        let mut update = Update::new();
        while !self.at_end() {
            self.change(&mut update)?;
        }
        Ok(Transition::new(TimePoint(t as u64), update))
    }
}

/// Parses the text format into transitions. Blank and comment-only lines
/// are skipped. Timestamps are *not* checked for monotonicity here — that
/// happens on replay, where the error can point at the offending state.
pub fn parse_log(input: &str) -> Result<Vec<Transition>, LogError> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if let Some(t) = parse_line(line, idx + 1)? {
            out.push(t);
        }
    }
    Ok(out)
}

/// Parses one log line (1-based `line_no` for errors); `None` for blank
/// and comment-only lines.
fn parse_line(line: &str, line_no: usize) -> Result<Option<Transition>, LogError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut p = LineParser {
        chars: line.chars().collect(),
        pos: 0,
        line_no,
        _src: line,
    };
    p.transition().map(Some)
}

/// A streaming log reader: yields one [`Transition`] per line from any
/// [`std::io::BufRead`] source without materializing the whole log. This is what a
/// deployment tails; [`parse_log`] is the convenience wrapper for in-memory
/// text.
///
/// I/O errors are surfaced as [`LogError`]s carrying the line number.
pub struct LogReader<R> {
    source: R,
    line_no: usize,
    buf: String,
}

impl<R: std::io::BufRead> LogReader<R> {
    /// Wraps a buffered reader.
    pub fn new(source: R) -> LogReader<R> {
        LogReader {
            source,
            line_no: 0,
            buf: String::new(),
        }
    }

    /// The number of source lines consumed so far.
    pub fn lines_read(&self) -> usize {
        self.line_no
    }
}

impl<R: std::io::BufRead> Iterator for LogReader<R> {
    type Item = Result<Transition, LogError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.source.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return Some(Err(LogError {
                        message: format!("I/O error: {e}"),
                        line: self.line_no,
                        kind: LogErrorKind::Io,
                    }))
                }
            }
            match parse_line(self.buf.trim_end_matches(['\n', '\r']), self.line_no) {
                Ok(Some(t)) => return Some(Ok(t)),
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::tuple;

    #[test]
    fn parse_simple_line() {
        let ts = parse_log("@10 +r(\"a\", 3) -s(true)").unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].time, TimePoint(10));
        let inserts: Vec<_> = ts[0].update.inserts().collect();
        assert_eq!(inserts[0].0.as_str(), "r");
        assert!(inserts[0].1.contains(&tuple!["a", 3]));
        let deletes: Vec<_> = ts[0].update.deletes().collect();
        assert!(deletes[0].1.contains(&tuple![true]));
    }

    #[test]
    fn pure_tick_and_comments() {
        let ts = parse_log("# header\n\n@5\n@7 # trailing comment\n").unwrap();
        assert_eq!(ts.len(), 2);
        assert!(ts[0].update.is_empty());
        assert_eq!(ts[1].time, TimePoint(7));
    }

    #[test]
    fn nullary_tuples() {
        let ts = parse_log("@1 +alarm()").unwrap();
        let (_, tuples) = ts[0].update.inserts().next().unwrap();
        assert!(tuples.contains(&Tuple::empty()));
    }

    #[test]
    fn string_escapes_round_trip() {
        let t = Transition::new(
            3,
            Update::new().with_insert("r", tuple!["quote\"and\\slash", 1]),
        );
        let text = format_log(std::slice::from_ref(&t));
        let back = parse_log(&text).unwrap();
        assert_eq!(back, vec![t]);
    }

    #[test]
    fn format_then_parse_round_trips() {
        let ts = vec![
            Transition::new(
                1,
                Update::new()
                    .with_insert("r", tuple!["a", 1])
                    .with_insert("r", tuple!["b", 2])
                    .with_delete("s", tuple![7]),
            ),
            Transition::new(9, Update::new()),
        ];
        assert_eq!(parse_log(&format_log(&ts)).unwrap(), ts);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_log("@1 +r(\"a\")\n@2 +r(oops)").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("quoted"));
    }

    #[test]
    fn missing_at_sign_is_error() {
        assert!(parse_log("10 +r(1)").is_err());
    }

    #[test]
    fn negative_timestamp_rejected() {
        assert!(parse_log("@-5").is_err());
    }

    #[test]
    fn unterminated_tuple_is_error() {
        let e = parse_log("@1 +r(1, ").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn streaming_reader_matches_batch_parse() {
        let text = "# header\n@1 +r(\"a\", 3)\n\n@4 -r(\"a\", 3)\n@9\n";
        let streamed: Result<Vec<Transition>, LogError> =
            LogReader::new(std::io::Cursor::new(text)).collect();
        assert_eq!(streamed.unwrap(), parse_log(text).unwrap());
    }

    #[test]
    fn streaming_reader_reports_error_line_and_stops() {
        let text = "@1 +r(1)\n@2 oops\n@3 +r(2)\n";
        let mut reader = LogReader::new(std::io::Cursor::new(text));
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(reader.lines_read(), 2);
    }

    #[test]
    fn parse_errors_are_kind_parse() {
        let e = parse_log("@1 +r(oops)").unwrap_err();
        assert_eq!(e.kind, LogErrorKind::Parse);
    }

    #[test]
    fn io_failures_are_kind_io() {
        struct Broken;
        impl std::io::Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let mut reader = LogReader::new(std::io::BufReader::new(Broken));
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.kind, LogErrorKind::Io);
        assert!(err.message.contains("disk on fire"));
    }

    #[test]
    fn streaming_reader_handles_crlf() {
        let text = "@1 +r(1)\r\n@2\r\n";
        let ts: Result<Vec<Transition>, _> = LogReader::new(std::io::Cursor::new(text)).collect();
        assert_eq!(ts.unwrap().len(), 2);
    }
}
