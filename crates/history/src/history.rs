//! Timestamped database histories.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use rtic_relation::{Catalog, Database, RelationError, Update};
use rtic_temporal::TimePoint;

/// One step of a history: at `time`, apply `update` to the previous state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// The (strictly increasing) timestamp of the new state.
    pub time: TimePoint,
    /// The changes producing the new state.
    pub update: Update,
}

impl Transition {
    /// Builds a transition.
    pub fn new(time: impl Into<TimePoint>, update: Update) -> Transition {
        Transition {
            time: time.into(),
            update,
        }
    }
}

/// A history error: non-increasing timestamps or a bad update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HistoryError {
    /// Timestamps must strictly increase along a history.
    NonMonotonicTime {
        /// Timestamp of the current last state.
        last: TimePoint,
        /// The offending new timestamp.
        new: TimePoint,
    },
    /// The update failed to apply (unknown relation / sort error).
    BadUpdate(RelationError),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::NonMonotonicTime { last, new } => {
                write!(f, "timestamp {new} does not increase past {last}")
            }
            HistoryError::BadUpdate(e) => write!(f, "bad update: {e}"),
        }
    }
}

impl Error for HistoryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HistoryError::BadUpdate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for HistoryError {
    fn from(e: RelationError) -> HistoryError {
        HistoryError::BadUpdate(e)
    }
}

/// A materialized database history: the full sequence of timestamped
/// states.
///
/// This is what the *naive* baseline checker stores (and exactly what the
/// paper's encoding avoids storing). State 0 is produced by the first
/// transition applied to the empty database; there is no implicit state
/// before the first timestamp.
#[derive(Clone, Debug)]
pub struct History {
    catalog: Arc<Catalog>,
    times: Vec<TimePoint>,
    states: Vec<Database>,
}

impl History {
    /// An empty history over `catalog`.
    pub fn new(catalog: Arc<Catalog>) -> History {
        History {
            catalog,
            times: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Builds a history by replaying `transitions` from the empty database.
    pub fn replay(
        catalog: Arc<Catalog>,
        transitions: impl IntoIterator<Item = Transition>,
    ) -> Result<History, HistoryError> {
        let mut h = History::new(catalog);
        for t in transitions {
            h.append(t.time, &t.update)?;
        }
        Ok(h)
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the history has no states yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The timestamp of state `i`.
    pub fn time(&self, i: usize) -> TimePoint {
        self.times[i]
    }

    /// The database at state `i`.
    pub fn state(&self, i: usize) -> &Database {
        &self.states[i]
    }

    /// The most recent state, if any.
    pub fn last(&self) -> Option<(TimePoint, &Database)> {
        self.states
            .last()
            .map(|db| (*self.times.last().expect("parallel vecs"), db))
    }

    /// Appends a new state: `update` applied to the last state (or the
    /// empty database), stamped `time`.
    pub fn append(
        &mut self,
        time: impl Into<TimePoint>,
        update: &Update,
    ) -> Result<(), HistoryError> {
        let time = time.into();
        if let Some(&last) = self.times.last() {
            if time <= last {
                return Err(HistoryError::NonMonotonicTime { last, new: time });
            }
        }
        let mut db = match self.states.last() {
            Some(db) => db.clone(),
            None => Database::new(Arc::clone(&self.catalog)),
        };
        db.apply(update)?;
        self.times.push(time);
        self.states.push(db);
        Ok(())
    }

    /// Drops states strictly older than `cutoff` **from the front**,
    /// returning how many were dropped. Used by the windowed baseline.
    pub fn prune_before(&mut self, cutoff: TimePoint) -> usize {
        let keep_from = self.times.partition_point(|&t| t < cutoff);
        self.times.drain(..keep_from);
        self.states.drain(..keep_from);
        keep_from
    }

    /// Iterates `(time, state)` pairs oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (TimePoint, &Database)> {
        self.times.iter().copied().zip(self.states.iter())
    }

    /// Total tuples across all stored states (a space proxy for the naive
    /// checker).
    pub fn total_stored_tuples(&self) -> usize {
        self.states.iter().map(Database::total_tuples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort, Symbol};

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("r", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        )
    }

    #[test]
    fn append_accumulates_states() {
        let mut h = History::new(catalog());
        h.append(1, &Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        h.append(5, &Update::new().with_insert("r", tuple!["b"]))
            .unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.time(0), TimePoint(1));
        assert_eq!(h.state(0).relation(Symbol::intern("r")).unwrap().len(), 1);
        assert_eq!(h.state(1).relation(Symbol::intern("r")).unwrap().len(), 2);
    }

    #[test]
    fn timestamps_must_strictly_increase() {
        let mut h = History::new(catalog());
        h.append(3, &Update::new()).unwrap();
        assert!(matches!(
            h.append(3, &Update::new()),
            Err(HistoryError::NonMonotonicTime { .. })
        ));
        assert!(h.append(2, &Update::new()).is_err());
        assert_eq!(h.len(), 1, "failed append does not extend the history");
    }

    #[test]
    fn bad_update_is_reported_and_not_applied() {
        let mut h = History::new(catalog());
        assert!(matches!(
            h.append(1, &Update::new().with_insert("nope", tuple!["a"])),
            Err(HistoryError::BadUpdate(_))
        ));
        assert!(h.is_empty());
    }

    #[test]
    fn replay_matches_manual_appends() {
        let ts = vec![
            Transition::new(1, Update::new().with_insert("r", tuple!["a"])),
            Transition::new(4, Update::new().with_delete("r", tuple!["a"])),
        ];
        let h = History::replay(catalog(), ts).unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.state(1).relation(Symbol::intern("r")).unwrap().is_empty());
    }

    #[test]
    fn prune_before_drops_old_states() {
        let mut h = History::new(catalog());
        for t in [1u64, 3, 5, 9] {
            h.append(t, &Update::new()).unwrap();
        }
        let dropped = h.prune_before(TimePoint(5));
        assert_eq!(dropped, 2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.time(0), TimePoint(5));
    }

    #[test]
    fn last_and_iter() {
        let mut h = History::new(catalog());
        assert!(h.last().is_none());
        h.append(2, &Update::new()).unwrap();
        assert_eq!(h.last().unwrap().0, TimePoint(2));
        assert_eq!(h.iter().count(), 1);
    }

    #[test]
    fn total_stored_tuples_grows_with_history() {
        let mut h = History::new(catalog());
        h.append(1, &Update::new().with_insert("r", tuple!["a"]))
            .unwrap();
        h.append(2, &Update::new()).unwrap();
        assert_eq!(
            h.total_stored_tuples(),
            2,
            "the persistent tuple is stored twice"
        );
    }
}
