//! The trigger-engine checker must report exactly what the direct
//! incremental checker reports, on random constraints × random histories.

use std::sync::Arc;

use proptest::prelude::*;
use rtic_active::ActiveChecker;
use rtic_core::{Checker, IncrementalChecker};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("q", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("r", Schema::of(&[("x", Sort::Str), ("y", Sort::Str)]))
            .unwrap(),
    )
}

fn interval_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (0u64..4).prop_map(|b| format!("[0,{b}]")),
        (1u64..4).prop_map(|a| format!("[{a},*]")),
        (1u64..3, 0u64..3).prop_map(|(a, d)| format!("[{a},{}]", a + d)),
    ]
}

const TEMPLATES: &[&str] = &[
    "p(x) && once{i} q(x)",
    "q(x) since{i} p(x)",
    "p(x) && hist{i} q(x)",
    "q(x) && prev{i} p(x)",
    "once{i} once{j} p(x)",
    "r(x, y) && !once{i} q(x)",
    "(once{i} q(x)) since{j} p(x)",
    "once{i} (q(x) since{j} p(x))",
    "p(x) && hist{i} q(x) && !once{j} q(x)",
];

fn constraint() -> impl Strategy<Value = Constraint> {
    (0..TEMPLATES.len(), interval_text(), interval_text()).prop_map(|(t, i, j)| {
        let body = TEMPLATES[t].replace("{i}", &i).replace("{j}", &j);
        parse_constraint(&format!("deny c: {body}")).expect("template parses")
    })
}

fn transitions() -> impl Strategy<Value = Vec<Transition>> {
    let change = (0u8..3, any::<bool>(), 0u8..2, 0u8..2);
    proptest::collection::vec((1u64..3, proptest::collection::vec(change, 0..4)), 1..12).prop_map(
        |steps| {
            const DOM: [&str; 2] = ["a", "b"];
            let mut t = 0u64;
            steps
                .into_iter()
                .map(|(gap, changes)| {
                    t += gap;
                    let mut u = Update::new();
                    for (rel, ins, x, y) in changes {
                        let (name, tup) = match rel {
                            0 => ("p", tuple![DOM[x as usize]]),
                            1 => ("q", tuple![DOM[x as usize]]),
                            _ => ("r", tuple![DOM[x as usize], DOM[y as usize]]),
                        };
                        if ins {
                            u.insert(name, tup);
                        } else {
                            u.delete(name, tup);
                        }
                    }
                    Transition::new(t, u)
                })
                .collect()
        },
    )
}

proptest! {
    #[test]
    fn active_agrees_with_incremental(c in constraint(), ts in transitions()) {
        let cat = catalog();
        let mut act = ActiveChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut inc = IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        for tr in &ts {
            let a = act.step(tr.time, &tr.update).unwrap();
            let b = inc.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(&a, &b, "active vs incremental diverged on `{}` at {}", c, tr.time);
        }
    }

    #[test]
    fn active_space_stays_bounded(c in constraint(), ts in transitions()) {
        let cat = catalog();
        let mut act = ActiveChecker::new(c, Arc::clone(&cat)).unwrap();
        for tr in &ts {
            act.step(tr.time, &tr.update).unwrap();
            let s = act.space();
            prop_assert!(s.aux_keys <= 128 && s.aux_timestamps <= 512, "table bloat: {}", s);
        }
    }
}
