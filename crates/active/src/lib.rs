//! # rtic-active — trigger-based realization of the encoding
//!
//! Demonstrates that the bounded history encoding of
//! [`rtic-core`](rtic_core) is implementable *inside* a DBMS: the auxiliary
//! state lives in ordinary relations, maintained by ECA (event–condition–
//! action) rules fired on every commit, with a final detection rule raising
//! the violations. This mirrors the research line's companion
//! implementation route ("Implementing Temporal Integrity Constraints Using
//! an Active DBMS").
//!
//! [`ActiveChecker`] implements the same [`rtic_core::Checker`] interface
//! as the direct checkers and produces identical reports (property-tested
//! in `tests/`); experiment T5 measures the constant-factor cost of going
//! through relations.
//!
//! ```
//! use rtic_active::ActiveChecker;
//! use rtic_core::Checker;
//! use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic_temporal::parser::parse_constraint;
//! use rtic_temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new().with("req", Schema::of(&[("id", Sort::Int)])).unwrap(),
//! );
//! let c = parse_constraint("deny stuck: req(r) && once[4,*] req(r)").unwrap();
//! let mut triggers = ActiveChecker::new(c, catalog).unwrap();
//! // The installed ECA rules, as a DBA would review them:
//! for rule in triggers.rules() {
//!     assert!(rule.starts_with("ON commit"));
//! }
//! triggers
//!     .step(TimePoint(1), &Update::new().with_insert("req", tuple![9]))
//!     .unwrap();
//! let report = triggers.step(TimePoint(5), &Update::new()).unwrap();
//! assert_eq!(report.violation_count(), 1); // request 9 is 4 ticks old
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod engine;

pub use engine::ActiveChecker;
