//! The trigger-engine checker: bounded history encoding materialized as
//! database tables maintained by ECA rules.
//!
//! Where [`rtic_core::IncrementalChecker`] keeps auxiliary state in native
//! in-memory structures, this checker stores it in ordinary *relations*
//! inside the database itself, and advances it with
//! event–condition–action rules that fire on every commit — the way the
//! encoding would be realized inside an active DBMS (the implementation
//! route of the companion work "Implementing Temporal Integrity Constraints
//! Using an Active DBMS"). Per temporal node `i`:
//!
//! * `__aux{i}` — the auxiliary table: `(key…, ts)` witness timestamps for
//!   `once`/`since` (with the `a = 0` / `b = ∞` one-row-per-key pruning
//!   expressed as deletion rules), `(key…)` previous-state rows for `prev`,
//!   `(key…, start, end)` runs for finite `hist`, `(key…, end)` prefix ends
//!   for unbounded `hist`;
//! * `__ext{i}` — the node's materialized extension at the current state
//!   (what outer rules and the detection query read);
//! * `__meta{i}` / `__times{i}` / `__older{i}` — bookkeeping: previous
//!   state time, recent state times, newest state older than the `hist`
//!   lower bound.
//!
//! The detection rule evaluates the denial body with temporal subformulas
//! answered from these tables. Reports are identical to the other checkers
//! (property-tested); the constant-factor overhead of going through
//! relations is experiment T5.

use std::collections::HashMap;
use std::sync::Arc;

use rtic_core::eval::Oracle;
use rtic_core::{
    Bindings, Checker, CompileError, CompiledConstraint, NodePlans, Plan, Scratch, SpaceStats,
    StepReport,
};
use rtic_history::HistoryError;
use rtic_relation::{
    Attribute, Catalog, Database, Relation, Schema, Sort, Symbol, Tuple, Update, Value,
};
use rtic_temporal::ast::{Formula, Var};
use rtic_temporal::time::UpperBound;
use rtic_temporal::typecheck::typecheck;
use rtic_temporal::{Constraint, Interval, TimePoint};

fn time_value(t: TimePoint) -> Value {
    Value::Int(i64::try_from(t.0).expect("timestamp fits in i64"))
}

fn value_time(v: Value) -> TimePoint {
    TimePoint(u64::try_from(v.as_int().expect("timestamp column is Int")).expect("non-negative"))
}

/// Which maintenance rules a node's tables need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Once,
    Since,
    Prev,
    HistFinite,
    HistInf,
}

#[derive(Clone, Debug)]
struct NodeTables {
    kind: Kind,
    interval: Interval,
    vars: Vec<Var>,
    aux: Symbol,
    ext: Symbol,
    meta: Symbol,  // prev time (prev) / started marker (hist-inf)
    times: Symbol, // recent state times (hist)
    older: Symbol, // newest state older than lo (hist-inf)
}

/// The active-DBMS realization of the bounded history encoding.
#[derive(Clone, Debug)]
pub struct ActiveChecker {
    compiled: CompiledConstraint,
    db: Database,
    nodes: Vec<NodeTables>,
    last_time: Option<TimePoint>,
    scratch: Scratch,
}

impl ActiveChecker {
    /// Compiles `constraint` and sets up the auxiliary tables alongside the
    /// user catalog. User relation names must not start with `__`.
    pub fn new(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<ActiveChecker, CompileError> {
        let compiled = CompiledConstraint::compile(constraint, Arc::clone(&catalog))?;
        Ok(Self::from_compiled(compiled))
    }

    /// Builds the checker from an already-compiled constraint.
    pub fn from_compiled(compiled: CompiledConstraint) -> ActiveChecker {
        for name in compiled.catalog.names() {
            assert!(
                !name.as_str().starts_with("__"),
                "user relation names must not start with `__` (reserved for aux tables)"
            );
        }
        let var_sorts =
            typecheck(&compiled.body, &compiled.catalog).expect("compiled constraints typecheck");
        let mut extended = Catalog::new();
        for name in compiled.catalog.names() {
            extended
                .declare(
                    name,
                    compiled.catalog.schema_of(name).expect("listed").clone(),
                )
                .expect("no duplicates in source catalog");
        }
        let mut nodes = Vec::new();
        for (i, node) in compiled.nodes.iter().enumerate() {
            let vars: Vec<Var> = node.free_vars().into_iter().collect();
            let key_attrs: Vec<Attribute> = vars
                .iter()
                .enumerate()
                .map(|(c, v)| {
                    let sort = *var_sorts.get(v).unwrap_or(&Sort::Str);
                    Attribute::new(format!("k{c}").as_str(), sort)
                })
                .collect();
            let (kind, interval) = match node {
                Formula::Once(iv, _) => (Kind::Once, *iv),
                Formula::Since(iv, _, _) => (Kind::Since, *iv),
                Formula::Prev(iv, _) => (Kind::Prev, *iv),
                Formula::Hist(iv, _) if iv.is_bounded() => (Kind::HistFinite, *iv),
                Formula::Hist(iv, _) => (Kind::HistInf, *iv),
                other => unreachable!("non-temporal node `{other}`"),
            };
            let name = |prefix: &str| Symbol::intern(&format!("__{prefix}{i}"));
            let int_attr = |n: &str| Attribute::new(n, Sort::Int);
            let aux_schema = match kind {
                Kind::Once | Kind::Since => {
                    Schema::new(key_attrs.iter().copied().chain([int_attr("ts")]))
                }
                Kind::Prev => Schema::new(key_attrs.iter().copied()),
                Kind::HistFinite => Schema::new(
                    key_attrs
                        .iter()
                        .copied()
                        .chain([int_attr("rs"), int_attr("re")]),
                ),
                Kind::HistInf => Schema::new(key_attrs.iter().copied().chain([int_attr("pe")])),
            }
            .expect("generated attribute names are distinct");
            let tables = NodeTables {
                kind,
                interval,
                vars,
                aux: name("aux"),
                ext: name("ext"),
                meta: name("meta"),
                times: name("times"),
                older: name("older"),
            };
            extended
                .declare(tables.aux, aux_schema)
                .expect("fresh aux name");
            extended
                .declare(
                    tables.ext,
                    Schema::new(key_attrs.iter().copied()).expect("distinct"),
                )
                .expect("fresh ext name");
            extended
                .declare(tables.meta, Schema::of(&[("t", Sort::Int)]))
                .expect("fresh meta name");
            extended
                .declare(tables.times, Schema::of(&[("t", Sort::Int)]))
                .expect("fresh times name");
            extended
                .declare(tables.older, Schema::of(&[("t", Sort::Int)]))
                .expect("fresh older name");
            nodes.push(tables);
        }
        let db = Database::new(Arc::new(extended));
        ActiveChecker {
            compiled,
            db,
            nodes,
            last_time: None,
            scratch: Scratch::new(),
        }
    }

    /// The planned operand of a `prev`/`once`/`hist` node (the anchor
    /// operand for `since`).
    fn operand_plan(&self, idx: usize) -> &Plan {
        match &self.compiled.plans.node_ops[idx] {
            NodePlans::Operand(p) => p,
            NodePlans::Since { g, .. } => g,
        }
    }

    /// Human-readable descriptions of the generated ECA rules, in firing
    /// order — what a DBA would install as triggers.
    pub fn rules(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, (tables, node)) in self.nodes.iter().zip(&self.compiled.nodes).enumerate() {
            let head = format!("ON commit /* rule {i}: {node} */ ");
            match tables.kind {
                Kind::Once => out.push(format!(
                    "{head}THEN insert sat(operand) into {} with now(); \
                     delete rows older than the window; refresh {}",
                    tables.aux, tables.ext
                )),
                Kind::Since => out.push(format!(
                    "{head}IF key of {} fails the maintained formula THEN delete its anchors; \
                     THEN insert anchor rows with now(); refresh {}",
                    tables.aux, tables.ext
                )),
                Kind::Prev => out.push(format!(
                    "{head}THEN refresh {} from {} gated on the age of {}; \
                     replace {} with sat(operand)",
                    tables.ext, tables.aux, tables.meta, tables.aux
                )),
                Kind::HistFinite => out.push(format!(
                    "{head}THEN extend/open runs in {} for sat(operand); \
                     append now() to {}; delete expired runs and times",
                    tables.aux, tables.times
                )),
                Kind::HistInf => out.push(format!(
                    "{head}THEN advance unbroken prefix ends in {}; \
                     slide {} / {}; delete dead prefixes",
                    tables.aux, tables.times, tables.older
                )),
            }
        }
        out.push(format!(
            "ON commit /* detection */ IF {} has a satisfying assignment THEN raise violation",
            self.compiled.body
        ));
        out
    }

    /// The current database, including the auxiliary tables.
    pub fn database(&self) -> &Database {
        &self.db
    }

    fn oracle(&self, t_now: TimePoint) -> ActiveOracle<'_> {
        ActiveOracle {
            db: &self.db,
            nodes: &self.nodes,
            ids: &self.compiled.node_ids,
            t_now,
        }
    }

    fn rel(&self, s: Symbol) -> &Relation {
        self.db.relation(s).expect("aux tables are catalogued")
    }

    /// Single-row time table accessor.
    fn read_time(&self, table: Symbol) -> Option<TimePoint> {
        self.rel(table).iter().next().map(|t| value_time(t[0]))
    }

    fn write_time(&mut self, table: Symbol, t: TimePoint) {
        let rel = self.db.relation_mut(table).expect("catalogued");
        rel.clear();
        rel.insert(Tuple::new([time_value(t)]))
            .expect("schema (t: int)");
    }

    fn fire_maintenance(&mut self, idx: usize, t_now: TimePoint, scratch: &mut Scratch) {
        let tables = self.nodes[idx].clone();
        let node = self.compiled.nodes[idx].clone();
        let arity = tables.vars.len();
        match (&tables.kind, &node) {
            (Kind::Once, Formula::Once(..)) => {
                let sat_now = {
                    let oracle = self.oracle(t_now);
                    self.operand_plan(idx)
                        .execute(&self.db, &oracle, &Bindings::unit(), scratch)
                };
                self.maintain_window(&tables, &sat_now, t_now, /*clear_keys=*/ None);
            }
            (Kind::Since, Formula::Since(..)) => {
                let (survivors, anchors) = {
                    let keys = Bindings::from_rows(
                        tables.vars.clone(),
                        self.rel(tables.aux)
                            .iter()
                            .map(|r| r.project(&(0..arity).collect::<Vec<_>>())),
                    );
                    let oracle = self.oracle(t_now);
                    let NodePlans::Since { f: fp, g: gp } = &self.compiled.plans.node_ops[idx]
                    else {
                        unreachable!("since node without a since plan")
                    };
                    let survivors = fp
                        .execute(&self.db, &oracle, &keys, scratch)
                        .project(&tables.vars);
                    let anchors = gp.execute(&self.db, &oracle, &Bindings::unit(), scratch);
                    (survivors, anchors)
                };
                self.maintain_window(&tables, &anchors, t_now, Some(&survivors));
            }
            (Kind::Prev, Formula::Prev(iv, _)) => {
                // Refresh ext from the stored previous-state rows, gated on age.
                let admissible = self
                    .read_time(tables.meta)
                    .is_some_and(|prev| iv.contains(t_now.age_of(prev)));
                let ext_rows: Vec<Tuple> = if admissible {
                    self.rel(tables.aux).iter().cloned().collect()
                } else {
                    Vec::new()
                };
                let sat_now = {
                    let oracle = self.oracle(t_now);
                    self.operand_plan(idx)
                        .execute(&self.db, &oracle, &Bindings::unit(), scratch)
                };
                let ext = self.db.relation_mut(tables.ext).expect("catalogued");
                ext.clear();
                for r in ext_rows {
                    ext.insert(r).expect("key schema");
                }
                let aux = self.db.relation_mut(tables.aux).expect("catalogued");
                aux.clear();
                for r in sat_now.rows() {
                    aux.insert(r.clone()).expect("key schema");
                }
                self.write_time(tables.meta, t_now);
            }
            (Kind::HistFinite, Formula::Hist(iv, _)) => {
                let bound = iv.hi().finite().expect("finite hist");
                let prev_time = self.last_time;
                let sat_now = {
                    let oracle = self.oracle(t_now);
                    self.operand_plan(idx)
                        .execute(&self.db, &oracle, &Bindings::unit(), scratch)
                };
                let cutoff = t_now.minus(bound).unwrap_or(TimePoint(0));
                // Extend or open runs.
                let mut to_delete = Vec::new();
                let mut to_insert = Vec::new();
                {
                    let aux = self.rel(tables.aux);
                    for key in sat_now.rows() {
                        // The run to extend ends exactly at prev_time.
                        let extendable = prev_time.and_then(|pt| {
                            aux.iter()
                                .find(|r| {
                                    r.values()[..arity] == *key.values()
                                        && value_time(r[arity + 1]) == pt
                                })
                                .cloned()
                        });
                        match extendable {
                            Some(run) => {
                                let start = run[arity];
                                to_delete.push(run);
                                to_insert.push(Tuple::new(
                                    key.values()
                                        .iter()
                                        .copied()
                                        .chain([start, time_value(t_now)]),
                                ));
                            }
                            None => to_insert.push(Tuple::new(
                                key.values()
                                    .iter()
                                    .copied()
                                    .chain([time_value(t_now), time_value(t_now)]),
                            )),
                        }
                    }
                    // Expired runs.
                    for r in aux.iter() {
                        if value_time(r[arity + 1]) < cutoff {
                            to_delete.push(r.clone());
                        }
                    }
                }
                let aux = self.db.relation_mut(tables.aux).expect("catalogued");
                for r in to_delete {
                    aux.remove(&r);
                }
                for r in to_insert {
                    aux.insert(r).expect("runs schema");
                }
                // Slide the state-time table.
                let times = self.db.relation_mut(tables.times).expect("catalogued");
                times
                    .insert(Tuple::new([time_value(t_now)]))
                    .expect("(t: int)");
                times.retain(|r| value_time(r[0]) >= cutoff);
            }
            (Kind::HistInf, Formula::Hist(iv, _)) => {
                let sat_now = {
                    let oracle = self.oracle(t_now);
                    self.operand_plan(idx)
                        .execute(&self.db, &oracle, &Bindings::unit(), scratch)
                };
                let started = !self.rel(tables.meta).is_empty();
                let prev_time = self.last_time;
                let mut to_delete = Vec::new();
                let mut to_insert = Vec::new();
                if !started {
                    for key in sat_now.rows() {
                        to_insert.push(Tuple::new(
                            key.values().iter().copied().chain([time_value(t_now)]),
                        ));
                    }
                } else {
                    let aux = self.rel(tables.aux);
                    for r in aux.iter() {
                        // Active prefixes end exactly at the previous time.
                        if Some(value_time(r[arity])) == prev_time {
                            let key = r.project(&(0..arity).collect::<Vec<_>>());
                            if sat_now.contains(&key) {
                                to_delete.push(r.clone());
                                to_insert.push(Tuple::new(
                                    key.values().iter().copied().chain([time_value(t_now)]),
                                ));
                            }
                        }
                    }
                }
                {
                    let aux = self.db.relation_mut(tables.aux).expect("catalogued");
                    for r in to_delete {
                        aux.remove(&r);
                    }
                    for r in to_insert {
                        aux.insert(r).expect("prefix schema");
                    }
                }
                self.write_time(tables.meta, t_now);
                // Slide the lower-bound window.
                let threshold = t_now.minus(iv.lo());
                let mut newly_older: Vec<TimePoint> = Vec::new();
                {
                    let times = self.db.relation_mut(tables.times).expect("catalogued");
                    times
                        .insert(Tuple::new([time_value(t_now)]))
                        .expect("(t: int)");
                    times.retain(|r| {
                        let tv = value_time(r[0]);
                        match threshold {
                            Some(th) if tv <= th => {
                                newly_older.push(tv);
                                false
                            }
                            _ => true,
                        }
                    });
                }
                if let Some(&mx) = newly_older.iter().max() {
                    let cur = self.read_time(tables.older);
                    self.write_time(tables.older, cur.map_or(mx, |c| c.max(mx)));
                }
                // Dead prefixes (frozen below the query point).
                if let Some(m) = self.read_time(tables.older) {
                    let is_active = |r: &Tuple| Some(value_time(r[arity])) == Some(t_now);
                    let aux = self.db.relation_mut(tables.aux).expect("catalogued");
                    aux.retain(|r| value_time(r[arity]) >= m || is_active(r));
                }
            }
            other => unreachable!("kind/node mismatch: {other:?}"),
        }
        // Refresh the materialized extension for generator nodes.
        match tables.kind {
            Kind::Once | Kind::Since => self.refresh_window_ext(&tables, t_now),
            Kind::Prev | Kind::HistFinite | Kind::HistInf => {}
        }
    }

    /// Shared `once`/`since` table maintenance: optional anchor clearing,
    /// witness insertion, window/specialization pruning.
    fn maintain_window(
        &mut self,
        tables: &NodeTables,
        sat_now: &Bindings,
        t_now: TimePoint,
        clear_keys: Option<&Bindings>,
    ) {
        let arity = tables.vars.len();
        let key_cols: Vec<usize> = (0..arity).collect();
        {
            let aux = self.db.relation_mut(tables.aux).expect("catalogued");
            if let Some(survivors) = clear_keys {
                aux.retain(|r| survivors.contains(&r.project(&key_cols)));
            }
            for key in sat_now.rows() {
                aux.insert(Tuple::new(
                    key.values().iter().copied().chain([time_value(t_now)]),
                ))
                .expect("aux schema");
            }
            // Window pruning (finite b).
            if let UpperBound::Finite(b) = tables.interval.hi() {
                let cutoff = t_now.minus(b).unwrap_or(TimePoint(0));
                aux.retain(|r| value_time(r[arity]) >= cutoff);
            }
        }
        // Specialization pruning as deletion rules: a = 0 keeps only the
        // newest witness per key, b = ∞ only the oldest.
        let keep_newest = tables.interval.lo().0 == 0;
        let keep_oldest = !tables.interval.is_bounded() && !keep_newest;
        if keep_newest || keep_oldest {
            let mut best: HashMap<Tuple, TimePoint> = HashMap::new();
            for r in self.rel(tables.aux).iter() {
                let key = r.project(&key_cols);
                let ts = value_time(r[arity]);
                best.entry(key)
                    .and_modify(|cur| {
                        if (keep_newest && ts > *cur) || (keep_oldest && ts < *cur) {
                            *cur = ts;
                        }
                    })
                    .or_insert(ts);
            }
            let aux = self.db.relation_mut(tables.aux).expect("catalogued");
            aux.retain(|r| best[&r.project(&key_cols)] == value_time(r[arity]));
        }
    }

    fn refresh_window_ext(&mut self, tables: &NodeTables, t_now: TimePoint) {
        let arity = tables.vars.len();
        let key_cols: Vec<usize> = (0..arity).collect();
        let rows: Vec<Tuple> = match tables.interval.window_at(t_now) {
            None => Vec::new(),
            Some((w_lo, w_hi)) => self
                .rel(tables.aux)
                .iter()
                .filter(|r| {
                    let ts = value_time(r[arity]);
                    ts >= w_lo && ts <= w_hi
                })
                .map(|r| r.project(&key_cols))
                .collect(),
        };
        let ext = self.db.relation_mut(tables.ext).expect("catalogued");
        ext.clear();
        for r in rows {
            ext.insert(r).expect("key schema");
        }
    }
}

impl Checker for ActiveChecker {
    fn constraint(&self) -> &Constraint {
        &self.compiled.constraint
    }

    fn step(&mut self, time: TimePoint, update: &Update) -> Result<StepReport, HistoryError> {
        if let Some(last) = self.last_time {
            if time <= last {
                return Err(HistoryError::NonMonotonicTime { last, new: time });
            }
        }
        self.db.apply(update)?;
        let mut scratch = std::mem::take(&mut self.scratch);
        for idx in 0..self.nodes.len() {
            self.fire_maintenance(idx, time, &mut scratch);
        }
        let violations = {
            let oracle = self.oracle(time);
            self.compiled
                .plans
                .body
                .execute(&self.db, &oracle, &Bindings::unit(), &mut scratch)
        };
        self.scratch = scratch;
        self.last_time = Some(time);
        Ok(StepReport {
            constraint: self.compiled.constraint.name,
            time,
            violations,
        })
    }

    fn space(&self) -> SpaceStats {
        let mut aux_keys = 0;
        let mut aux_timestamps = 0;
        let mut user_tuples = 0;
        for name in self.db.catalog().names() {
            let len = self.rel(name).len();
            if name.as_str().starts_with("__aux") || name.as_str().starts_with("__ext") {
                aux_keys += len;
            } else if name.as_str().starts_with("__") {
                aux_timestamps += len;
            } else {
                user_tuples += len;
            }
        }
        // Every aux row carries at most two timestamps.
        for t in &self.nodes {
            let per_row = match t.kind {
                Kind::Once | Kind::Since | Kind::HistInf => 1,
                Kind::HistFinite => 2,
                Kind::Prev => 0,
            };
            aux_timestamps += per_row * self.rel(t.aux).len();
        }
        SpaceStats {
            aux_keys,
            aux_timestamps,
            stored_states: 1,
            stored_tuples: user_tuples,
        }
    }

    fn name(&self) -> &'static str {
        "active"
    }

    fn plan_stats(&self) -> Option<rtic_core::RuntimePlanStats> {
        Some(rtic_core::RuntimePlanStats {
            plan: self.compiled.plans.stats(),
            scratch_high_water: self.scratch.high_water(),
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Oracle answering temporal queries from the materialized tables.
struct ActiveOracle<'a> {
    db: &'a Database,
    nodes: &'a [NodeTables],
    ids: &'a HashMap<Formula, usize>,
    t_now: TimePoint,
}

impl ActiveOracle<'_> {
    fn tables(&self, node: &Formula) -> &NodeTables {
        let idx = *self
            .ids
            .get(node)
            .unwrap_or_else(|| panic!("unknown node `{node}`"));
        &self.nodes[idx]
    }
}

impl Oracle for ActiveOracle<'_> {
    fn extension(&self, node: &Formula) -> Bindings {
        let t = self.tables(node);
        let rel = self.db.relation(t.ext).expect("catalogued");
        Bindings::from_rows(t.vars.clone(), rel.iter().cloned())
    }

    fn contains(&self, node: &Formula, key: &Tuple) -> bool {
        // The materialized extension table answers probes directly.
        let t = self.tables(node);
        self.db.relation(t.ext).expect("catalogued").contains(key)
    }

    fn hist_holds(&self, node: &Formula, key: &Tuple) -> bool {
        let t = self.tables(node);
        let arity = t.vars.len();
        match t.kind {
            Kind::HistFinite => {
                let Some((w_lo, w_hi)) = t.interval.window_at(self.t_now) else {
                    return true;
                };
                let runs: Vec<(TimePoint, TimePoint)> = self
                    .db
                    .relation(t.aux)
                    .expect("catalogued")
                    .iter()
                    .filter(|r| r.values()[..arity] == *key.values())
                    .map(|r| (value_time(r[arity]), value_time(r[arity + 1])))
                    .collect();
                self.db
                    .relation(t.times)
                    .expect("catalogued")
                    .iter()
                    .map(|r| value_time(r[0]))
                    .filter(|&tau| tau >= w_lo && tau <= w_hi)
                    .all(|tau| runs.iter().any(|&(s, e)| s <= tau && tau <= e))
            }
            Kind::HistInf => {
                let older = self
                    .db
                    .relation(t.older)
                    .expect("catalogued")
                    .iter()
                    .next()
                    .map(|r| value_time(r[0]));
                match older {
                    None => true,
                    Some(m) => self
                        .db
                        .relation(t.aux)
                        .expect("catalogued")
                        .iter()
                        .any(|r| r.values()[..arity] == *key.values() && value_time(r[arity]) >= m),
                }
            }
            _ => unreachable!("hist query against non-hist node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::tuple;
    use rtic_temporal::parser::parse_constraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("q", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        )
    }

    fn checker(src: &str) -> ActiveChecker {
        ActiveChecker::new(parse_constraint(src).unwrap(), catalog()).unwrap()
    }

    #[test]
    fn detects_like_the_direct_checker() {
        let mut c = checker("deny d: p(x) && once[2,4] q(x) && !q(x)");
        c.step(TimePoint(1), &Update::new().with_insert("q", tuple!["a"]))
            .unwrap();
        c.step(
            TimePoint(2),
            &Update::new()
                .with_delete("q", tuple!["a"])
                .with_insert("p", tuple!["a"]),
        )
        .unwrap();
        let r = c.step(TimePoint(3), &Update::new()).unwrap();
        assert_eq!(r.violation_count(), 1, "witness age 2 in [2,4]");
        let r = c.step(TimePoint(6), &Update::new()).unwrap();
        assert!(r.ok(), "witness aged out");
    }

    #[test]
    fn rules_listing_mentions_every_table() {
        let c = checker("deny d: p(x) && once[0,3] q(x) && hist[0,2] p(x)");
        let rules = c.rules();
        assert_eq!(rules.len(), 3, "two maintenance rules + detection");
        assert!(rules.iter().any(|r| r.contains("__aux0")));
        assert!(rules.last().unwrap().contains("detection"));
    }

    #[test]
    fn aux_tables_are_pruned() {
        let mut c = checker("deny d: p(x) && once[0,2] q(x)");
        for t in 1..=30u64 {
            let u = if t % 2 == 0 {
                Update::new()
                    .with_insert("q", tuple!["a"])
                    .with_delete("q", tuple!["a"])
            } else {
                Update::new()
            };
            c.step(TimePoint(t), &u).unwrap();
            assert!(c.space().aux_keys <= 4, "window pruning keeps tables small");
        }
    }

    #[test]
    fn rejects_reserved_names() {
        let cat = Arc::new(
            Catalog::new()
                .with("__weird", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let c = parse_constraint("deny d: __weird(x) && !__weird(x)").unwrap();
        let compiled = CompiledConstraint::compile(c, cat).unwrap();
        let result = std::panic::catch_unwind(|| ActiveChecker::from_compiled(compiled));
        assert!(result.is_err());
    }
}
