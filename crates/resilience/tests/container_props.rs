//! Property: sealing checkpoint sections and corrupting the container —
//! truncation, bit flips, section reordering — always yields a typed
//! [`ContainerError`], never a panic and never a silently reordered or
//! altered payload. Intact containers always round-trip.

use proptest::prelude::*;
use rtic_resilience::container::{open_any, seal, ContainerError, MAGIC_V1};

/// Plausible v1 checkpoint sections with arbitrary-ish body content.
/// Constraint names are index-tagged so every section is distinct, which
/// makes any reordering observable.
fn sections() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        (
            "[a-z][a-z0-9_]{0,8}",
            proptest::collection::vec("[ -~]{0,20}", 0..6),
        ),
        1..5,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (name, lines))| {
                let mut s = format!("{MAGIC_V1}\nconstraint {name}_{i}\n");
                for line in lines {
                    // Indent payload lines so none collides with the v1
                    // magic, which is the section delimiter.
                    s.push_str("  ");
                    s.push_str(&line);
                    s.push('\n');
                }
                s
            })
            .collect()
    })
}

#[derive(Debug, Clone)]
enum Corruption {
    Truncate(usize),
    BitFlip(usize),
    SwapSections(usize, usize),
}

fn corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        (0usize..10_000).prop_map(Corruption::Truncate),
        (0usize..80_000).prop_map(Corruption::BitFlip),
        (0usize..4, 0usize..4).prop_map(|(a, b)| Corruption::SwapSections(a, b)),
    ]
}

proptest! {
    #[test]
    fn intact_containers_round_trip(secs in sections()) {
        let sealed = seal(secs.iter().map(String::as_str));
        let (reopened, _) = open_any(sealed.as_bytes()).expect("intact container opens");
        prop_assert_eq!(reopened, secs);
    }

    #[test]
    fn corruption_is_a_typed_error_never_a_wrong_answer(
        secs in sections(),
        c in corruption(),
    ) {
        let sealed = seal(secs.iter().map(String::as_str)).into_bytes();
        let corrupt: Vec<u8> = match c {
            Corruption::Truncate(at) => sealed[..at % sealed.len()].to_vec(),
            Corruption::BitFlip(bit) => {
                let mut bytes = sealed.clone();
                let idx = (bit / 8) % bytes.len();
                bytes[idx] ^= 1 << (bit % 8);
                bytes
            }
            Corruption::SwapSections(a, b) => {
                let (a, b) = (a % secs.len(), b % secs.len());
                if a == b {
                    // Swapping a section with itself is not a corruption.
                    return;
                }
                // Reorder the payload in place without resealing.
                let mut reordered = secs.clone();
                reordered.swap(a, b);
                let text = String::from_utf8(sealed.clone()).expect("sealed is UTF-8");
                let payload: String = secs.concat();
                let start = text.find(&payload).expect("payload present");
                let mut tampered = text;
                tampered.replace_range(start..start + payload.len(), &reordered.concat());
                tampered.into_bytes()
            }
        };
        if corrupt == sealed {
            return;
        }
        // The call must return a typed error: no panic (the test harness
        // would catch it) and no Ok with a payload.
        match open_any(&corrupt) {
            Err(
                ContainerError::BadMagic { .. }
                | ContainerError::UnsupportedVersion { .. }
                | ContainerError::Truncated { .. }
                | ContainerError::ChecksumMismatch { .. }
                | ContainerError::Malformed { .. },
            ) => {}
            Ok(_) => prop_assert!(false, "corrupted container opened cleanly"),
        }
    }
}
