//! Periodic checkpoint scheduling.
//!
//! A [`CheckpointPolicy`] says *how often* to persist (every N steps
//! and/or every T seconds); a [`CheckpointTicker`] tracks progress
//! against it. The two triggers compose with OR semantics: a busy stream
//! checkpoints by step count, an idle one by wall clock, so recovery
//! replay stays bounded either way.

use std::time::{Duration, Instant};

/// How often to write a periodic checkpoint. The default policy is
/// end-of-run only (no periodic trigger).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many steps since the last checkpoint.
    pub every_steps: Option<u64>,
    /// Checkpoint once this much wall-clock time has passed since the
    /// last checkpoint (checked at step boundaries; an idle stream that
    /// delivers no transitions writes nothing).
    pub every: Option<Duration>,
}

impl CheckpointPolicy {
    /// `true` if the policy has any periodic trigger.
    pub fn is_periodic(&self) -> bool {
        self.every_steps.is_some() || self.every.is_some()
    }
}

/// Tracks steps and elapsed time against a [`CheckpointPolicy`].
#[derive(Debug)]
pub struct CheckpointTicker {
    policy: CheckpointPolicy,
    steps_since: u64,
    last_save: Instant,
}

impl CheckpointTicker {
    /// A ticker starting its counters now.
    pub fn new(policy: CheckpointPolicy) -> CheckpointTicker {
        CheckpointTicker {
            policy,
            steps_since: 0,
            last_save: Instant::now(),
        }
    }

    /// Record one completed step and report whether a checkpoint is due.
    /// Returning `true` resets both counters — the caller is expected to
    /// save (a failed save simply retries at the next trigger).
    pub fn step_completed(&mut self) -> bool {
        self.steps_since += 1;
        let steps_due = self
            .policy
            .every_steps
            .is_some_and(|n| self.steps_since >= n);
        let time_due = self
            .policy
            .every
            .is_some_and(|t| self.last_save.elapsed() >= t);
        if steps_due || time_due {
            self.steps_since = 0;
            self.last_save = Instant::now();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_fires() {
        let mut ticker = CheckpointTicker::new(CheckpointPolicy::default());
        for _ in 0..1000 {
            assert!(!ticker.step_completed());
        }
    }

    #[test]
    fn step_trigger_fires_every_n() {
        let mut ticker = CheckpointTicker::new(CheckpointPolicy {
            every_steps: Some(3),
            every: None,
        });
        let fired: Vec<bool> = (0..7).map(|_| ticker.step_completed()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false]);
    }

    #[test]
    fn time_trigger_fires_once_elapsed() {
        let mut ticker = CheckpointTicker::new(CheckpointPolicy {
            every_steps: None,
            every: Some(Duration::ZERO),
        });
        // Zero interval: every step boundary is due.
        assert!(ticker.step_completed());
        assert!(ticker.step_completed());
        let mut never = CheckpointTicker::new(CheckpointPolicy {
            every_steps: None,
            every: Some(Duration::from_secs(3600)),
        });
        assert!(!never.step_completed());
    }
}
