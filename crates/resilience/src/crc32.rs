//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Used as the checkpoint container's integrity trailer. CRC-32 detects
//! every single-bit error and every burst error up to 32 bits — exactly
//! the torn-write and bit-rot failures the rotation set must reject.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data = b"rtic-checkpoint-set v2\nsections 1\npayload...";
        let base = crc32(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
