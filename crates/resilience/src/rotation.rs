//! Checkpoint rotation and newest-first crash recovery.
//!
//! A [`Rotation`] manages a small family of checkpoint files —
//! `state.ckpt`, `state.ckpt.1`, `state.ckpt.2`, … — so that a corrupt
//! newest checkpoint (torn write, bit rot) never strands a run:
//! [`Rotation::recover`] walks the candidates newest-first, validates
//! each through the checksummed container, and falls back to the first
//! intact one, reporting every rejected candidate along the way.

use std::fs;
use std::path::{Path, PathBuf};

use crate::container::{self, Format};
use crate::durable::{write_atomic_with, DurableError};
use crate::failpoint::FailPlan;

/// A rotated family of checkpoint files rooted at one path.
#[derive(Debug, Clone)]
pub struct Rotation {
    path: PathBuf,
    keep: usize,
}

/// The result of walking a rotation set for an intact checkpoint.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The first intact candidate: its path, its checkpoint sections,
    /// and the container format it was stored in. `None` when no
    /// candidate exists or all of them are corrupt.
    pub restored: Option<(PathBuf, Vec<String>, Format)>,
    /// Candidates that existed but were rejected, newest first, with the
    /// typed error that rejected them (rendered for display).
    pub rejected: Vec<(PathBuf, String)>,
}

impl Rotation {
    /// A rotation rooted at `path`, keeping at most `keep` generations
    /// (`keep` is clamped to at least 1, i.e. just the primary file).
    pub fn new(path: impl Into<PathBuf>, keep: usize) -> Rotation {
        Rotation {
            path: path.into(),
            keep: keep.max(1),
        }
    }

    /// The primary (newest) checkpoint path.
    pub fn primary(&self) -> &Path {
        &self.path
    }

    /// All candidate paths, newest first: `path`, `path.1`, `path.2`, …
    pub fn candidates(&self) -> Vec<PathBuf> {
        (0..self.keep).map(|i| self.candidate(i)).collect()
    }

    fn candidate(&self, index: usize) -> PathBuf {
        if index == 0 {
            self.path.clone()
        } else {
            PathBuf::from(format!("{}.{index}", self.path.display()))
        }
    }

    /// Rotate the existing generations down one slot and atomically
    /// write `text` as the new primary. Asks `faults` at `site` so chaos
    /// tests can inject write failures or on-disk corruption.
    pub fn write(&self, text: &str, faults: &FailPlan, site: &str) -> Result<(), DurableError> {
        for i in (1..self.keep).rev() {
            let from = self.candidate(i - 1);
            let to = self.candidate(i);
            if from.exists() {
                fs::rename(&from, &to).map_err(|e| DurableError::Io {
                    path: to,
                    op: "rotate",
                    message: e.to_string(),
                })?;
            }
        }
        write_atomic_with(&self.path, text.as_bytes(), faults, site)
    }

    /// Walk the rotation newest-first and return the first candidate
    /// that validates, along with every corrupt candidate skipped on the
    /// way. Missing files are skipped silently (an un-filled rotation
    /// slot is normal); existing-but-invalid files are reported.
    pub fn recover(&self) -> RecoveryOutcome {
        let mut rejected = Vec::new();
        for candidate in self.candidates() {
            let bytes = match fs::read(&candidate) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    rejected.push((candidate, format!("cannot read: {e}")));
                    continue;
                }
            };
            match container::open_any(&bytes) {
                Ok((sections, format)) => {
                    return RecoveryOutcome {
                        restored: Some((candidate, sections, format)),
                        rejected,
                    };
                }
                Err(e) => rejected.push((candidate, e.to_string())),
            }
        }
        RecoveryOutcome {
            restored: None,
            rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::seal;

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtic-rotation-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn section(tag: &str) -> String {
        format!("rtic-checkpoint v1\nconstraint {tag}\nbody G {tag}\ntime 1\nsteps 1\n")
    }

    #[test]
    fn rotation_keeps_generations_newest_first() {
        let rot = Rotation::new(temp_root("gen.ckpt"), 3);
        let plan = FailPlan::none();
        for tag in ["a", "b", "c", "d"] {
            rot.write(&seal([section(tag).as_str()]), &plan, "t")
                .unwrap();
        }
        let outcome = rot.recover();
        let (path, sections, _) = outcome.restored.unwrap();
        assert_eq!(path, rot.primary());
        assert!(sections[0].contains("constraint d"));
        // The oldest surviving generation is "b" (a rotated off the end).
        let bytes = fs::read(rot.candidates()[2].clone()).unwrap();
        let (old, _) = container::open_any(&bytes).unwrap();
        assert!(old[0].contains("constraint b"));
        assert!(outcome.rejected.is_empty());
    }

    #[test]
    fn recover_falls_back_past_corrupt_newest() {
        let rot = Rotation::new(temp_root("fall.ckpt"), 3);
        let plan = FailPlan::none();
        rot.write(&seal([section("good").as_str()]), &plan, "t")
            .unwrap();
        // The next write is torn: truncated mid-payload on disk.
        let torn = FailPlan::parse("t=truncate:80").unwrap();
        rot.write(&seal([section("bad").as_str()]), &torn, "t")
            .unwrap();
        let outcome = rot.recover();
        let (path, sections, _) = outcome.restored.unwrap();
        assert_eq!(path, rot.candidates()[1]);
        assert!(sections[0].contains("constraint good"));
        assert_eq!(outcome.rejected.len(), 1);
        assert!(outcome.rejected[0].1.contains("truncated"));
    }

    #[test]
    fn recover_reports_all_corrupt() {
        let rot = Rotation::new(temp_root("dead.ckpt"), 2);
        fs::write(rot.primary(), b"garbage").unwrap();
        fs::write(&rot.candidates()[1], b"more garbage").unwrap();
        let outcome = rot.recover();
        assert!(outcome.restored.is_none());
        assert_eq!(outcome.rejected.len(), 2);
    }

    #[test]
    fn recover_with_no_files_is_empty() {
        let rot = Rotation::new(temp_root("absent.ckpt"), 3);
        let outcome = rot.recover();
        assert!(outcome.restored.is_none());
        assert!(outcome.rejected.is_empty());
    }
}
