//! The checkpoint container format, version 2.
//!
//! A v2 container wraps one or more opaque checkpoint *sections* (the
//! line-oriented `rtic-checkpoint v1` texts produced by
//! `core::checkpoint::save`) in a versioned header and a CRC-32 trailer:
//!
//! ```text
//! rtic-checkpoint-set v2
//! sections <n>
//! payload-bytes <len>
//! <len bytes of payload: the concatenated v1 sections>
//! crc32 <8 lowercase hex digits>
//! ```
//!
//! The CRC covers every byte from the start of the file through the end
//! of the payload, so truncation, bit flips, and section reordering are
//! all detected ([`ContainerError`] — never a panic, never a silently
//! wrong checker). Bare `rtic-checkpoint v1` files (the pre-v2 format)
//! are still accepted by [`open_any`] for backward compatibility; they
//! carry no checksum.

use crate::crc32::crc32;

/// Magic first line of a v2 container.
pub const MAGIC_V2: &str = "rtic-checkpoint-set v2";
/// Magic first line of a legacy (v1) checkpoint section.
pub const MAGIC_V1: &str = "rtic-checkpoint v1";

/// Which container format a checkpoint file was read as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Checksummed multi-section container.
    V2,
    /// Bare concatenated v1 sections (no integrity trailer).
    LegacyV1,
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Format::V2 => write!(f, "v2"),
            Format::LegacyV1 => write!(f, "legacy v1"),
        }
    }
}

/// Why a checkpoint container was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The file does not start with a known checkpoint magic line.
    BadMagic {
        /// The first line actually found (truncated for display).
        found: String,
    },
    /// The file announces a checkpoint version this build cannot read.
    UnsupportedVersion {
        /// The version line found.
        found: String,
    },
    /// The file ends before the announced payload/trailer is complete.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The stored CRC-32 does not match the file contents.
    ChecksumMismatch {
        /// CRC recorded in the trailer.
        stored: u32,
        /// CRC computed over the file.
        computed: u32,
    },
    /// The container structure is invalid (bad header field, bad
    /// trailer, non-UTF-8 payload, section count mismatch, ...).
    Malformed {
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadMagic { found } => {
                write!(f, "not a checkpoint file (first line: `{found}`)")
            }
            ContainerError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version: `{found}`")
            }
            ContainerError::Truncated { expected, found } => {
                write!(
                    f,
                    "checkpoint truncated: expected {expected} bytes, found {found}"
                )
            }
            ContainerError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: stored crc32 {stored:08x}, computed {computed:08x}"
                )
            }
            ContainerError::Malformed { detail } => {
                write!(f, "malformed checkpoint container: {detail}")
            }
        }
    }
}

impl std::error::Error for ContainerError {}

/// Seal checkpoint sections into a v2 container.
///
/// Each section must be a complete `rtic-checkpoint v1` text (starting
/// with its magic line) so [`open_any`] can split the payload back into
/// the same sections.
pub fn seal<'a>(sections: impl IntoIterator<Item = &'a str>) -> String {
    let sections: Vec<&str> = sections.into_iter().collect();
    let payload: String = sections.concat();
    let mut out = format!(
        "{MAGIC_V2}\nsections {}\npayload-bytes {}\n",
        sections.len(),
        payload.len()
    );
    out.push_str(&payload);
    let crc = crc32(out.as_bytes());
    out.push_str(&format!("crc32 {crc:08x}\n"));
    out
}

/// Open a checkpoint file in either format: a checksummed v2 container
/// (validated) or a bare legacy v1 file (accepted as-is). Returns the
/// individual v1 sections and the format that was read.
pub fn open_any(bytes: &[u8]) -> Result<(Vec<String>, Format), ContainerError> {
    if bytes.starts_with(MAGIC_V2.as_bytes()) {
        return open_v2(bytes).map(|sections| (sections, Format::V2));
    }
    if bytes.starts_with(MAGIC_V1.as_bytes()) {
        let text = std::str::from_utf8(bytes).map_err(|_| ContainerError::Malformed {
            detail: "legacy checkpoint is not valid UTF-8".to_string(),
        })?;
        return Ok((split_v1_sections(text), Format::LegacyV1));
    }
    if bytes.starts_with(b"rtic-checkpoint") {
        let first = first_line_lossy(bytes);
        return Err(ContainerError::UnsupportedVersion { found: first });
    }
    Err(ContainerError::BadMagic {
        found: first_line_lossy(bytes),
    })
}

fn open_v2(bytes: &[u8]) -> Result<Vec<String>, ContainerError> {
    // Parse the three header lines at byte level so corruption in the
    // payload cannot derail header parsing.
    let mut pos = MAGIC_V2.len();
    pos = expect_newline(bytes, pos)?;
    let (section_count, next) = parse_header_field(bytes, pos, "sections")?;
    let (payload_len, payload_start) = parse_header_field(bytes, next, "payload-bytes")?;

    let payload_end = payload_start
        .checked_add(payload_len)
        .ok_or(ContainerError::Malformed {
            detail: "payload-bytes overflows".to_string(),
        })?;
    // Trailer: "crc32 " + 8 hex digits + "\n"
    let trailer_len = "crc32 ".len() + 8 + 1;
    let expected_total = payload_end + trailer_len;
    if bytes.len() < expected_total {
        return Err(ContainerError::Truncated {
            expected: expected_total,
            found: bytes.len(),
        });
    }
    if bytes.len() > expected_total {
        return Err(ContainerError::Malformed {
            detail: format!(
                "{} trailing bytes after the crc32 trailer",
                bytes.len() - expected_total
            ),
        });
    }
    let trailer = &bytes[payload_end..];
    let stored = std::str::from_utf8(trailer)
        .ok()
        .and_then(|t| t.strip_prefix("crc32 "))
        .and_then(|t| t.strip_suffix('\n'))
        // Canonical lowercase hex only: a case-insensitive parse would
        // let certain trailer bit flips slip through undetected.
        .filter(|hex| hex.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
        .and_then(|hex| u32::from_str_radix(hex, 16).ok())
        .ok_or(ContainerError::Malformed {
            detail: "bad crc32 trailer".to_string(),
        })?;
    let computed = crc32(&bytes[..payload_end]);
    if stored != computed {
        return Err(ContainerError::ChecksumMismatch { stored, computed });
    }

    let payload = std::str::from_utf8(&bytes[payload_start..payload_end]).map_err(|_| {
        ContainerError::Malformed {
            detail: "payload is not valid UTF-8".to_string(),
        }
    })?;
    let sections = if payload.is_empty() {
        Vec::new()
    } else {
        if !payload.starts_with(MAGIC_V1) {
            return Err(ContainerError::Malformed {
                detail: "payload does not start with a v1 section".to_string(),
            });
        }
        split_v1_sections(payload)
    };
    if sections.len() != section_count {
        return Err(ContainerError::Malformed {
            detail: format!(
                "header announces {section_count} section(s), payload holds {}",
                sections.len()
            ),
        });
    }
    Ok(sections)
}

/// Split concatenated v1 checkpoint text into individual sections; each
/// `rtic-checkpoint v1` magic line starts a new section.
pub fn split_v1_sections(text: &str) -> Vec<String> {
    let mut sections: Vec<String> = Vec::new();
    for line in text.lines() {
        if line == MAGIC_V1 || sections.is_empty() {
            sections.push(String::new());
        }
        if let Some(current) = sections.last_mut() {
            current.push_str(line);
            current.push('\n');
        }
    }
    sections
}

fn expect_newline(bytes: &[u8], pos: usize) -> Result<usize, ContainerError> {
    if bytes.get(pos) == Some(&b'\n') {
        Ok(pos + 1)
    } else {
        Err(ContainerError::Malformed {
            detail: "missing newline after header line".to_string(),
        })
    }
}

/// Parse a `key <decimal>\n` header line starting at `pos`; returns the
/// value and the byte offset just past the newline.
fn parse_header_field(
    bytes: &[u8],
    pos: usize,
    key: &str,
) -> Result<(usize, usize), ContainerError> {
    let rest = bytes.get(pos..).ok_or(ContainerError::Truncated {
        expected: pos + key.len() + 2,
        found: bytes.len(),
    })?;
    let malformed = || ContainerError::Malformed {
        detail: format!("bad `{key}` header line"),
    };
    if !rest.starts_with(key.as_bytes()) || rest.get(key.len()) != Some(&b' ') {
        return Err(malformed());
    }
    let value_start = key.len() + 1;
    let nl =
        rest[value_start..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(ContainerError::Truncated {
                expected: pos + rest.len() + 1,
                found: bytes.len(),
            })?;
    let value_bytes = &rest[value_start..value_start + nl];
    let value = std::str::from_utf8(value_bytes)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(malformed)?;
    Ok((value, pos + value_start + nl + 1))
}

fn first_line_lossy(bytes: &[u8]) -> String {
    let line = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let mut text = String::from_utf8_lossy(line).into_owned();
    if text.len() > 64 {
        text.truncate(64);
        text.push('…');
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sections() -> Vec<String> {
        vec![
            format!("{MAGIC_V1}\nconstraint a\nbody G a\ntime 3\nsteps 4\n"),
            format!("{MAGIC_V1}\nconstraint b\nbody G b\ntime 3\nsteps 4\n"),
        ]
    }

    #[test]
    fn seal_open_round_trip() {
        let sections = demo_sections();
        let sealed = seal(sections.iter().map(String::as_str));
        let (reopened, format) = open_any(sealed.as_bytes()).unwrap();
        assert_eq!(format, Format::V2);
        assert_eq!(reopened, sections);
    }

    #[test]
    fn legacy_v1_is_accepted() {
        let sections = demo_sections();
        let raw: String = sections.concat();
        let (reopened, format) = open_any(raw.as_bytes()).unwrap();
        assert_eq!(format, Format::LegacyV1);
        assert_eq!(reopened, sections);
    }

    #[test]
    fn empty_container_round_trips() {
        let sealed = seal(std::iter::empty());
        let (sections, _) = open_any(sealed.as_bytes()).unwrap();
        assert!(sections.is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let sealed = seal(demo_sections().iter().map(String::as_str));
        for cut in [sealed.len() - 1, sealed.len() / 2, 30] {
            let err = open_any(&sealed.as_bytes()[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ContainerError::Truncated { .. } | ContainerError::Malformed { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let sealed = seal(demo_sections().iter().map(String::as_str)).into_bytes();
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut corrupt = sealed.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    open_any(&corrupt).is_err(),
                    "flip at {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn section_reorder_is_detected() {
        let sections = demo_sections();
        let sealed = seal(sections.iter().map(String::as_str));
        // Swap the two sections inside the sealed payload without
        // resealing: the CRC no longer matches.
        let swapped_payload: String = sections.iter().rev().cloned().collect();
        let header_end = sealed.find(MAGIC_V1).unwrap();
        let trailer_start = sealed.rfind("crc32 ").unwrap();
        let tampered = format!(
            "{}{}{}",
            &sealed[..header_end],
            swapped_payload,
            &sealed[trailer_start..]
        );
        let err = open_any(tampered.as_bytes()).unwrap_err();
        assert!(matches!(err, ContainerError::ChecksumMismatch { .. }));
    }

    #[test]
    fn alien_and_future_files_are_typed_errors() {
        assert!(matches!(
            open_any(b"totally not a checkpoint"),
            Err(ContainerError::BadMagic { .. })
        ));
        assert!(matches!(
            open_any(b"rtic-checkpoint-set v99\n"),
            Err(ContainerError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            open_any(b""),
            Err(ContainerError::BadMagic { .. })
        ));
    }
}
