//! Fault injection for chaos testing.
//!
//! A [`FailPlan`] is an explicit, per-run set of named failure points,
//! parsed from a spec string (CLI `--failpoints` flag or the
//! `RTIC_FAILPOINTS` environment variable). Code that wants to be
//! chaos-testable asks the plan at a named *site* — e.g.
//! `"checkpoint.write"` before persisting a checkpoint — and the plan
//! answers with the fault to inject, if any.
//!
//! The plan is an explicit value threaded through call sites rather than
//! a process-global registry: the CLI test-suite runs many monitors
//! in-process and in parallel, and global failpoint state would race
//! across them.
//!
//! # Spec grammar
//!
//! ```text
//! spec    := entry (';' entry)*
//! entry   := site '=' action ('@' nth)?
//! action  := 'io-error' | 'abort' | 'panic' | 'truncate:' BYTES | 'bitflip:' BIT
//! ```
//!
//! `@nth` (1-based) makes the fault fire only on the nth time the site is
//! checked; without it the fault fires on every check. Examples:
//!
//! * `run.abort=abort@7` — simulate a crash while reading the 7th transition.
//! * `checkpoint.write=bitflip:100` — flip bit 100 of every checkpoint
//!   before it reaches the disk (a torn/corrupt write).
//! * `engine-panic:no_dupes=panic@3` — make the engine for constraint
//!   `no_dupes` panic while processing its 3rd transition.
//!
//! # Named sites
//!
//! Sites are free-form strings owned by their call sites; the ones the
//! chaos drills exercise today:
//!
//! | site               | checked by                                     |
//! |--------------------|------------------------------------------------|
//! | `run.abort`        | `rtic check` before each transition            |
//! | `checkpoint.write` | `rtic check` persisting a checkpoint           |
//! | `engine-panic:<c>` | the fleet engine for constraint `<c>`          |
//! | `serve.accept`     | the daemon's accept loop, per poll             |
//! | `serve.read`       | the daemon, after each client line read        |
//! | `serve.step`       | the daemon's engine loop, per dequeued job     |
//! | `serve.write`      | the daemon, before each reply write            |
//! | `serve.checkpoint` | the daemon persisting a periodic checkpoint    |
//!
//! `serve.step=abort@N` is the daemon's kill -9 model: the engine dies
//! mid-job with no reply, no cleanup, and no final checkpoint, which is
//! exactly what the `--resume` recovery drills need to exercise.

use std::collections::HashMap;
use std::sync::Mutex;

/// The fault a [`FailPlan`] injects at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Fail the operation with an injected I/O error.
    IoError,
    /// Abort the whole run, simulating a process kill.
    Abort,
    /// Panic at the site.
    Panic,
    /// Corrupt a byte payload by truncating it to the given length.
    Truncate(usize),
    /// Corrupt a byte payload by flipping the given bit (bit index
    /// `i` flips bit `i % 8` of byte `i / 8`, wrapping at the payload end).
    BitFlip(usize),
}

#[derive(Debug)]
struct Point {
    action: FailAction,
    /// 1-based hit on which the fault fires; `None` fires on every hit.
    at_hit: Option<u64>,
    hits: u64,
}

/// A named set of failure points for one run. Checking a site counts a
/// hit even when no fault fires, so `@nth` triggers are deterministic.
#[derive(Debug, Default)]
pub struct FailPlan {
    points: Mutex<HashMap<String, Point>>,
}

/// Environment variable consulted by [`FailPlan::from_env`].
pub const ENV_VAR: &str = "RTIC_FAILPOINTS";

impl FailPlan {
    /// An empty plan that never injects anything.
    pub fn none() -> FailPlan {
        FailPlan::default()
    }

    /// `true` if the plan has no failure points.
    pub fn is_empty(&self) -> bool {
        match self.points.lock() {
            Ok(points) => points.is_empty(),
            Err(_) => false,
        }
    }

    /// Parse a failpoint spec (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FailPlan, String> {
        let mut points = HashMap::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("failpoint `{entry}`: expected `site=action`"))?;
            let site = site.trim();
            if site.is_empty() {
                return Err(format!("failpoint `{entry}`: empty site name"));
            }
            let (action_text, at_hit) = match rest.split_once('@') {
                Some((a, n)) => {
                    let nth: u64 = n
                        .trim()
                        .parse()
                        .map_err(|_| format!("failpoint `{entry}`: bad hit count `{n}`"))?;
                    if nth == 0 {
                        return Err(format!("failpoint `{entry}`: hit count is 1-based"));
                    }
                    (a.trim(), Some(nth))
                }
                None => (rest.trim(), None),
            };
            let action = parse_action(action_text)
                .ok_or_else(|| format!("failpoint `{entry}`: unknown action `{action_text}`"))?;
            points.insert(
                site.to_string(),
                Point {
                    action,
                    at_hit,
                    hits: 0,
                },
            );
        }
        Ok(FailPlan {
            points: Mutex::new(points),
        })
    }

    /// Build a plan from the `RTIC_FAILPOINTS` environment variable;
    /// an unset or empty variable yields the empty plan.
    pub fn from_env() -> Result<FailPlan, String> {
        match std::env::var(ENV_VAR) {
            Ok(spec) if !spec.trim().is_empty() => FailPlan::parse(&spec),
            _ => Ok(FailPlan::none()),
        }
    }

    /// Count a hit at `site` and return the fault to inject, if any.
    pub fn check(&self, site: &str) -> Option<FailAction> {
        let mut points = self.points.lock().ok()?;
        let point = points.get_mut(site)?;
        point.hits += 1;
        match point.at_hit {
            Some(nth) if point.hits != nth => None,
            _ => Some(point.action),
        }
    }

    /// Armed engine panics: entries named `engine-panic:<constraint>` with
    /// a `panic@nth` action, returned as `(constraint, nth)` pairs. These
    /// are wired into the fleet by the caller rather than checked at a
    /// site, because the panic has to originate inside the engine step.
    pub fn engine_panics(&self) -> Vec<(String, u64)> {
        let points = match self.points.lock() {
            Ok(points) => points,
            Err(_) => return Vec::new(),
        };
        let mut armed: Vec<(String, u64)> = points
            .iter()
            .filter_map(|(site, point)| {
                let constraint = site.strip_prefix("engine-panic:")?;
                if point.action != FailAction::Panic {
                    return None;
                }
                Some((constraint.to_string(), point.at_hit.unwrap_or(1)))
            })
            .collect();
        armed.sort();
        armed
    }
}

fn parse_action(text: &str) -> Option<FailAction> {
    if let Some(len) = text.strip_prefix("truncate:") {
        return len.trim().parse().ok().map(FailAction::Truncate);
    }
    if let Some(bit) = text.strip_prefix("bitflip:") {
        return bit.trim().parse().ok().map(FailAction::BitFlip);
    }
    match text {
        "io-error" => Some(FailAction::IoError),
        "abort" => Some(FailAction::Abort),
        "panic" => Some(FailAction::Panic),
        _ => None,
    }
}

/// Apply a byte-corrupting action ([`FailAction::Truncate`] or
/// [`FailAction::BitFlip`]) to a payload in place. Other actions are a
/// no-op here; they fail the surrounding operation instead.
pub fn apply_corruption(bytes: &mut Vec<u8>, action: FailAction) {
    match action {
        FailAction::Truncate(len) => bytes.truncate(len),
        FailAction::BitFlip(bit) => {
            if !bytes.is_empty() {
                let idx = (bit / 8) % bytes.len();
                bytes[idx] ^= 1 << (bit % 8);
            }
        }
        FailAction::IoError | FailAction::Abort | FailAction::Panic => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_entry_specs() {
        let plan = FailPlan::parse(
            "run.abort=abort@3; checkpoint.write=bitflip:64; engine-panic:demo=panic@2",
        )
        .unwrap();
        assert!(!plan.is_empty());
        assert_eq!(plan.engine_panics(), vec![("demo".to_string(), 2)]);
        // bitflip fires on every hit
        assert_eq!(
            plan.check("checkpoint.write"),
            Some(FailAction::BitFlip(64))
        );
        assert_eq!(
            plan.check("checkpoint.write"),
            Some(FailAction::BitFlip(64))
        );
        // abort fires only on the 3rd hit
        assert_eq!(plan.check("run.abort"), None);
        assert_eq!(plan.check("run.abort"), None);
        assert_eq!(plan.check("run.abort"), Some(FailAction::Abort));
        assert_eq!(plan.check("run.abort"), None);
        // unknown sites never fire
        assert_eq!(plan.check("nope"), None);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FailPlan::parse("no-equals").is_err());
        assert!(FailPlan::parse("x=explode").is_err());
        assert!(FailPlan::parse("x=abort@0").is_err());
        assert!(FailPlan::parse("x=truncate:abc").is_err());
        assert!(FailPlan::parse("=abort").is_err());
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        assert!(FailPlan::parse("").unwrap().is_empty());
        assert!(FailPlan::parse(" ; ").unwrap().is_empty());
    }

    #[test]
    fn corruption_helpers() {
        let mut bytes = vec![0u8; 4];
        apply_corruption(&mut bytes, FailAction::BitFlip(9));
        assert_eq!(bytes, vec![0, 2, 0, 0]);
        apply_corruption(&mut bytes, FailAction::Truncate(2));
        assert_eq!(bytes, vec![0, 2]);
        let mut empty: Vec<u8> = Vec::new();
        apply_corruption(&mut empty, FailAction::BitFlip(3));
        assert!(empty.is_empty());
    }
}
