//! # rtic-resilience — crash safety for long-running monitors
//!
//! The bounded-history encoding makes a checker's recoverable state small;
//! this crate makes persisting and recovering that state *safe* against
//! the failures a monitor that "runs forever" actually meets: process
//! kills mid-write, torn or bit-flipped checkpoint files, and injected
//! faults for chaos testing. It is deliberately free of rtic dependencies —
//! everything here works on paths, bytes, and opaque text sections — so
//! any layer (CLI, benches, tests) can use it without cycles.
//!
//! * [`durable`] — atomic temp-file + fsync + rename writes, so a crash
//!   never leaves a truncated artifact behind.
//! * [`container`] — the checkpoint container format v2: a versioned
//!   header and a CRC32 trailer around one or more checkpoint sections;
//!   any truncation or bit flip is detected as a typed error.
//! * [`rotation`] — a rotation set (`f`, `f.1`, `f.2`, …) with
//!   newest-first recovery that falls back past corrupt entries.
//! * [`policy`] — periodic checkpoint scheduling (every N steps and/or
//!   every T seconds).
//! * [`failpoint`] — an env/flag-gated fault-injection plan that can
//!   force I/O errors, corrupt checkpoint bytes in flight, abort a run
//!   mid-stream, or arm engine panics.
//!
//! ```
//! use rtic_resilience::container;
//!
//! let sections = vec!["rtic-checkpoint v1\nconstraint demo\n".to_string()];
//! let sealed = container::seal(sections.iter().map(String::as_str));
//! let (reopened, _) = container::open_any(sealed.as_bytes()).unwrap();
//! assert_eq!(reopened, sections);
//! // Any single corrupted bit is detected:
//! let mut bytes = sealed.into_bytes();
//! bytes[10] ^= 1;
//! assert!(container::open_any(&bytes).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod container;
mod crc32;
pub mod durable;
pub mod failpoint;
pub mod policy;
pub mod rotation;

pub use container::{ContainerError, Format};
pub use crc32::crc32;
pub use durable::{write_atomic, write_atomic_with, DurableError};
pub use failpoint::{FailAction, FailPlan, ENV_VAR};
pub use policy::{CheckpointPolicy, CheckpointTicker};
pub use rotation::{RecoveryOutcome, Rotation};
