//! Atomic, durable file writes.
//!
//! [`write_atomic`] writes run artifacts (checkpoints, metrics snapshots,
//! traces) so that a crash at any instant leaves either the previous
//! complete file or the new complete file — never a truncated hybrid:
//! the bytes go to a temp file in the same directory, are fsynced, and
//! the temp file is renamed over the destination (rename within a
//! directory is atomic on POSIX). The parent directory is fsynced
//! best-effort so the rename itself survives power loss.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::failpoint::{apply_corruption, FailAction, FailPlan};

/// A failed durable write, carrying the path and the operation that failed.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io {
        /// Destination path of the write.
        path: PathBuf,
        /// The operation that failed (`create`, `write`, `sync`, `rename`).
        op: &'static str,
        /// The OS error message.
        message: String,
    },
    /// A failpoint injected an I/O failure at this site.
    Injected {
        /// Destination path of the write.
        path: PathBuf,
        /// The failpoint site that fired.
        site: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io { path, op, message } => {
                write!(f, "cannot {op} `{}`: {message}", path.display())
            }
            DurableError::Injected { path, site } => {
                write!(
                    f,
                    "injected I/O error writing `{}` (failpoint `{site}`)",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for DurableError {}

/// Atomically replace `path` with `bytes` (temp file + fsync + rename).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    write_atomic_with(path, bytes, &FailPlan::none(), "durable.write")
}

/// [`write_atomic`] with fault injection: asks `faults` at `site` first.
/// An `io-error`/`abort` action fails the write; `truncate`/`bitflip`
/// corrupt the payload but let the (now torn) write succeed, modelling
/// silent on-disk corruption; `panic` panics.
pub fn write_atomic_with(
    path: &Path,
    bytes: &[u8],
    faults: &FailPlan,
    site: &str,
) -> Result<(), DurableError> {
    let mut owned: Vec<u8>;
    let mut data: &[u8] = bytes;
    match faults.check(site) {
        None => {}
        Some(FailAction::IoError) | Some(FailAction::Abort) => {
            return Err(DurableError::Injected {
                path: path.to_path_buf(),
                site: site.to_string(),
            });
        }
        Some(FailAction::Panic) => panic!("injected panic at failpoint `{site}`"),
        Some(action) => {
            owned = bytes.to_vec();
            apply_corruption(&mut owned, action);
            data = &owned;
        }
    }

    let io = |op: &'static str| {
        let path = path.to_path_buf();
        move |e: std::io::Error| DurableError::Io {
            path,
            op,
            message: e.to_string(),
        }
    };

    let tmp = tmp_path(path);
    {
        let mut file = File::create(&tmp).map_err(io("create"))?;
        file.write_all(data).map_err(io("write"))?;
        file.sync_all().map_err(io("sync"))?;
    }
    fs::rename(&tmp, path).map_err(io("rename"))?;
    // Best-effort directory fsync: makes the rename durable, but its
    // failure (e.g. on filesystems without directory handles) does not
    // invalidate the already-complete write.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtic-durable-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let path = temp_dir().join("artifact.txt");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
    }

    #[test]
    fn injected_io_error_leaves_previous_file_intact() {
        let path = temp_dir().join("kept.txt");
        write_atomic(&path, b"stable").unwrap();
        let plan = FailPlan::parse("checkpoint.write=io-error").unwrap();
        let err = write_atomic_with(&path, b"doomed", &plan, "checkpoint.write").unwrap_err();
        assert!(err.to_string().contains("injected I/O error"));
        assert_eq!(fs::read(&path).unwrap(), b"stable");
    }

    #[test]
    fn injected_corruption_writes_torn_bytes() {
        let path = temp_dir().join("torn.txt");
        let plan = FailPlan::parse("checkpoint.write=truncate:3").unwrap();
        write_atomic_with(&path, b"longer payload", &plan, "checkpoint.write").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"lon");
    }

    #[test]
    fn error_for_missing_directory_is_typed() {
        let path = temp_dir().join("no-such-dir").join("f.txt");
        let err = write_atomic(&path, b"x").unwrap_err();
        assert!(matches!(err, DurableError::Io { op: "create", .. }));
    }
}
