//! The bundled client: line protocol over a socket, with `BUSY`-aware
//! retry — capped exponential backoff plus deterministic jitter, so a
//! fleet of clients hammered off a full queue does not reconverge on
//! the same retry instant.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::protocol::{BUSY_PREFIX, ERR_PREFIX, OK_PREFIX, VIOL_PREFIX};
use crate::server::Listen;

/// Retry behavior for `BUSY` replies.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First-retry delay; doubles per consecutive `BUSY`.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Consecutive `BUSY` replies tolerated before giving up.
    pub max_retries: u32,
    /// Jitter seed; distinct seeds de-correlate a client fleet.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_retries: 12,
            seed: 0x5eed_1e55,
        }
    }
}

/// What one request ultimately produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// `VIOL ` payloads, byte-identical to `rtic check` output lines.
    pub violations: Vec<String>,
    /// The terminal `OK …` line (without the prefix), trimmed.
    pub ok: String,
}

/// A connected client.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    retry: RetryPolicy,
    /// xorshift64 state for retry jitter.
    rng: u64,
    /// `BUSY` replies absorbed by retries so far.
    busy_seen: u64,
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Client {
    /// Connects to `listen` with default retry behavior.
    pub fn connect(listen: &Listen) -> Result<Client, String> {
        Client::connect_with(listen, RetryPolicy::default())
    }

    /// Connects with an explicit [`RetryPolicy`].
    pub fn connect_with(listen: &Listen, retry: RetryPolicy) -> Result<Client, String> {
        let stream = match listen {
            Listen::Tcp(addr) => TcpStream::connect(addr)
                .map(Stream::Tcp)
                .map_err(|e| format!("cannot connect to tcp:{addr}: {e}"))?,
            Listen::Unix(path) => UnixStream::connect(path)
                .map(Stream::Unix)
                .map_err(|e| format!("cannot connect to unix:{}: {e}", path.display()))?,
        };
        let reader = match &stream {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
        .map_err(|e| format!("cannot clone connection: {e}"))?;
        Ok(Client {
            reader: BufReader::new(reader),
            writer: stream,
            rng: retry.seed | 1,
            retry,
            busy_seen: 0,
        })
    }

    /// Connects, waiting up to `timeout` for the server to start
    /// listening (startup race helper for drivers and drills).
    pub fn connect_retry(listen: &Listen, timeout: Duration) -> Result<Client, String> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Client::connect(listen) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// [`Client::connect_retry`] for a unix socket path.
    pub fn connect_unix_retry(path: &Path, timeout: Duration) -> Result<Client, String> {
        Client::connect_retry(&Listen::Unix(path.to_path_buf()), timeout)
    }

    /// `BUSY` replies absorbed by retries since connect.
    pub fn busy_retries(&self) -> u64 {
        self.busy_seen
    }

    /// Sends one request line and reads to its terminal reply,
    /// retrying `BUSY` with capped exponential backoff + jitter.
    /// `ERR` replies and exhausted retries surface as `Err`.
    pub fn request(&mut self, line: &str) -> Result<Reply, String> {
        let mut attempt = 0u32;
        loop {
            self.write_line(line)?;
            let mut violations = Vec::new();
            loop {
                let reply = self.read_line()?;
                let trimmed = reply.trim_end();
                if let Some(v) = trimmed.strip_prefix(VIOL_PREFIX) {
                    violations.push(v.to_string());
                } else if let Some(rest) = strip_terminal(trimmed, OK_PREFIX) {
                    return Ok(Reply {
                        violations,
                        ok: rest.trim().to_string(),
                    });
                } else if let Some(rest) = strip_terminal(trimmed, BUSY_PREFIX) {
                    if attempt >= self.retry.max_retries {
                        return Err(format!(
                            "server still busy after {attempt} retries (last hint {rest} ms)"
                        ));
                    }
                    self.busy_seen += 1;
                    let hint_ms: u64 = rest.trim().parse().unwrap_or(0);
                    std::thread::sleep(self.backoff(attempt, hint_ms));
                    attempt += 1;
                    break; // resend the request
                } else if let Some(rest) = strip_terminal(trimmed, ERR_PREFIX) {
                    return Err(format!("server error: {}", rest.trim()));
                } else if trimmed.starts_with("DEGRADED") {
                    // Status replies lead with DEGRADED when engines are
                    // quarantined; the payload is still a success.
                    return Ok(Reply {
                        violations,
                        ok: trimmed.to_string(),
                    });
                } else {
                    return Err(format!("unparseable reply line: {trimmed:?}"));
                }
            }
        }
    }

    /// Streams one update (a `@time …` log line); returns its reply.
    pub fn send_update(&mut self, log_line: &str) -> Result<Reply, String> {
        self.request(log_line.trim())
    }

    /// Requests a graceful drain; returns the `OK drained …` payload.
    pub fn drain(&mut self) -> Result<String, String> {
        self.request("DRAIN").map(|r| r.ok)
    }

    /// Fetches the status line (`state=… queue=… shed=…`).
    pub fn status(&mut self) -> Result<String, String> {
        self.request("QUERY status").map(|r| r.ok)
    }

    fn write_line(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("connection lost while sending: {e}"))
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Ok(line),
            Err(e) => Err(format!("connection lost while reading: {e}")),
        }
    }

    /// Delay for the `attempt`-th consecutive `BUSY`: the larger of the
    /// server's hint and `base << attempt`, capped, plus up to 50%
    /// jitter so retry storms decorrelate.
    fn backoff(&mut self, attempt: u32, hint_ms: u64) -> Duration {
        let base_ms = self.retry.base.as_millis() as u64;
        let cap_ms = self.retry.cap.as_millis() as u64;
        let exp = base_ms.saturating_mul(1u64 << attempt.min(16));
        let delay = exp.max(hint_ms).min(cap_ms).max(1);
        // xorshift64: cheap, deterministic per seed, good enough to
        // spread retry instants.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let jitter = self.rng % (delay / 2 + 1);
        Duration::from_millis(delay + jitter)
    }
}

fn strip_terminal<'a>(line: &'a str, prefix: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(prefix)?;
    if rest.is_empty() || rest.starts_with(' ') {
        Some(rest)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_prefixes_match_whole_words_only() {
        assert_eq!(strip_terminal("OK 3", "OK"), Some(" 3"));
        assert_eq!(strip_terminal("OK", "OK"), Some(""));
        assert_eq!(strip_terminal("OKAY 3", "OK"), None);
        assert_eq!(strip_terminal("BUSY 50", "BUSY"), Some(" 50"));
    }

    #[test]
    fn backoff_grows_caps_and_respects_the_hint() {
        let mut client_rng = 0x5eed_1e55u64 | 1;
        let mut backoff = |attempt: u32, hint: u64| {
            let base: u64 = 10;
            let cap: u64 = 500;
            let exp = base.saturating_mul(1u64 << attempt.min(16));
            let delay = exp.max(hint).min(cap).max(1);
            client_rng ^= client_rng << 13;
            client_rng ^= client_rng >> 7;
            client_rng ^= client_rng << 17;
            delay + client_rng % (delay / 2 + 1)
        };
        let d0 = backoff(0, 0);
        assert!((10..=15).contains(&d0), "base delay with jitter: {d0}");
        let d6 = backoff(6, 0);
        assert!((500..=750).contains(&d6), "capped delay: {d6}");
        let hinted = backoff(0, 120);
        assert!(hinted >= 120, "server hint is a floor: {hinted}");
    }
}
