//! SIGTERM-triggered graceful drain, without any signal-handling crate.
//!
//! The handler only sets a process-wide atomic flag — the one operation
//! that is async-signal-safe — and the server's engine loop polls it
//! between queue pops. Tests call [`request_shutdown`] directly; the
//! real signal path is exercised by the CI `serve` job (`kill -TERM`).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler (or [`request_shutdown`]); polled by the
/// engine loop. Process-wide: one resident server per process.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use core::ffi::c_int;
    use std::sync::atomic::Ordering;

    const SIGTERM: c_int = 15;
    const SIGINT: c_int = 2;

    extern "C" {
        // libc is already linked through std; `signal` is the one
        // binding we need, so a full FFI crate would be dead weight.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Only an atomic store: anything else is not async-signal-safe.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(c_int) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent). On non-unix
/// targets this is a no-op and only [`request_shutdown`] drains.
pub fn install_handler() {
    sys::install();
}

/// Whether a drain has been requested (signal or [`request_shutdown`]).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a graceful drain, exactly as SIGTERM would. In-process
/// server tests use this instead of raising a real signal.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears a pending shutdown request so the next `serve` run starts
/// clean. Called on server startup (and by tests between runs).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
