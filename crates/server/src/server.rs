//! The resident daemon: accept loop, connection threads, and the single
//! engine thread that owns the [`ConstraintSet`].
//!
//! Threading model — three layers, one owner:
//!
//! * The **accept loop** (spawned thread) polls a nonblocking listener
//!   and hands each connection its own thread.
//! * **Connection threads** parse request lines and `try_push` jobs onto
//!   the bounded [`IngestQueue`]; a full queue is answered `BUSY` right
//!   there, so overload never reaches the engine. Status queries are
//!   also answered here, from shared gauges, so the control plane stays
//!   responsive while the engine is busy (or paused).
//! * The **engine loop** (the thread that called [`serve`]) is the only
//!   toucher of the `ConstraintSet`, the violation report and the
//!   checkpoint rotation — crash-consistency needs no locking protocol
//!   because state, report and checkpoint writes are all serialized on
//!   this one thread.
//!
//! Replies flow back through per-connection [`ClientHandle`]s guarded by
//! a write timeout: a client that stops reading long enough for its
//! socket buffer to fill is disconnected, never allowed to stall the
//! engine.

use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rtic_core::{checkpoint, ConstraintSet, EncodingOptions, Parallelism, StepEvent, StepObserver};
use rtic_history::Transition;
use rtic_obs::MetricsRegistry;
use rtic_relation::{Catalog, Symbol, Update};
use rtic_resilience::{
    container, write_atomic, CheckpointPolicy, CheckpointTicker, FailAction, FailPlan, Rotation,
};
use rtic_temporal::{Constraint, TimePoint};

use crate::protocol::{self, Command};
use crate::queue::IngestQueue;
use crate::report::ServeReport;
use crate::signal;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP listener at this address (`host:port`).
    Tcp(String),
}

impl Listen {
    /// Parses `unix:<path>` or `tcp:<addr>`.
    pub fn parse(spec: &str) -> Result<Listen, String> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("bad --listen: unix: needs a socket path".into());
            }
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("bad --listen: tcp: needs host:port".into());
            }
            Ok(Listen::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "bad --listen `{spec}`: expected unix:<path> or tcp:<host:port>"
            ))
        }
    }
}

/// Everything `rtic serve` needs beyond the constraint fleet itself.
pub struct ServeConfig {
    /// The listening socket.
    pub listen: Listen,
    /// Ingest queue bound (backpressure threshold). Default 64.
    pub queue_capacity: usize,
    /// Retry hint sent with `BUSY` replies, in milliseconds.
    pub retry_ms: u64,
    /// A blocked reply write past this deadline disconnects the client.
    pub write_timeout: Duration,
    /// Checkpoint rotation primary path (enables checkpointing).
    pub checkpoint: Option<String>,
    /// Rotation generations to keep.
    pub checkpoint_keep: usize,
    /// Mid-run checkpoint cadence (steps and/or wall time).
    pub policy: CheckpointPolicy,
    /// Restore from the newest intact rotation entry on boot.
    pub resume: bool,
    /// Entity-key sharded data plane for the fleet.
    pub sharding: bool,
    /// Idle-shard eviction horizon (requires `sharding`).
    pub shard_evict: Option<u32>,
    /// Fleet worker threads.
    pub parallelism: Option<Parallelism>,
    /// Micro-batch bound: after popping a job the engine drains up to
    /// this many queued jobs and applies them as one ingestion unit —
    /// one checkpoint write, one metrics sample, and one `batch_ingest`
    /// event per batch instead of per step. 1 disables batching.
    pub batch: usize,
    /// Columnar (vectorized) plan execution for the fleet.
    pub vectorize: bool,
    /// Fault-injection plan for chaos drills.
    pub faults: FailPlan,
    /// Where to write the final violation report on drain.
    pub report_path: Option<String>,
    /// Where to write a metrics snapshot on drain (`.prom` for
    /// Prometheus text, JSON otherwise).
    pub metrics_path: Option<String>,
    /// Extra in-process drain trigger (tests); SIGTERM always works.
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl ServeConfig {
    /// A config with production defaults, listening on `listen`.
    pub fn new(listen: Listen) -> ServeConfig {
        ServeConfig {
            listen,
            queue_capacity: 64,
            retry_ms: 50,
            write_timeout: Duration::from_secs(5),
            checkpoint: None,
            checkpoint_keep: 3,
            policy: CheckpointPolicy::default(),
            resume: false,
            sharding: false,
            shard_evict: None,
            parallelism: None,
            batch: 1,
            vectorize: false,
            faults: FailPlan::default(),
            report_path: None,
            metrics_path: None,
            shutdown: None,
        }
    }
}

/// One live connection, either flavor of socket.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
            Conn::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }

    fn set_write_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(Some(timeout)),
            Conn::Unix(s) => s.set_write_timeout(Some(timeout)),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn bind(listen: &Listen) -> Result<Listener, String> {
        match listen {
            Listen::Tcp(addr) => TcpListener::bind(addr)
                .map(Listener::Tcp)
                .map_err(|e| format!("cannot listen on tcp:{addr}: {e}")),
            Listen::Unix(path) => {
                // A previous server kill -9'd mid-run leaves its socket
                // file behind; rebinding is the recovery path.
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                UnixListener::bind(path)
                    .map(Listener::Unix)
                    .map_err(|e| format!("cannot listen on unix:{}: {e}", path.display()))
            }
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// The write half of one connection. Shared between the connection
/// thread (BUSY/status replies) and the engine thread (step replies);
/// the mutex serializes them so reply lines never interleave.
pub(crate) struct ClientHandle {
    conn: Mutex<Conn>,
    alive: AtomicBool,
}

impl ClientHandle {
    /// Writes one reply line. A failed or timed-out write marks the
    /// client dead and shuts the socket down — a stalled reader must
    /// never wedge the engine. Returns whether the client is still up.
    fn write_line(&self, shared: &Shared, line: &str) -> bool {
        if !self.alive.load(Ordering::SeqCst) {
            return false;
        }
        let injected = matches!(
            shared.faults.check("serve.write"),
            Some(FailAction::IoError)
        );
        let mut conn = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let result = if injected {
            Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "injected write fault (failpoint `serve.write`)",
            ))
        } else {
            conn.write_all(line.as_bytes())
                .and_then(|()| conn.write_all(b"\n"))
                .and_then(|()| conn.flush())
        };
        match result {
            Ok(()) => true,
            Err(_) => {
                if self.alive.swap(false, Ordering::SeqCst) {
                    shared.disconnected.fetch_add(1, Ordering::SeqCst);
                }
                conn.shutdown();
                false
            }
        }
    }
}

enum JobCmd {
    Step(Transition),
    Tick(TimePoint),
}

struct Job {
    cmd: JobCmd,
    reply: Arc<ClientHandle>,
}

/// Gauges and flags shared by every thread of one server instance.
struct Shared {
    queue: IngestQueue<Job>,
    faults: FailPlan,
    /// Drain requested (SIGTERM, test flag, or a DRAIN command).
    draining: AtomicBool,
    /// Engine loop exited (cleanly or as a simulated crash): accept and
    /// connection threads must wind down.
    dead: AtomicBool,
    connections: AtomicUsize,
    disconnected: AtomicU64,
    accept_errors: AtomicU64,
    steps: AtomicU64,
    witnesses: AtomicU64,
    quarantined: AtomicUsize,
    last_checkpoint: Mutex<Option<Instant>>,
    /// Clients awaiting the `OK drained …` reply.
    drain_waiters: Mutex<Vec<Arc<ClientHandle>>>,
    retry_ms: u64,
}

impl Shared {
    fn status_line(&self) -> String {
        let state = if self.draining.load(Ordering::SeqCst) {
            "draining"
        } else {
            "running"
        };
        let quarantined = self.quarantined.load(Ordering::SeqCst);
        let verdict = if quarantined > 0 { "DEGRADED" } else { "OK" };
        let age = self
            .last_checkpoint
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|at| at.elapsed().as_millis().to_string())
            .unwrap_or_else(|| "-".to_string());
        format!(
            "{verdict} state={state} steps={} witnesses={} queue={}/{} peak={} shed={} conns={} disconnected={} ckpt_age_ms={age} quarantined={quarantined}",
            self.steps.load(Ordering::SeqCst),
            self.witnesses.load(Ordering::SeqCst),
            self.queue.depth(),
            self.queue.capacity(),
            self.queue.peak(),
            self.queue.shed(),
            self.connections.load(Ordering::SeqCst),
            self.disconnected.load(Ordering::SeqCst),
        )
    }

    fn checkpoint_age_ms(&self) -> Option<u64> {
        self.last_checkpoint
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|at| at.elapsed().as_millis() as u64)
    }
}

/// Runs the daemon until drained (exit code 0) or crashed by an
/// injected fault (error). Blocks the calling thread — it *is* the
/// engine thread.
pub fn serve(
    constraints: Vec<Constraint>,
    catalog: Arc<Catalog>,
    config: ServeConfig,
    out: &mut String,
) -> Result<i32, String> {
    let ServeConfig {
        listen,
        queue_capacity,
        retry_ms,
        write_timeout,
        checkpoint,
        checkpoint_keep,
        policy,
        resume,
        sharding,
        shard_evict,
        parallelism,
        batch,
        vectorize,
        faults,
        report_path,
        metrics_path,
        shutdown,
    } = config;
    signal::install_handler();
    if shutdown.is_none() {
        // A flag-driven (test) server must not clear a pending SIGTERM
        // aimed at a sibling instance in the same process.
        signal::reset();
    }
    let batch = batch.max(1);
    let options = EncodingOptions {
        vectorize,
        ..Default::default()
    };
    let rotation = checkpoint
        .as_ref()
        .map(|path| Rotation::new(path, checkpoint_keep));
    let mut registry = MetricsRegistry::new();

    // Boot-time recovery: newest intact rotation entry wins; corrupt
    // candidates are surfaced, and an empty rotation set starts fresh.
    let mut report = ServeReport::default();
    let mut restored_banner = None;
    let mut set = if resume {
        let rotation = rotation
            .as_ref()
            .ok_or("--resume requires --checkpoint (the rotation to recover from)")?;
        let outcome = rotation.recover();
        for (cand, why) in &outcome.rejected {
            registry.observe(&StepEvent::CheckpointFallback {
                path: cand.display().to_string(),
                detail: why.clone(),
            });
            let _ = writeln!(
                out,
                "checkpoint candidate `{}` rejected: {why}",
                cand.display()
            );
        }
        match outcome.restored {
            Some((found_path, sections, format)) => {
                let engine_sections: Vec<String> = sections
                    .iter()
                    .filter(|s| !ServeReport::is_section(s))
                    .cloned()
                    .collect();
                if let Some(section) = sections.iter().find(|s| ServeReport::is_section(s)) {
                    report = ServeReport::from_section(section).map_err(|e| {
                        format!("cannot resume from `{}`: {e}", found_path.display())
                    })?;
                }
                let set = checkpoint::restore_set_sharded(
                    constraints.iter().cloned(),
                    Arc::clone(&catalog),
                    options,
                    &engine_sections,
                    sharding,
                )
                .map_err(|e| format!("cannot resume from `{}`: {e}", found_path.display()))?;
                for section in &engine_sections {
                    if let Some(name) = section
                        .lines()
                        .find_map(|line| line.strip_prefix("constraint "))
                    {
                        registry.observe(&StepEvent::CheckpointRestore {
                            constraint: Symbol::intern(name),
                            bytes: section.len(),
                        });
                    }
                }
                restored_banner = Some((found_path, format, set.last_time()));
                set
            }
            None if outcome.rejected.is_empty() => {
                fresh_set(&constraints, &catalog, options, sharding)?
            }
            None => {
                return Err(
                    "cannot resume: every checkpoint candidate in the rotation set \
                     is corrupt or unreadable"
                        .to_string(),
                )
            }
        }
    } else {
        fresh_set(&constraints, &catalog, options, sharding)?
    };
    if let Some(horizon) = shard_evict {
        set.set_shard_eviction(horizon);
    }
    if let Some(par) = parallelism {
        set = set.with_parallelism(par);
    }
    for (name, nth) in faults.engine_panics() {
        if !set.arm_panic(&name, nth) {
            return Err(format!(
                "failpoint `engine-panic:{name}`: no such constraint in the fleet"
            ));
        }
    }
    let resume_cursor = restored_banner.as_ref().and_then(|(_, _, cursor)| *cursor);
    if let Some((path, format, cursor)) = &restored_banner {
        match cursor {
            Some(t) => {
                let _ = writeln!(out, "resumed from `{}` ({format}) at t={t}", path.display());
            }
            None => {
                let _ = writeln!(
                    out,
                    "resumed from `{}` ({format}) at the start of the stream",
                    path.display()
                );
            }
        }
    }

    let shared = Arc::new(Shared {
        queue: IngestQueue::new(queue_capacity),
        faults,
        draining: AtomicBool::new(false),
        dead: AtomicBool::new(false),
        connections: AtomicUsize::new(0),
        disconnected: AtomicU64::new(0),
        accept_errors: AtomicU64::new(0),
        steps: AtomicU64::new(report.transitions),
        witnesses: AtomicU64::new(report.witnesses),
        quarantined: AtomicUsize::new(set.health().quarantined),
        last_checkpoint: Mutex::new(None),
        drain_waiters: Mutex::new(Vec::new()),
        retry_ms,
    });

    let listener = Listener::bind(&listen)?;
    listener
        .set_nonblocking()
        .map_err(|e| format!("cannot configure listener: {e}"))?;
    match &listen {
        Listen::Unix(path) => {
            let _ = writeln!(out, "listening on unix:{}", path.display());
        }
        Listen::Tcp(addr) => {
            let _ = writeln!(out, "listening on tcp:{addr}");
        }
    }
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        accept_loop(listener, accept_shared, write_timeout);
    });

    let result = engine_loop(
        &mut set,
        &mut report,
        &mut registry,
        &shared,
        policy,
        batch,
        shutdown.as_ref(),
        report_path.as_deref(),
        metrics_path.as_deref(),
        rotation.as_ref(),
        resume_cursor,
        out,
    );
    // Clean exit or simulated crash, the accept loop must stop either
    // way (in-process drills re-bind the same socket on restart).
    shared.dead.store(true, Ordering::SeqCst);
    shared.queue.close();
    let _ = accept_thread.join();
    if result.is_ok() {
        if let Listen::Unix(path) = &listen {
            let _ = std::fs::remove_file(path);
        }
    }
    result
}

fn fresh_set(
    constraints: &[Constraint],
    catalog: &Arc<Catalog>,
    options: EncodingOptions,
    sharding: bool,
) -> Result<ConstraintSet, String> {
    Ok(
        ConstraintSet::with_options(constraints.iter().cloned(), Arc::clone(catalog), options)
            .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?
            .with_sharding(sharding),
    )
}

fn accept_loop(listener: Listener, shared: Arc<Shared>, write_timeout: Duration) {
    while !shared.dead.load(Ordering::SeqCst) && !shared.draining.load(Ordering::SeqCst) {
        match shared.faults.check("serve.accept") {
            Some(FailAction::IoError) => {
                // An injected accept failure: count it and keep serving,
                // exactly like a transient kernel-level accept error.
                shared.accept_errors.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Some(FailAction::Panic) => panic!("injected panic (failpoint `serve.accept`)"),
            _ => {}
        }
        match listener.accept() {
            Ok(conn) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    connection_loop(conn, shared, write_timeout);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                shared.accept_errors.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Dropping the listener stops accepting; a unix socket file is
    // removed by the engine thread on clean exit.
}

fn connection_loop(conn: Conn, shared: Arc<Shared>, write_timeout: Duration) {
    let _ = conn.set_read_timeout(Duration::from_millis(100));
    let _ = conn.set_write_timeout(write_timeout);
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let handle = Arc::new(ClientHandle {
        conn: Mutex::new(write_half),
        alive: AtomicBool::new(true),
    });
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let mut reader = io::BufReader::new(conn);
    let mut line = String::new();
    loop {
        if shared.dead.load(Ordering::SeqCst) || !handle.alive.load(Ordering::SeqCst) {
            break;
        }
        line.clear();
        // The read timeout doubles as the shutdown poll interval; a
        // partial line survives timeouts inside the BufReader + String.
        match read_line_with_timeouts(&mut reader, &mut line, &shared) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        if matches!(shared.faults.check("serve.read"), Some(FailAction::IoError)) {
            // Injected read fault: the connection dies as if the socket
            // broke mid-line.
            break;
        }
        let command = match protocol::parse_command(&line) {
            Ok(Some(command)) => command,
            Ok(None) => continue,
            Err(e) => {
                handle.write_line(&shared, &format!("{} {e}", protocol::ERR_PREFIX));
                continue;
            }
        };
        match command {
            Command::Update(tr) => enqueue(&shared, &handle, JobCmd::Step(tr)),
            Command::Tick(t) => enqueue(&shared, &handle, JobCmd::Tick(t)),
            Command::Status => {
                handle.write_line(&shared, &shared.status_line());
            }
            Command::Ping => {
                handle.write_line(&shared, "OK pong");
            }
            Command::Pause => {
                shared.queue.set_paused(true);
                handle.write_line(&shared, "OK paused");
            }
            Command::Resume => {
                // Ack before releasing the queue: once the engine wakes it
                // acks held updates on this same connection, and the
                // control reply must deterministically precede them.
                handle.write_line(&shared, "OK resumed");
                shared.queue.set_paused(false);
            }
            Command::Drain => {
                shared
                    .drain_waiters
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Arc::clone(&handle));
                shared.draining.store(true, Ordering::SeqCst);
                shared.queue.close();
            }
        }
    }
    handle.alive.store(false, Ordering::SeqCst);
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}

/// `read_line` that treats timeouts as "poll shutdown and keep going".
fn read_line_with_timeouts(
    reader: &mut io::BufReader<Conn>,
    line: &mut String,
    shared: &Shared,
) -> io::Result<usize> {
    use std::io::BufRead as _;
    loop {
        match reader.read_line(line) {
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if shared.dead.load(Ordering::SeqCst) {
                    return Ok(0);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn enqueue(shared: &Shared, handle: &Arc<ClientHandle>, cmd: JobCmd) {
    let job = Job {
        cmd,
        reply: Arc::clone(handle),
    };
    if shared.queue.try_push(job).is_err() {
        // Backpressure: the update is rejected, never buffered. The
        // client owns the retry (the bundled client backs off + jitters).
        handle.write_line(
            shared,
            &format!("{} {}", protocol::BUSY_PREFIX, shared.retry_ms),
        );
    }
}

/// The engine loop: pops jobs, steps the fleet, reports, checkpoints.
/// Returns the process exit code (0 after a graceful drain).
#[allow(clippy::too_many_arguments)]
fn engine_loop(
    set: &mut ConstraintSet,
    report: &mut ServeReport,
    registry: &mut MetricsRegistry,
    shared: &Arc<Shared>,
    policy: CheckpointPolicy,
    batch: usize,
    shutdown: Option<&Arc<AtomicBool>>,
    report_path: Option<&str>,
    metrics_path: Option<&str>,
    rotation: Option<&Rotation>,
    resume_cursor: Option<TimePoint>,
    out: &mut String,
) -> Result<i32, String> {
    let mut ticker = CheckpointTicker::new(policy);
    let mut replay_skipped = 0u64;
    let drain_started;
    loop {
        let external = signal::shutdown_requested()
            || shutdown.is_some_and(|flag| flag.load(Ordering::SeqCst));
        if external && !shared.draining.load(Ordering::SeqCst) {
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue.close();
        }
        let job = shared.queue.pop_timeout(Duration::from_millis(25));
        match job {
            Some(job) => {
                // Micro-batching: whatever queued up behind the first
                // job (up to the knob) is absorbed as one ingestion
                // unit, amortizing the checkpoint write, metrics sample
                // and reply flushes across the batch.
                let mut jobs = vec![job];
                while jobs.len() < batch {
                    match shared.queue.try_pop() {
                        Some(next) => jobs.push(next),
                        None => break,
                    }
                }
                process_batch(
                    jobs,
                    batch > 1,
                    set,
                    report,
                    registry,
                    shared,
                    rotation,
                    &mut ticker,
                    resume_cursor,
                    &mut replay_skipped,
                )?;
            }
            None => {
                if shared.draining.load(Ordering::SeqCst) && shared.queue.depth() == 0 {
                    drain_started = Instant::now();
                    break;
                }
            }
        }
    }
    // Drain: the queue is closed (no new pushes) and empty. The engine
    // settles — final checkpoint, report, metrics — then acks DRAIN.
    if replay_skipped > 0 {
        let _ = writeln!(
            out,
            "skipped {replay_skipped} transition(s) already covered by the checkpoint"
        );
    }
    if let Some(rotation) = rotation {
        let bytes = write_server_checkpoint(set, report, rotation, shared, registry)?;
        let _ = writeln!(
            out,
            "checkpoint written to {} ({bytes} bytes)",
            rotation.primary().display()
        );
    }
    let drain_ms = drain_started.elapsed().as_millis() as u64;
    emit_serve_sample(registry, shared, Some(drain_ms));
    if let Some(path) = report_path {
        let mut text = String::new();
        for line in &report.violations {
            let _ = writeln!(text, "{line}");
        }
        write_atomic(Path::new(path), text.as_bytes())
            .map_err(|e| format!("cannot write report `{path}`: {e}"))?;
        let _ = writeln!(out, "report written to {path}");
    }
    if let Some(path) = metrics_path {
        let rendered = if path.ends_with(".prom") {
            registry.render_prometheus()
        } else {
            registry.render_json()
        };
        write_atomic(Path::new(path), rendered.as_bytes())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    let drained_line = format!(
        "{} drained steps={} witnesses={} violated_states={} drain_ms={drain_ms}",
        protocol::OK_PREFIX,
        report.transitions,
        report.witnesses,
        report.violated_states,
    );
    for waiter in shared
        .drain_waiters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        waiter.write_line(shared, &drained_line);
    }
    let _ = writeln!(
        out,
        "drained: {} transition(s), {} violation witness(es) over {} state(s)",
        report.transitions, report.witnesses, report.violated_states
    );
    for (name, detail) in set.quarantined() {
        let _ = writeln!(out, "quarantined `{name}`: {detail}");
    }
    let dropped = shared.disconnected.load(Ordering::SeqCst);
    if dropped > 0 {
        let _ = writeln!(out, "disconnected {dropped} slow client(s)");
    }
    Ok(0)
}

/// Steps a drained micro-batch of jobs as one ingestion unit.
///
/// Per-job semantics (fault checks, replay-skip, step errors, reply
/// lines) match the line-at-a-time path exactly; what the batch
/// amortizes is the bookkeeping around the steps — at most one
/// checkpoint write, one metrics sample, and (when `micro_batching`)
/// one `batch_ingest` event per batch. Replies are deferred until
/// after the batch checkpoint so checkpoint-before-ack still holds:
/// no client sees OK for a step a crash could lose without also
/// un-acking it.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    jobs: Vec<Job>,
    micro_batching: bool,
    set: &mut ConstraintSet,
    report: &mut ServeReport,
    registry: &mut MetricsRegistry,
    shared: &Arc<Shared>,
    rotation: Option<&Rotation>,
    ticker: &mut CheckpointTicker,
    resume_cursor: Option<TimePoint>,
    replay_skipped: &mut u64,
) -> Result<(), String> {
    let mut replies: Vec<(Arc<ClientHandle>, Vec<String>)> = Vec::with_capacity(jobs.len());
    let mut stepped_lines = 0usize;
    let mut stepped_tuples = 0usize;
    let mut ticked = false;
    for job in jobs {
        match shared.faults.check("serve.step") {
            Some(FailAction::Abort) => {
                // Simulated kill -9: no reply, no checkpoint, no
                // cleanup. Earlier batch entries were applied but never
                // acked — exactly the window the resume replay covers.
                return Err("injected crash (failpoint `serve.step`)".into());
            }
            Some(FailAction::Panic) => panic!("injected panic (failpoint `serve.step`)"),
            Some(FailAction::IoError) => {
                replies.push((
                    job.reply,
                    vec![format!("{} injected step fault", protocol::ERR_PREFIX)],
                ));
                continue;
            }
            _ => {}
        }
        let (time, update) = match &job.cmd {
            JobCmd::Step(tr) => (tr.time, tr.update.clone()),
            JobCmd::Tick(t) => (*t, Update::new()),
        };
        // Replay window: a resumed server acks (without re-checking)
        // transitions the checkpoint already covers, so clients can
        // re-stream a log from the top after a crash.
        if let Some(cursor) = resume_cursor {
            if time <= cursor {
                *replay_skipped += 1;
                replies.push((job.reply, vec![format!("{} replayed", protocol::OK_PREFIX)]));
                continue;
            }
        }
        let reports = match set.step_observed(time, &update, registry) {
            Ok(reports) => reports,
            Err(e) => {
                replies.push((
                    job.reply,
                    vec![format!("{} at {time}: {e}", protocol::ERR_PREFIX)],
                ));
                continue;
            }
        };
        stepped_lines += 1;
        stepped_tuples += update.len();
        let mut violations = Vec::new();
        let mut witnesses = 0usize;
        for step_report in &reports {
            if !step_report.ok() {
                witnesses += step_report.violation_count();
                violations.push(step_report.to_string());
            }
        }
        report.record_step(&violations, witnesses);
        shared.steps.store(report.transitions, Ordering::SeqCst);
        shared.witnesses.store(report.witnesses, Ordering::SeqCst);
        shared
            .quarantined
            .store(set.health().quarantined, Ordering::SeqCst);
        if ticker.step_completed() {
            ticked = true;
        }
        let mut lines: Vec<String> = violations
            .iter()
            .map(|line| format!("{}{line}", protocol::VIOL_PREFIX))
            .collect();
        lines.push(format!("{} {witnesses}", protocol::OK_PREFIX));
        replies.push((job.reply, lines));
    }
    if micro_batching && stepped_lines > 0 {
        registry.observe(&StepEvent::BatchIngest {
            lines: stepped_lines,
            tuples: stepped_tuples,
        });
    }
    // Checkpoint *before* acking: once any client sees OK, its step is
    // durable at the configured cadence. The ticker advanced per step,
    // but writes coalesce to one per batch.
    if let Some(rotation) = rotation {
        if ticked {
            write_server_checkpoint(set, report, rotation, shared, registry)?;
        }
    }
    emit_serve_sample(registry, shared, None);
    for (reply, lines) in replies {
        for line in lines {
            reply.write_line(shared, &line);
        }
    }
    Ok(())
}

/// Seals engine sections plus the serve-report section into one
/// container and writes it through the rotation (site
/// `serve.checkpoint`, so drills can fault server checkpoints without
/// touching batch runs).
fn write_server_checkpoint(
    set: &ConstraintSet,
    report: &ServeReport,
    rotation: &Rotation,
    shared: &Shared,
    registry: &mut MetricsRegistry,
) -> Result<usize, String> {
    let sections: Vec<(Symbol, String)> = checkpoint::save_set(set);
    for (name, text) in &sections {
        registry.observe(&StepEvent::CheckpointSave {
            constraint: *name,
            bytes: text.len(),
        });
    }
    let report_section = report.to_section();
    let sealed = container::seal(
        sections
            .iter()
            .map(|(_, text)| text.as_str())
            .chain(std::iter::once(report_section.as_str())),
    );
    rotation
        .write(&sealed, &shared.faults, "serve.checkpoint")
        .map_err(|e| format!("cannot write checkpoint: {e}"))?;
    *shared
        .last_checkpoint
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
    Ok(sealed.len())
}

fn emit_serve_sample(registry: &mut MetricsRegistry, shared: &Shared, drain_ms: Option<u64>) {
    registry.observe(&StepEvent::ServeSample {
        queue_depth: shared.queue.depth(),
        queue_capacity: shared.queue.capacity(),
        queue_peak: shared.queue.peak(),
        shed: shared.queue.shed(),
        connections: shared.connections.load(Ordering::SeqCst),
        disconnected: shared.disconnected.load(Ordering::SeqCst),
        last_checkpoint_age_ms: shared.checkpoint_age_ms(),
        drain_ms,
    });
}
