//! The bounded ingest queue behind `rtic serve`.
//!
//! Connection threads [`IngestQueue::try_push`] parsed commands; the
//! single engine thread [`IngestQueue::pop_timeout`]s them. The bound is
//! the backpressure contract: a full queue rejects the push (the caller
//! replies `BUSY <retry-after-ms>`) instead of buffering without limit,
//! so server memory stays proportional to the queue capacity no matter
//! how fast clients write.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Rejected push: the queue was at capacity. Carries nothing — the item
/// stays with the caller, who owes the client a `BUSY` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Inner<T> {
    items: VecDeque<T>,
    /// High-water mark of `items.len()` since the queue was built.
    peak: usize,
    /// Pushes rejected because the queue was full.
    shed: u64,
    /// Closed queues reject pushes; pops drain what remains.
    closed: bool,
    /// Paused queues hold their items: pops block (until timeout) even
    /// when items are queued. Test hook for deterministic flooding.
    paused: bool,
}

/// A bounded multi-producer single-consumer queue with explicit
/// backpressure (see the module docs).
pub struct IngestQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> IngestQueue<T> {
    /// A queue holding at most `capacity` items (at least one).
    pub fn new(capacity: usize) -> IngestQueue<T> {
        IngestQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                peak: 0,
                shed: 0,
                closed: false,
                paused: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Ignore poisoning: the queue holds plain data and every mutation
    /// below keeps the invariants, so a panicking peer thread must not
    /// wedge ingest.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `item`, or rejects it when the queue is at capacity or
    /// closed. A rejection counts toward [`IngestQueue::shed`].
    pub fn try_push(&self, item: T) -> Result<(), QueueFull> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            inner.shed += 1;
            return Err(QueueFull);
        }
        inner.items.push_back(item);
        inner.peak = inner.peak.max(inner.items.len());
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, waiting up to `timeout` for one to
    /// arrive. `None` on timeout, or immediately when the queue is
    /// closed and empty. While paused, queued items are held back.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if !inner.paused || inner.closed {
                if let Some(item) = inner.items.pop_front() {
                    return Some(item);
                }
            }
            if inner.closed {
                return None;
            }
            let (next, waited) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = next;
            if waited.timed_out() {
                if !inner.paused || inner.closed {
                    return inner.items.pop_front();
                }
                return None;
            }
        }
    }

    /// Dequeues the oldest item without waiting: `None` when the queue
    /// is empty (or paused and still open). The engine's micro-batcher
    /// uses this to drain whatever is already queued behind the first
    /// popped job without sleeping on the condvar.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.lock();
        if inner.paused && !inner.closed {
            return None;
        }
        inner.items.pop_front()
    }

    /// Stops accepting pushes; pops drain what is already queued. Wakes
    /// every waiter. Draining a closed queue un-pauses it.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        inner.paused = false;
        drop(inner);
        self.ready.notify_all();
    }

    /// Whether [`IngestQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Pauses (or resumes) consumption — see the `paused` field docs.
    pub fn set_paused(&self, paused: bool) {
        let mut inner = self.lock();
        inner.paused = paused && !inner.closed;
        drop(inner);
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// High-water mark of the depth since construction.
    pub fn peak(&self) -> usize {
        self.lock().peak
    }

    /// Pushes rejected because the queue was full or closed.
    pub fn shed(&self) -> u64 {
        self.lock().shed
    }

    /// The bound this queue enforces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn bound_is_enforced_and_shed_is_counted() {
        let q = IngestQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(QueueFull));
        assert_eq!(q.try_push(4), Err(QueueFull));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.shed(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert!(q.try_push(5).is_ok());
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(5));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = IngestQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(QueueFull));
    }

    #[test]
    fn close_rejects_pushes_and_drains_the_rest() {
        let q = IngestQueue::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.try_push(3), Err(QueueFull));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        // Closed + empty: no wait, immediate None.
        assert_eq!(q.pop_timeout(Duration::from_secs(60)), None);
    }

    #[test]
    fn try_pop_never_waits_and_respects_pause() {
        let q = IngestQueue::new(4);
        assert_eq!(q.try_pop(), None);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.set_paused(true);
        assert_eq!(q.try_pop(), None, "paused queues hold their items");
        q.set_paused(false);
        assert_eq!(q.try_pop(), Some(1));
        q.close();
        assert_eq!(q.try_pop(), Some(2), "closed queues still drain");
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn pause_holds_items_until_resume() {
        let q = IngestQueue::new(4);
        q.set_paused(true);
        q.try_push(7).ok();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
        assert_eq!(q.depth(), 1);
        q.set_paused(false);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Some(7));
    }

    #[test]
    fn close_wakes_a_blocked_popper() {
        let q = Arc::new(IngestQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().expect("popper thread"), None);
    }
}
