//! The `rtic serve` line protocol.
//!
//! One UTF-8 line per request, one or more lines per reply. Every reply
//! sequence ends with exactly one terminal line (`OK …`, `BUSY …` or
//! `ERR …`); violation witnesses precede the terminal line as `VIOL `
//! prefixed lines, each payload byte-identical to the line `rtic check`
//! prints for the same violation.
//!
//! ```text
//! → UPDATE @5 +reserved("ann")      (or the bare log line)
//! ← VIOL @5 VIOLATION unconfirmed x1: {p=ann}
//! ← OK 1
//! → TICK 7                          (clock advance, empty update)
//! ← OK 0
//! → QUERY status
//! ← OK state=running steps=12 queue=0/64 peak=3 shed=0 conns=1 …
//! → DRAIN
//! ← OK drained steps=12 …           (after flush + final checkpoint)
//! ```

use rtic_history::log::parse_log;
use rtic_history::Transition;
use rtic_temporal::TimePoint;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `UPDATE <log-line>` (or a bare `@time …` log line): one
    /// transition to feed the fleet.
    Update(Transition),
    /// `TICK <time>`: advance the clock with an empty update, so
    /// time-gated constraints fire without new tuples.
    Tick(TimePoint),
    /// `QUERY status`: report server gauges without touching the engine.
    Status,
    /// `DRAIN`: stop accepting, flush the queue, checkpoint, exit 0.
    Drain,
    /// `PING`: liveness probe.
    Ping,
    /// `PAUSE`: hold queued updates (deterministic-backpressure hook).
    Pause,
    /// `RESUME`: undo `PAUSE`.
    Resume,
}

/// Reply line prefix for violation witnesses.
pub const VIOL_PREFIX: &str = "VIOL ";
/// Terminal reply prefix for success.
pub const OK_PREFIX: &str = "OK";
/// Terminal reply prefix for backpressure rejection; the suffix is the
/// suggested retry delay in milliseconds.
pub const BUSY_PREFIX: &str = "BUSY";
/// Terminal reply prefix for errors.
pub const ERR_PREFIX: &str = "ERR";

/// Parses one request line. Blank lines and `#` comments parse to
/// `None` so a raw `.rticlog` file can be streamed verbatim.
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (trimmed, ""),
    };
    match verb {
        "UPDATE" => parse_transition(rest).map(|t| Some(Command::Update(t))),
        _ if verb.starts_with('@') => parse_transition(trimmed).map(|t| Some(Command::Update(t))),
        "TICK" => {
            let t: u64 = rest
                .parse()
                .map_err(|e| format!("bad TICK time `{rest}`: {e}"))?;
            Ok(Some(Command::Tick(TimePoint(t))))
        }
        "QUERY" => match rest {
            "status" | "" => Ok(Some(Command::Status)),
            other => Err(format!("unknown QUERY `{other}` (try `QUERY status`)")),
        },
        "DRAIN" => Ok(Some(Command::Drain)),
        "PING" => Ok(Some(Command::Ping)),
        "PAUSE" => Ok(Some(Command::Pause)),
        "RESUME" => Ok(Some(Command::Resume)),
        other => Err(format!(
            "unknown command `{other}` (UPDATE/TICK/QUERY/DRAIN/PING)"
        )),
    }
}

fn parse_transition(text: &str) -> Result<Transition, String> {
    if text.is_empty() {
        return Err("UPDATE needs a log line (`@time +rel(…) -rel(…)`)".into());
    }
    let mut transitions = parse_log(text).map_err(|e| format!("bad update: {e}"))?;
    match (transitions.pop(), transitions.pop()) {
        (Some(t), None) => Ok(t),
        _ => Err("UPDATE takes exactly one log line".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_bare_log_lines_parse_alike() {
        let a = parse_command("UPDATE @3 +r(\"x\")").unwrap().unwrap();
        let b = parse_command("@3 +r(\"x\")").unwrap().unwrap();
        assert_eq!(a, b);
        let Command::Update(t) = a else {
            panic!("expected Update")
        };
        assert_eq!(t.time, TimePoint(3));
    }

    #[test]
    fn control_commands_parse() {
        assert_eq!(
            parse_command("TICK 9").unwrap(),
            Some(Command::Tick(TimePoint(9)))
        );
        assert_eq!(
            parse_command("QUERY status").unwrap(),
            Some(Command::Status)
        );
        assert_eq!(parse_command("QUERY").unwrap(), Some(Command::Status));
        assert_eq!(parse_command("DRAIN").unwrap(), Some(Command::Drain));
        assert_eq!(parse_command("PING").unwrap(), Some(Command::Ping));
        assert_eq!(parse_command("PAUSE").unwrap(), Some(Command::Pause));
        assert_eq!(parse_command("RESUME").unwrap(), Some(Command::Resume));
    }

    #[test]
    fn blanks_and_comments_are_skipped() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("   ").unwrap(), None);
        assert_eq!(parse_command("# header").unwrap(), None);
    }

    #[test]
    fn junk_is_rejected_with_context() {
        assert!(parse_command("FROB")
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse_command("TICK soon").unwrap_err().contains("bad TICK"));
        assert!(parse_command("UPDATE").unwrap_err().contains("log line"));
        assert!(parse_command("QUERY blah")
            .unwrap_err()
            .contains("unknown QUERY"));
    }
}
