//! # rtic-server — a crash-safe resident monitoring daemon
//!
//! The paper frames integrity constraints as something a *running*
//! system checks against a live update stream; this crate is that
//! runtime shape. `rtic serve` loads a constraint catalog, listens on a
//! unix or TCP socket speaking a line protocol
//! ([`protocol`]: `UPDATE`/`TICK`/`QUERY`/`DRAIN`), and feeds a
//! [`rtic_core::ConstraintSet`] through a bounded ingest queue.
//!
//! Robustness is the headline:
//!
//! * **Backpressure, never unbounded buffering** — a full queue answers
//!   `BUSY <retry-after-ms>` ([`queue`]); the bundled [`Client`]
//!   retries with capped exponential backoff + jitter; clients that
//!   stall past the write timeout are disconnected.
//! * **Crash safety** — periodic checkpoints seal engine state *and*
//!   the violation report into one checksummed container ([`report`]),
//!   so a kill -9'd server restarted with `--resume` reproduces a
//!   byte-identical final report.
//! * **Graceful drain** — SIGTERM or `DRAIN` stops accepting, flushes
//!   the queue, writes a final checkpoint, and exits 0 ([`signal`]).
//! * **Deterministic chaos** — named failpoints (`serve.accept`,
//!   `serve.read`, `serve.step`, `serve.write`, `serve.checkpoint`)
//!   inject faults into every server I/O path.
//!
//! This crate allows `unsafe` in exactly one place: the two-line
//! SIGTERM handler FFI in [`signal`] (libc is already linked through
//! std; a signal-handling dependency would be dead weight).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod protocol;
pub mod queue;
pub mod report;
pub mod server;
pub mod signal;

pub use client::{Client, Reply, RetryPolicy};
pub use protocol::Command;
pub use queue::{IngestQueue, QueueFull};
pub use report::ServeReport;
pub use server::{serve, Listen, ServeConfig};
