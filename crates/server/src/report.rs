//! The server's violation report, checkpointed alongside engine state.
//!
//! `rtic serve` must produce a final report byte-identical to batch
//! `rtic check` even when it is kill -9'd and resumed. That only works
//! if the report travels *inside* the checkpoint: engine state and the
//! violations it has already reported are sealed into the same
//! checksummed container, so a crash can never persist one without the
//! other. On resume the section is restored with the engines and the
//! report continues from exactly the transition the cursor covers.
//!
//! The section rides in the container as an extra member. The container
//! splits its payload back into sections on `rtic-checkpoint v1` magic
//! lines, so the report section leads with that magic too; its second
//! line is the serve-report tag. Engine restore matches sections by
//! their `constraint <name>` line and ignores this one (its lines carry
//! no such prefix).

use std::fmt::Write as _;

use rtic_resilience::container::MAGIC_V1;

/// Tag line (right after the v1 magic) identifying a serve-report
/// section; bump the version when the layout changes.
pub const SECTION_HEADER: &str = "rtic-serve-report v1";

/// Violations reported so far plus the stream counters that the final
/// summary and status replies are computed from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Violation lines in report order, each byte-identical to the line
    /// `rtic check` prints (`{time} VIOLATION {name} x{n}: {bindings}`).
    pub violations: Vec<String>,
    /// Transitions the engine has fully processed.
    pub transitions: u64,
    /// Total violation witnesses across all steps.
    pub witnesses: u64,
    /// Steps with at least one witness.
    pub violated_states: u64,
}

impl ServeReport {
    /// Records one processed step's outcome.
    pub fn record_step(&mut self, step_violations: &[String], witnesses: usize) {
        self.transitions += 1;
        self.witnesses += witnesses as u64;
        if !step_violations.is_empty() {
            self.violated_states += 1;
        }
        self.violations.extend_from_slice(step_violations);
    }

    /// Serializes the report as one checkpoint-container section.
    pub fn to_section(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_V1}");
        let _ = writeln!(out, "{SECTION_HEADER}");
        let _ = writeln!(out, "transitions {}", self.transitions);
        let _ = writeln!(out, "witnesses {}", self.witnesses);
        let _ = writeln!(out, "violated-states {}", self.violated_states);
        for line in &self.violations {
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Whether `section` is a serve-report section (vs. engine state).
    pub fn is_section(section: &str) -> bool {
        let mut lines = section.lines();
        lines.next().map(str::trim) == Some(MAGIC_V1)
            && lines.next().map(str::trim) == Some(SECTION_HEADER)
    }

    /// Restores a report from its section text.
    pub fn from_section(section: &str) -> Result<ServeReport, String> {
        let mut lines = section.lines();
        if lines.next().map(str::trim) != Some(MAGIC_V1)
            || lines.next().map(str::trim) != Some(SECTION_HEADER)
        {
            return Err(format!("not a `{SECTION_HEADER}` section"));
        }
        let mut report = ServeReport::default();
        let counter = |line: &str, key: &str| -> Result<Option<u64>, String> {
            match line.strip_prefix(key).map(str::trim) {
                Some(v) => v
                    .parse()
                    .map(Some)
                    .map_err(|e| format!("bad report field `{key}`: {e}")),
                None => Ok(None),
            }
        };
        for line in lines {
            if let Some(n) = counter(line, "transitions ")? {
                report.transitions = n;
            } else if let Some(n) = counter(line, "witnesses ")? {
                report.witnesses = n;
            } else if let Some(n) = counter(line, "violated-states ")? {
                report.violated_states = n;
            } else if !line.trim().is_empty() {
                report.violations.push(line.to_string());
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_section_format() {
        let mut report = ServeReport::default();
        report.record_step(&[], 0);
        report.record_step(
            &[
                "@4 VIOLATION unconfirmed x1: {p=ann}".to_string(),
                "@4 VIOLATION reconfirm x1: {p=bo}".to_string(),
            ],
            2,
        );
        let section = report.to_section();
        assert!(ServeReport::is_section(&section));
        let restored = ServeReport::from_section(&section).unwrap();
        assert_eq!(restored, report);
        assert_eq!(restored.transitions, 2);
        assert_eq!(restored.witnesses, 2);
        assert_eq!(restored.violated_states, 1);
    }

    #[test]
    fn engine_sections_are_not_mistaken_for_reports() {
        let engine = "rtic-checkpoint v1\nconstraint unconfirmed\n";
        assert!(!ServeReport::is_section(engine));
        assert!(ServeReport::from_section(engine).is_err());
    }

    #[test]
    fn report_lines_never_collide_with_engine_section_matching() {
        // Engine restore claims sections by a `constraint <name>` line;
        // no line this section emits may start with that prefix.
        let mut report = ServeReport::default();
        report.record_step(&["@1 VIOLATION c x1: {p=a}".to_string()], 1);
        assert!(!report
            .to_section()
            .lines()
            .any(|l| l.starts_with("constraint ")));
    }
}
