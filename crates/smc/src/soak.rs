//! Soak-mode sampling: every sample drives a live `rtic serve` daemon.
//!
//! The daemon runs in-process on its own thread (same engine the real
//! binary runs), listening on a per-sample unix socket. The sample's
//! history is streamed update-by-update through the wire protocol, then
//! drained; the daemon's final report file — byte-identical to batch
//! `rtic check` output by the server's checkpointed-report design — is
//! the sample's outcome. Every soak sample is cross-checked against the
//! sequential batch run of the same history, so a protocol or resume bug
//! surfaces as a mismatch in the SMC artifact, not as a skewed estimate.
//!
//! Crash-resume drills ride on the same path: forwarded failpoints kill
//! the daemon mid-sample, and a `--resume` rerun boots each sample's
//! daemon from its per-sample checkpoint, re-streams, and must converge
//! on the identical report.

use std::path::{Path, PathBuf};
use std::time::Duration;

use rtic_history::log::format_log;
use rtic_resilience::FailPlan;
use rtic_server::{serve, Client, Listen, ServeConfig};
use rtic_workload::Generated;

/// Where one soak sample keeps its socket, checkpoint, and report.
#[derive(Clone, Debug)]
pub struct SoakPaths {
    /// Per-sample working directory.
    pub dir: PathBuf,
    /// Sample tag (`s<i>`), the file-name stem.
    pub tag: String,
}

impl SoakPaths {
    /// Socket path.
    pub fn sock(&self) -> PathBuf {
        self.dir.join(format!("{}.sock", self.tag))
    }

    /// Checkpoint rotation primary path.
    pub fn checkpoint(&self) -> PathBuf {
        self.dir.join(format!("{}.ckpt", self.tag))
    }

    /// Final report path.
    pub fn report(&self) -> PathBuf {
        self.dir.join(format!("{}.report", self.tag))
    }
}

/// One soak sample's configuration.
pub struct SoakSample<'a> {
    /// The generated history to stream.
    pub gen: &'a Generated,
    /// File locations for this sample.
    pub paths: SoakPaths,
    /// Boot the daemon from the sample's checkpoint if one exists.
    pub resume: bool,
    /// Failpoint spec forwarded to the daemon (chaos drills).
    pub failpoints: Option<String>,
    /// Run the daemon's fleet with the sharded data plane.
    pub sharding: bool,
}

/// Outcome of a completed (drained) soak sample.
pub struct SoakOutcome {
    /// Violation lines from the daemon's final report, byte-identical to
    /// batch `rtic check` output.
    pub lines: Vec<String>,
    /// Whether the daemon resumed from a checkpoint this incarnation.
    pub resumed: bool,
}

/// Streams one sample through a live serve daemon.
///
/// On daemon death mid-stream (injected faults, crash) the daemon thread's
/// error is surfaced as `Err`; the caller may retry with `resume: true`
/// once the cause is cleared — the per-sample checkpoint carries both
/// engine state and the already-reported violations.
pub fn run_soak(sample: SoakSample<'_>) -> Result<SoakOutcome, String> {
    std::fs::create_dir_all(&sample.paths.dir).map_err(|e| {
        format!(
            "cannot create soak dir `{}`: {e}",
            sample.paths.dir.display()
        )
    })?;
    let sock = sample.paths.sock();
    std::fs::remove_file(&sock).ok();
    let resume = sample.resume && sample.paths.checkpoint().exists();

    let mut config = ServeConfig::new(Listen::Unix(sock.clone()));
    config.checkpoint = Some(sample.paths.checkpoint().display().to_string());
    config.policy.every_steps = Some(1);
    config.resume = resume;
    config.sharding = sample.sharding;
    config.report_path = Some(sample.paths.report().display().to_string());
    if let Some(spec) = &sample.failpoints {
        config.faults = FailPlan::parse(spec).map_err(|e| format!("bad failpoints: {e}"))?;
    }

    let constraints = sample.gen.constraints.clone();
    let catalog = std::sync::Arc::clone(&sample.gen.catalog);
    let daemon = std::thread::spawn(move || {
        let mut out = String::new();
        let code = serve(constraints, catalog, config, &mut out);
        (code, out)
    });

    let stream = || -> Result<(), String> {
        let mut client = Client::connect_unix_retry(&sock, Duration::from_secs(10))?;
        for line in format_log(&sample.gen.transitions).lines() {
            if line.is_empty() {
                continue;
            }
            client.send_update(line)?;
        }
        client.drain()?;
        Ok(())
    };
    let streamed = stream();

    let (code, out) = daemon
        .join()
        .map_err(|_| "soak daemon panicked".to_string())?;
    match (streamed, code) {
        (Ok(()), Ok(0)) => {}
        (_, Err(e)) => return Err(format!("soak daemon failed: {e}")),
        (Err(e), _) => return Err(format!("soak stream failed: {e}")),
        (Ok(()), Ok(code)) => return Err(format!("soak daemon exited with code {code}: {out}")),
    }

    let lines = read_report(&sample.paths.report())?;
    Ok(SoakOutcome {
        lines,
        resumed: resume,
    })
}

/// Reads a drained report file back as violation lines.
pub fn read_report(path: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read soak report `{}`: {e}", path.display()))?;
    Ok(text.lines().map(str::to_string).collect())
}

/// Removes a sample's scratch files (socket, checkpoint rotation, report).
pub fn cleanup(paths: &SoakPaths, checkpoint_keep: usize) {
    std::fs::remove_file(paths.sock()).ok();
    std::fs::remove_file(paths.report()).ok();
    let primary = paths.checkpoint();
    std::fs::remove_file(&primary).ok();
    for generation in 1..=checkpoint_keep {
        std::fs::remove_file(PathBuf::from(format!("{}.{generation}", primary.display()))).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_batch, Backend};
    use rtic_workload::{library, ScenarioParams};

    fn scratch(tag: &str) -> SoakPaths {
        SoakPaths {
            dir: std::env::temp_dir().join(format!("rtic-smc-test-{}", std::process::id())),
            tag: tag.to_string(),
        }
    }

    #[test]
    fn soak_report_is_byte_identical_to_batch_check() {
        let params = ScenarioParams {
            steps: 40,
            entities: 10,
            events_per_step: 3,
            violation_rate: 0.2,
            seed: 5,
        };
        let gen = library::find("access").unwrap().generate(&params);
        let batch = run_batch(&gen, Backend::Sequential).unwrap();
        assert!(!batch.is_empty(), "seed must inject violations");
        let paths = scratch("soak-eq");
        let outcome = run_soak(SoakSample {
            gen: &gen,
            paths: paths.clone(),
            resume: false,
            failpoints: None,
            sharding: false,
        })
        .unwrap();
        cleanup(&paths, 3);
        assert!(!outcome.resumed);
        assert_eq!(outcome.lines, batch);
    }

    #[test]
    fn killed_daemon_resumes_to_the_same_report() {
        let params = ScenarioParams {
            steps: 30,
            entities: 8,
            events_per_step: 3,
            violation_rate: 0.25,
            seed: 13,
        };
        let gen = library::find("telemetry").unwrap().generate(&params);
        let batch = run_batch(&gen, Backend::Sequential).unwrap();
        let paths = scratch("soak-kill");
        cleanup(&paths, 3);
        // Incarnation 1 dies processing the 9th transition.
        let died = run_soak(SoakSample {
            gen: &gen,
            paths: paths.clone(),
            resume: false,
            failpoints: Some("serve.step=abort@9".to_string()),
            sharding: false,
        });
        assert!(died.is_err(), "daemon must die at the failpoint");
        // Incarnation 2 resumes from the per-sample checkpoint and the
        // full re-stream converges on the batch-identical report.
        let outcome = run_soak(SoakSample {
            gen: &gen,
            paths: paths.clone(),
            resume: true,
            failpoints: None,
            sharding: false,
        })
        .unwrap();
        cleanup(&paths, 3);
        assert!(outcome.resumed);
        assert_eq!(outcome.lines, batch);
    }
}
