//! Per-sample execution backends.
//!
//! Every sample is one generated history run through a checking backend;
//! the sample's outcome is the ordered list of violation lines, each
//! byte-identical to what `rtic check` prints. Batch backends step a
//! [`ConstraintSet`] in-process; the soak backend (see [`crate::soak`])
//! streams the history into a live `rtic serve` daemon and reads its
//! drained report back.

use std::sync::Arc;

use rtic_core::{ConstraintSet, Parallelism};
use rtic_workload::Generated;

/// How a sample's history is checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One `ConstraintSet`, sequential dispatch.
    Sequential,
    /// One `ConstraintSet`, worker-pool dispatch (`Parallelism::Auto`).
    Parallel,
    /// One `ConstraintSet` with the entity-key sharded data plane.
    Sharded,
    /// A live `rtic serve` daemon driven over a unix socket (soak mode);
    /// every sample is additionally cross-checked byte-for-byte against
    /// the sequential batch run of the same history.
    Soak,
}

impl Backend {
    /// All batch + soak backends, in registry order.
    pub const ALL: [Backend; 4] = [
        Backend::Sequential,
        Backend::Parallel,
        Backend::Sharded,
        Backend::Soak,
    ];

    /// CLI-facing name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Sequential => "sequential",
            Backend::Parallel => "parallel",
            Backend::Sharded => "fleet-sharded",
            Backend::Soak => "soak-serve",
        }
    }

    /// Parses a CLI backend name (with common aliases).
    pub fn parse(name: &str) -> Result<Backend, String> {
        match name {
            "sequential" | "set" => Ok(Backend::Sequential),
            "parallel" | "set-parallel" => Ok(Backend::Parallel),
            "fleet-sharded" | "sharded" => Ok(Backend::Sharded),
            "soak-serve" | "soak" => Ok(Backend::Soak),
            other => Err(format!(
                "unknown backend `{other}` (sequential|parallel|fleet-sharded|soak-serve)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Runs one generated history through a batch [`ConstraintSet`] and
/// returns the ordered violation lines.
pub fn run_batch(gen: &Generated, backend: Backend) -> Result<Vec<String>, String> {
    let mut set = ConstraintSet::new(gen.constraints.iter().cloned(), Arc::clone(&gen.catalog))
        .map_err(|(c, e)| format!("constraint `{}`: {e}", c.name))?;
    match backend {
        Backend::Sequential => {}
        Backend::Parallel => set.set_parallelism(Parallelism::Auto),
        Backend::Sharded => set.set_sharding(true),
        Backend::Soak => return Err("soak samples run through crate::soak, not run_batch".into()),
    }
    let mut lines = Vec::new();
    for t in &gen.transitions {
        let reports = set.step(t.time, &t.update).map_err(|e| e.to_string())?;
        lines.extend(reports.iter().filter(|r| !r.ok()).map(ToString::to_string));
    }
    Ok(lines)
}

/// Extracts the constraint name from a violation line
/// (`@t VIOLATION <name> x<n>: {…}`).
pub fn violated_constraint(line: &str) -> Option<&str> {
    let mut tokens = line.split_whitespace();
    let _time = tokens.next()?;
    if tokens.next()? != "VIOLATION" {
        return None;
    }
    tokens.next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_workload::{library, ScenarioParams};

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.as_str()).unwrap(), b);
        }
        assert_eq!(Backend::parse("sharded").unwrap(), Backend::Sharded);
        assert_eq!(Backend::parse("soak").unwrap(), Backend::Soak);
        assert!(Backend::parse("naive").is_err());
    }

    #[test]
    fn batch_backends_agree_on_a_production_scenario() {
        let params = ScenarioParams {
            steps: 50,
            entities: 12,
            events_per_step: 3,
            violation_rate: 0.15,
            seed: 9,
        };
        let gen = library::find("ratelimit").unwrap().generate(&params);
        let sequential = run_batch(&gen, Backend::Sequential).unwrap();
        assert!(!sequential.is_empty(), "seed must inject violations");
        for backend in [Backend::Parallel, Backend::Sharded] {
            assert_eq!(
                run_batch(&gen, backend).unwrap(),
                sequential,
                "{backend} diverged from sequential"
            );
        }
    }

    #[test]
    fn violation_lines_parse_back_to_their_constraint() {
        let params = ScenarioParams {
            steps: 60,
            entities: 12,
            events_per_step: 3,
            violation_rate: 0.2,
            seed: 3,
        };
        let gen = library::find("telemetry").unwrap().generate(&params);
        let lines = run_batch(&gen, Backend::Sequential).unwrap();
        assert!(!lines.is_empty());
        let names: Vec<&str> = gen.constraints.iter().map(|c| c.name.as_str()).collect();
        for line in &lines {
            let name = violated_constraint(line).expect("line parses");
            assert!(names.contains(&name), "unknown constraint in `{line}`");
        }
    }
}
