//! Statistical model checking (SMC) over the production scenario library.
//!
//! Exhaustive checking proves one history; production assurance needs a
//! statement about the *distribution* of histories a scenario generates.
//! This crate samples N randomized histories per scenario (each a fresh
//! seed derived from the base seed), checks each through a configurable
//! backend, and reports, per constraint, the estimated probability that a
//! history of the configured shape violates it — with Wilson confidence
//! intervals and Okamoto/Massart adaptive stopping, so the declared
//! `(confidence, epsilon)` target is met with a provable worst-case
//! sample bound.
//!
//! Three backends cross-validate the whole stack on the way:
//!
//! * batch backends ([`Backend::Sequential`], [`Backend::Parallel`],
//!   [`Backend::Sharded`]) step a `ConstraintSet` in-process;
//! * the soak backend ([`Backend::Soak`]) drives a live `rtic serve`
//!   daemon per sample over a unix socket and cross-checks its drained
//!   report byte-for-byte against the sequential batch run;
//! * an oracle subsample re-checks every k-th sample against the naive
//!   reference evaluator.
//!
//! Everything is seeded and wall-clock-free, so a run's report (and its
//! JSON artifact, [`artifact::render`]) reproduces byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod artifact;
pub mod bound;
pub mod driver;
pub mod soak;

use std::path::PathBuf;

use rtic_core::{StepEvent, StepObserver};
use rtic_relation::Symbol;
use rtic_workload::{library, Generated, ScenarioParams};

pub use bound::Precision;
pub use driver::{run_batch, violated_constraint, Backend};
pub use soak::{run_soak, SoakOutcome, SoakPaths, SoakSample};

/// How many samples to draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Adaptive: stop at the Massart bound for the running estimate,
    /// never past the Okamoto worst case.
    Auto,
    /// Exactly this many samples, no adaptive stopping.
    Fixed(u64),
}

/// Configuration of one SMC run.
#[derive(Clone, Debug)]
pub struct SmcConfig {
    /// Scenario name from the workload registry.
    pub scenario: String,
    /// Scenario shape; `params.seed` is the base seed every per-sample
    /// seed derives from.
    pub params: ScenarioParams,
    /// The `(confidence, epsilon)` target.
    pub precision: Precision,
    /// Fixed or adaptive sample count.
    pub samples: SampleMode,
    /// Adaptive stopping never stops before this many samples (guards
    /// against a lucky early p̂ at the extremes).
    pub min_samples: u64,
    /// The checking backend.
    pub backend: Backend,
    /// Re-check every k-th sample against the naive oracle (0 = off).
    pub oracle_every: u64,
    /// Scratch directory for soak-mode sockets/checkpoints/reports.
    /// Defaults to a per-process temp directory, cleaned after each
    /// sample; set explicitly (with [`SmcConfig::soak_keep`]) to drill
    /// crash-resume across two invocations.
    pub soak_dir: Option<PathBuf>,
    /// Keep per-sample soak files instead of cleaning them.
    pub soak_keep: bool,
    /// Boot each sample's soak daemon from its checkpoint if present.
    pub soak_resume: bool,
    /// Failpoint spec forwarded to every soak daemon (chaos drills).
    pub soak_failpoints: Option<String>,
}

impl SmcConfig {
    /// A default-shaped run of one scenario: 0.95/0.05 precision,
    /// adaptive stopping, sequential backend, oracle every 8th sample.
    pub fn new(scenario: &str) -> SmcConfig {
        SmcConfig {
            scenario: scenario.to_string(),
            params: ScenarioParams::default(),
            precision: Precision {
                confidence: 0.95,
                epsilon: 0.05,
            },
            samples: SampleMode::Auto,
            min_samples: 20,
            backend: Backend::Sequential,
            oracle_every: 8,
            soak_dir: None,
            soak_keep: false,
            soak_resume: false,
            soak_failpoints: None,
        }
    }
}

/// Per-constraint violation-probability estimate.
#[derive(Clone, Debug)]
pub struct ConstraintEstimate {
    /// The constraint's name.
    pub name: String,
    /// Samples whose history violated it at least once.
    pub violated_samples: u64,
    /// Point estimate `violated_samples / samples_used`.
    pub estimate: f64,
    /// Wilson interval lower bound at the configured confidence.
    pub ci_low: f64,
    /// Wilson interval upper bound at the configured confidence.
    pub ci_high: f64,
}

/// The result of one SMC run.
#[derive(Clone, Debug)]
pub struct SmcReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend every sample ran through.
    pub backend: Backend,
    /// The sampled scenario shape (seed = base seed).
    pub params: ScenarioParams,
    /// Confidence target `1 − δ`.
    pub confidence: f64,
    /// Absolute half-width target `ε`.
    pub epsilon: f64,
    /// The worst-case sample bound the run declared up front.
    pub bound: u64,
    /// Samples actually drawn.
    pub samples_used: u64,
    /// Whether adaptive stopping ended the run before the bound.
    pub stopped_adaptively: bool,
    /// Per-constraint estimates, in the scenario's constraint order.
    pub constraints: Vec<ConstraintEstimate>,
    /// Samples re-checked against the naive oracle.
    pub oracle_checked: u64,
    /// Oracle disagreements (0 on a healthy stack).
    pub oracle_mismatches: u64,
    /// Soak samples cross-checked against the sequential batch run.
    pub soak_checked: u64,
    /// Soak-vs-batch disagreements (0 on a healthy stack).
    pub soak_mismatches: u64,
}

/// Runs one SMC campaign, emitting a [`StepEvent::SmcSample`] per
/// completed sample.
pub fn run(config: &SmcConfig, obs: &mut dyn StepObserver) -> Result<SmcReport, String> {
    let scenario = library::find(&config.scenario)
        .ok_or_else(|| format!("unknown scenario `{}` ({})", config.scenario, names()))?;
    let bound = match config.samples {
        SampleMode::Auto => config.precision.okamoto_bound(),
        SampleMode::Fixed(n) => {
            if n == 0 {
                return Err("--samples must be at least 1".into());
            }
            n
        }
    };

    // Constraint names in scenario order, fixed across samples.
    let constraint_names: Vec<String> = {
        let gen = scenario.generate(&config.params);
        gen.constraints.iter().map(|c| c.name.to_string()).collect()
    };
    let mut violated = vec![0u64; constraint_names.len()];

    let soak_scratch = config
        .soak_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("rtic-smc-{}", std::process::id())));

    let mut samples_used = 0u64;
    let mut stopped_adaptively = false;
    let mut oracle_checked = 0u64;
    let mut oracle_mismatches = 0u64;
    let mut soak_checked = 0u64;
    let mut soak_mismatches = 0u64;

    for i in 0..bound {
        let mut params = config.params;
        params.seed = rtic_oracle::derive_seed(config.params.seed, i);
        let gen = scenario.generate(&params);

        let lines = match config.backend {
            Backend::Soak => {
                let paths = SoakPaths {
                    dir: soak_scratch.clone(),
                    tag: format!("s{i}"),
                };
                let outcome = run_soak(SoakSample {
                    gen: &gen,
                    paths: paths.clone(),
                    resume: config.soak_resume,
                    failpoints: config.soak_failpoints.clone(),
                    sharding: false,
                })?;
                // Every soak sample is cross-checked against the batch
                // engine; a wire-protocol or resume bug becomes a visible
                // mismatch count, not a silently skewed estimate.
                let batch = run_batch(&gen, Backend::Sequential)?;
                soak_checked += 1;
                if outcome.lines != batch {
                    soak_mismatches += 1;
                }
                if !config.soak_keep {
                    soak::cleanup(&paths, 3);
                }
                outcome.lines
            }
            backend => run_batch(&gen, backend)?,
        };

        let mut hit = vec![false; constraint_names.len()];
        for line in &lines {
            if let Some(name) = violated_constraint(line) {
                if let Some(idx) = constraint_names.iter().position(|n| n == name) {
                    hit[idx] = true;
                }
            }
        }
        for (idx, was_hit) in hit.iter().enumerate() {
            if *was_hit {
                violated[idx] += 1;
            }
        }

        if config.oracle_every > 0 && i % config.oracle_every == 0 {
            oracle_checked += 1;
            if !oracle_agrees(&gen, &lines, params.seed)? {
                oracle_mismatches += 1;
            }
        }

        obs.observe(&StepEvent::SmcSample {
            scenario: Symbol::intern(&config.scenario),
            sample: i,
            bound,
            violated_constraints: hit
                .iter()
                .enumerate()
                .filter(|(_, h)| **h)
                .map(|(idx, _)| Symbol::intern(&constraint_names[idx]))
                .collect(),
        });

        samples_used = i + 1;
        if config.samples == SampleMode::Auto && samples_used >= config.min_samples {
            // The loosest constraint (p̂ nearest ½) dictates the stop.
            let needed = violated
                .iter()
                .map(|&v| {
                    config
                        .precision
                        .massart_bound(v as f64 / samples_used as f64)
                })
                .max()
                .unwrap_or(1);
            if samples_used >= needed {
                stopped_adaptively = samples_used < bound;
                break;
            }
        }
    }

    let constraints = constraint_names
        .iter()
        .zip(&violated)
        .map(|(name, &v)| {
            let (ci_low, ci_high) = config.precision.wilson_interval(v, samples_used);
            ConstraintEstimate {
                name: name.clone(),
                violated_samples: v,
                estimate: v as f64 / samples_used as f64,
                ci_low,
                ci_high,
            }
        })
        .collect();

    Ok(SmcReport {
        scenario: config.scenario.clone(),
        backend: config.backend,
        params: config.params,
        confidence: config.precision.confidence,
        epsilon: config.precision.epsilon,
        bound,
        samples_used,
        stopped_adaptively,
        constraints,
        oracle_checked,
        oracle_mismatches,
        soak_checked,
        soak_mismatches,
    })
}

/// Re-checks one sample's violation lines against the naive reference
/// evaluator, constraint by constraint.
fn oracle_agrees(gen: &Generated, lines: &[String], seed: u64) -> Result<bool, String> {
    use rtic_core::BackendId;
    use rtic_oracle::modes::{run_constraint, Mode};
    for constraint in &gen.constraints {
        let reference: Vec<String> = run_constraint(
            Mode::Single(BackendId::Naive),
            constraint,
            &gen.catalog,
            &gen.transitions,
            seed,
        )?
        .into_iter()
        .filter(|line| violated_constraint(line).is_some())
        .collect();
        let ours: Vec<&String> = lines
            .iter()
            .filter(|line| violated_constraint(line) == Some(constraint.name.as_str()))
            .collect();
        if ours.len() != reference.len()
            || ours.iter().zip(&reference).any(|(a, b)| a.as_str() != b)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

fn names() -> String {
    library::names().join("|")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_core::NopObserver;

    fn quick(scenario: &str) -> SmcConfig {
        let mut config = SmcConfig::new(scenario);
        config.params = ScenarioParams {
            steps: 30,
            entities: 8,
            events_per_step: 3,
            violation_rate: 0.3,
            seed: 11,
        };
        config.samples = SampleMode::Fixed(6);
        config.oracle_every = 3;
        config
    }

    #[test]
    fn unknown_scenarios_are_rejected_with_the_roster() {
        let err = run(&SmcConfig::new("nope"), &mut NopObserver).unwrap_err();
        assert!(err.contains("unknown scenario `nope`"));
        assert!(err.contains("fraud"), "roster lists the scenarios: {err}");
    }

    #[test]
    fn fixed_mode_draws_exactly_n_samples_and_estimates_every_constraint() {
        let config = quick("ratelimit");
        let report = run(&config, &mut NopObserver).unwrap();
        assert_eq!(report.samples_used, 6);
        assert_eq!(report.bound, 6);
        assert!(!report.stopped_adaptively);
        assert_eq!(report.constraints.len(), 2);
        for est in &report.constraints {
            assert_eq!(
                est.estimate,
                est.violated_samples as f64 / report.samples_used as f64
            );
            assert!(est.ci_low <= est.estimate && est.estimate <= est.ci_high);
        }
        // A 30% injection rate over 30 steps violates nearly every sample.
        assert!(report.constraints.iter().any(|e| e.violated_samples > 0));
        assert_eq!(report.oracle_checked, 2, "samples 0 and 3");
        assert_eq!(report.oracle_mismatches, 0);
    }

    #[test]
    fn seeded_runs_reproduce_exactly() {
        let config = quick("telemetry");
        let a = run(&config, &mut NopObserver).unwrap();
        let b = run(&config, &mut NopObserver).unwrap();
        assert_eq!(a.samples_used, b.samples_used);
        assert_eq!(a.constraints.len(), b.constraints.len());
        for (x, y) in a.constraints.iter().zip(&b.constraints) {
            assert_eq!(x.violated_samples, y.violated_samples);
            assert_eq!(x.estimate, y.estimate);
            assert_eq!(x.ci_low, y.ci_low);
            assert_eq!(x.ci_high, y.ci_high);
        }
        assert_eq!(artifact::render(&a), artifact::render(&b));
    }

    #[test]
    fn adaptive_stopping_terminates_within_the_declared_bound() {
        let mut config = quick("fraud");
        config.samples = SampleMode::Auto;
        config.min_samples = 5;
        // Loose precision keeps the test fast: okamoto(0.9, 0.2) = 38.
        config.precision = Precision::new(0.9, 0.2).unwrap();
        config.oracle_every = 0;
        let report = run(&config, &mut NopObserver).unwrap();
        assert_eq!(report.bound, config.precision.okamoto_bound());
        assert!(report.samples_used <= report.bound);
        assert!(report.samples_used >= config.min_samples);
        // Injected violations push p̂ to the edge, so the Massart bound
        // undercuts the worst case and the run stops early.
        assert!(report.stopped_adaptively, "used {}", report.samples_used);
    }

    #[test]
    fn samples_emit_progress_events() {
        use rtic_core::observe::CollectingObserver;
        let mut config = quick("access");
        config.samples = SampleMode::Fixed(3);
        config.oracle_every = 0;
        let mut obs = CollectingObserver::default();
        let report = run(&config, &mut obs).unwrap();
        let smc: Vec<_> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                StepEvent::SmcSample {
                    scenario,
                    sample,
                    bound,
                    violated_constraints,
                } => Some((scenario, *sample, *bound, violated_constraints.len())),
                _ => None,
            })
            .collect();
        assert_eq!(smc.len(), 3);
        assert_eq!(smc[0].0.as_str(), "access");
        assert_eq!(smc[0].1, 0);
        assert_eq!(smc[2].1, 2);
        assert!(smc.iter().all(|s| s.2 == 3));
        let violated_events: usize = smc.iter().map(|s| s.3).sum();
        let violated_report: u64 = report.constraints.iter().map(|e| e.violated_samples).sum();
        assert_eq!(violated_events as u64, violated_report);
    }

    #[test]
    fn soak_backend_matches_batch_estimates() {
        let mut config = quick("telemetry");
        config.samples = SampleMode::Fixed(2);
        config.oracle_every = 0;
        config.backend = Backend::Soak;
        config.soak_dir =
            Some(std::env::temp_dir().join(format!("rtic-smc-lib-test-{}", std::process::id())));
        let soak = run(&config, &mut NopObserver).unwrap();
        assert_eq!(soak.soak_checked, 2);
        assert_eq!(soak.soak_mismatches, 0);
        config.backend = Backend::Sequential;
        let batch = run(&config, &mut NopObserver).unwrap();
        for (a, b) in soak.constraints.iter().zip(&batch.constraints) {
            assert_eq!(a.violated_samples, b.violated_samples);
        }
        std::fs::remove_dir_all(config.soak_dir.as_deref().expect("set above")).ok();
    }
}
