//! Sample-size bounds and confidence intervals for Bernoulli estimation.
//!
//! The harness estimates, per constraint, the probability `p` that a
//! randomized scenario history of the configured shape contains at least
//! one violation of that constraint. Three pieces of statistics drive it:
//!
//! * the **Okamoto (Chernoff–Hoeffding) bound** — the a-priori worst-case
//!   sample count guaranteeing `P(|p̂ − p| > ε) ≤ δ` regardless of `p`:
//!   `n = ⌈ln(2/δ) / (2ε²)⌉`;
//! * the **Massart-style adaptive bound** — the same guarantee using the
//!   running estimate: when `p̂` is far from ½ the Bernoulli variance
//!   shrinks and far fewer samples suffice:
//!   `n(p̂) = ⌈(2 ln(2/δ)/ε²) · (¼ − (max(0, |p̂ − ½| − 2ε/3))²)⌉`.
//!   It never exceeds the Okamoto bound, so adaptive stopping always
//!   terminates within the declared worst case;
//! * **Wilson score intervals** for the reported per-constraint CIs —
//!   well-behaved at `p̂ = 0` and `p̂ = 1`, where the injected-violation
//!   scenarios actually live.
//!
//! Everything here is pure `f64` arithmetic on explicit inputs — no
//! clocks, no RNG — so a seeded SMC run reproduces byte-identically.

/// Statistical precision: confidence `1 − δ` that the estimate is within
/// `± ε` of the true violation probability.
#[derive(Clone, Copy, Debug)]
pub struct Precision {
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub confidence: f64,
    /// Half-width of the absolute error bound, in `(0, 0.5]`.
    pub epsilon: f64,
}

impl Precision {
    /// Validates and constructs a precision target.
    pub fn new(confidence: f64, epsilon: f64) -> Result<Precision, String> {
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(format!("confidence must be in (0, 1), got {confidence}"));
        }
        if !(epsilon > 0.0 && epsilon <= 0.5) {
            return Err(format!("epsilon must be in (0, 0.5], got {epsilon}"));
        }
        Ok(Precision {
            confidence,
            epsilon,
        })
    }

    /// `δ = 1 − confidence`.
    pub fn delta(&self) -> f64 {
        1.0 - self.confidence
    }

    /// The Okamoto worst-case sample bound `⌈ln(2/δ) / (2ε²)⌉`.
    pub fn okamoto_bound(&self) -> u64 {
        let n = (2.0 / self.delta()).ln() / (2.0 * self.epsilon * self.epsilon);
        n.ceil() as u64
    }

    /// The Massart-style adaptive bound at running estimate `p_hat`.
    ///
    /// Monotone in distance from ½ and clamped to `[1, okamoto]`, so a
    /// loop stopping at `n ≥ massart_bound(p̂)` stops no later than the
    /// Okamoto bound.
    pub fn massart_bound(&self, p_hat: f64) -> u64 {
        let l = (2.0 / self.delta()).ln();
        let centered = ((p_hat - 0.5).abs() - 2.0 * self.epsilon / 3.0).max(0.0);
        let variance_cap = 0.25 - centered * centered;
        let n = (2.0 * l / (self.epsilon * self.epsilon)) * variance_cap;
        (n.ceil() as u64).clamp(1, self.okamoto_bound())
    }

    /// The Wilson score interval for `successes` out of `n` trials at
    /// this precision's confidence level. Returns `(low, high)`.
    pub fn wilson_interval(&self, successes: u64, n: u64) -> (f64, f64) {
        if n == 0 {
            return (0.0, 1.0);
        }
        let z = normal_quantile(1.0 - self.delta() / 2.0);
        let n_f = n as f64;
        let p = successes as f64 / n_f;
        let z2 = z * z;
        let denom = 1.0 + z2 / n_f;
        let center = p + z2 / (2.0 * n_f);
        let spread = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
        // The algebra keeps p̂ inside the interval; the final clamp
        // guards the one-ULP rounding wobble at p̂ = 0 and p̂ = 1.
        let low = ((center - spread) / denom).max(0.0).min(p);
        let high = ((center + spread) / denom).min(1.0).max(p);
        (low, high)
    }
}

/// The standard normal quantile function (inverse CDF), via Acklam's
/// rational approximation (relative error < 1.15e-9 over (0, 1)).
///
/// Self-contained so the crate needs no statistics dependency; the
/// approximation is deterministic, which the byte-identical artifact
/// guarantee relies on.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn precision(confidence: f64, epsilon: f64) -> Precision {
        Precision::new(confidence, epsilon).unwrap()
    }

    #[test]
    fn rejects_degenerate_targets() {
        assert!(Precision::new(0.0, 0.1).is_err());
        assert!(Precision::new(1.0, 0.1).is_err());
        assert!(Precision::new(0.95, 0.0).is_err());
        assert!(Precision::new(0.95, 0.6).is_err());
    }

    #[test]
    fn okamoto_matches_the_textbook_value() {
        // ln(2/0.05) / (2 · 0.05²) = 3.6889 / 0.005 = 737.78 → 738.
        assert_eq!(precision(0.95, 0.05).okamoto_bound(), 738);
        // Tighter epsilon grows the bound quadratically.
        assert_eq!(precision(0.95, 0.025).okamoto_bound(), 2952);
    }

    #[test]
    fn massart_never_exceeds_okamoto_and_shrinks_at_the_edges() {
        let p = precision(0.95, 0.05);
        let okamoto = p.okamoto_bound();
        for i in 0..=100 {
            let p_hat = i as f64 / 100.0;
            let m = p.massart_bound(p_hat);
            assert!(m >= 1 && m <= okamoto, "p̂={p_hat}: {m} vs {okamoto}");
        }
        // At p̂ near ½ the adaptive bound equals the worst case ...
        assert_eq!(p.massart_bound(0.5), okamoto);
        // ... and at the edges it is dramatically smaller.
        assert!(p.massart_bound(0.0) < okamoto / 4);
        assert!(p.massart_bound(1.0) < okamoto / 4);
        // Symmetric around ½.
        assert_eq!(p.massart_bound(0.1), p.massart_bound(0.9));
    }

    #[test]
    fn wilson_interval_contains_the_point_estimate() {
        let pr = precision(0.95, 0.05);
        for &(s, n) in &[(0u64, 40u64), (1, 40), (20, 40), (39, 40), (40, 40)] {
            let (low, high) = pr.wilson_interval(s, n);
            let p_hat = s as f64 / n as f64;
            assert!(low <= p_hat && p_hat <= high, "({s}, {n})");
            assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
            assert!(low < high);
        }
        // Degenerate: no data, no information.
        assert_eq!(pr.wilson_interval(0, 0), (0.0, 1.0));
    }

    #[test]
    fn wilson_is_sane_at_certainty() {
        // All samples violated: the interval hugs 1 but never crosses it.
        let pr = precision(0.99, 0.05);
        let (low, high) = pr.wilson_interval(200, 200);
        assert!(low > 0.95);
        assert_eq!(high, 1.0);
        let (low, high) = pr.wilson_interval(0, 200);
        assert_eq!(low, 0.0);
        assert!(high < 0.05);
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        // Φ⁻¹(0.975) = 1.959964..., Φ⁻¹(0.995) = 2.575829...
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
        assert!((normal_quantile(0.5)).abs() < 1e-12);
        assert!((normal_quantile(0.025) + normal_quantile(0.975)).abs() < 1e-9);
        // The tail branches agree with known deep-tail values.
        assert!((normal_quantile(0.0001) + 3.719016).abs() < 1e-4);
    }
}
