//! The SMC run artifact: a deterministic JSON document.
//!
//! Hand-rendered (the workspace carries no JSON dependency) with a fixed
//! key order, fixed float formatting (`{:.6}`), and no timestamps or
//! host details — so the acceptance guarantee "same seed ⇒ byte-identical
//! artifact" holds by construction.

use std::fmt::Write as _;

use crate::SmcReport;

/// Artifact schema version, bumped on any layout change.
pub const SCHEMA_VERSION: u64 = 1;

/// Renders a report as the canonical artifact JSON (pretty-printed,
/// trailing newline).
pub fn render(report: &SmcReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"scenario\": {},", quote(&report.scenario));
    let _ = writeln!(out, "  \"backend\": {},", quote(report.backend.as_str()));
    let _ = writeln!(out, "  \"params\": {{");
    let _ = writeln!(out, "    \"steps\": {},", report.params.steps);
    let _ = writeln!(out, "    \"entities\": {},", report.params.entities);
    let _ = writeln!(
        out,
        "    \"events_per_step\": {},",
        report.params.events_per_step
    );
    let _ = writeln!(
        out,
        "    \"violation_rate\": {},",
        float(report.params.violation_rate)
    );
    let _ = writeln!(out, "    \"seed\": {}", report.params.seed);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"confidence\": {},", float(report.confidence));
    let _ = writeln!(out, "  \"epsilon\": {},", float(report.epsilon));
    let _ = writeln!(out, "  \"bound\": {},", report.bound);
    let _ = writeln!(out, "  \"samples_used\": {},", report.samples_used);
    let _ = writeln!(
        out,
        "  \"stopped_adaptively\": {},",
        report.stopped_adaptively
    );
    let _ = writeln!(out, "  \"constraints\": [");
    for (idx, est) in report.constraints.iter().enumerate() {
        let comma = if idx + 1 < report.constraints.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": {},", quote(&est.name));
        let _ = writeln!(out, "      \"violated_samples\": {},", est.violated_samples);
        let _ = writeln!(out, "      \"estimate\": {},", float(est.estimate));
        let _ = writeln!(out, "      \"ci_low\": {},", float(est.ci_low));
        let _ = writeln!(out, "      \"ci_high\": {}", float(est.ci_high));
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"oracle_checked\": {},", report.oracle_checked);
    let _ = writeln!(
        out,
        "  \"oracle_mismatches\": {},",
        report.oracle_mismatches
    );
    let _ = writeln!(out, "  \"soak_checked\": {},", report.soak_checked);
    let _ = writeln!(out, "  \"soak_mismatches\": {}", report.soak_mismatches);
    let _ = writeln!(out, "}}");
    out
}

/// Renders the human-facing summary table printed after a run.
pub fn render_summary(report: &SmcReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "smc {}: {} samples (bound {}, {}), backend {}",
        report.scenario,
        report.samples_used,
        report.bound,
        if report.stopped_adaptively {
            "stopped adaptively"
        } else {
            "ran to the bound"
        },
        report.backend,
    );
    let _ = writeln!(
        out,
        "precision: {} confidence, ±{} absolute error",
        float(report.confidence),
        float(report.epsilon)
    );
    for est in &report.constraints {
        let _ = writeln!(
            out,
            "  {:<24} p̂={} [{}, {}] ({}/{} samples violated)",
            est.name,
            float(est.estimate),
            float(est.ci_low),
            float(est.ci_high),
            est.violated_samples,
            report.samples_used,
        );
    }
    if report.oracle_checked > 0 {
        let _ = writeln!(
            out,
            "oracle: {}/{} subsamples agreed",
            report.oracle_checked - report.oracle_mismatches,
            report.oracle_checked
        );
    }
    if report.soak_checked > 0 {
        let _ = writeln!(
            out,
            "soak: {}/{} reports byte-identical to batch",
            report.soak_checked - report.soak_mismatches,
            report.soak_checked
        );
    }
    out
}

fn float(x: f64) -> String {
    format!("{x:.6}")
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, ConstraintEstimate};
    use rtic_workload::ScenarioParams;

    fn sample_report() -> SmcReport {
        SmcReport {
            scenario: "fraud".into(),
            backend: Backend::Sequential,
            params: ScenarioParams::default(),
            confidence: 0.95,
            epsilon: 0.05,
            bound: 738,
            samples_used: 64,
            stopped_adaptively: true,
            constraints: vec![
                ConstraintEstimate {
                    name: "structuring".into(),
                    violated_samples: 60,
                    estimate: 0.9375,
                    ci_low: 0.85,
                    ci_high: 0.975,
                },
                ConstraintEstimate {
                    name: "screened".into(),
                    violated_samples: 0,
                    estimate: 0.0,
                    ci_low: 0.0,
                    ci_high: 0.057,
                },
            ],
            oracle_checked: 8,
            oracle_mismatches: 0,
            soak_checked: 0,
            soak_mismatches: 0,
        }
    }

    #[test]
    fn artifact_is_deterministic_and_carries_the_schema() {
        let report = sample_report();
        let a = render(&report);
        assert_eq!(a, render(&report));
        assert!(a.starts_with("{\n  \"schema_version\": 1,\n"));
        assert!(a.contains("\"scenario\": \"fraud\""));
        assert!(a.contains("\"estimate\": 0.937500"));
        assert!(a.contains("\"stopped_adaptively\": true"));
        assert!(a.ends_with("}\n"));
        // No wall-clock leakage: fixed vocabulary only.
        assert!(!a.contains("time"), "{a}");
    }

    #[test]
    fn summary_reports_constraints_and_cross_checks() {
        let text = render_summary(&sample_report());
        assert!(text.contains("smc fraud: 64 samples (bound 738, stopped adaptively)"));
        assert!(text.contains("structuring"));
        assert!(text.contains("p̂=0.937500 [0.850000, 0.975000]"));
        assert!(text.contains("oracle: 8/8 subsamples agreed"));
        assert!(!text.contains("soak:"), "no soak line when unchecked");
    }

    #[test]
    fn quoting_escapes_control_and_meta_characters() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("a\\b"), "\"a\\\\b\"");
        assert_eq!(quote("a\nb"), "\"a\\nb\"");
        assert_eq!(quote("a\tb"), "\"a\\u0009b\"");
    }
}
