//! Property tests for the temporal crate: parser/printer round-trip,
//! normalization invariants, and analysis monotonicity.

use proptest::prelude::*;
use rtic_temporal::ast::{CmpOp, Formula, Term, Var};
use rtic_temporal::normalize::{is_normalized, normalize};
use rtic_temporal::parser::parse_formula;
use rtic_temporal::time::Interval;
use rtic_temporal::{horizon, Horizon};

fn interval() -> impl Strategy<Value = Interval> {
    prop_oneof![
        Just(Interval::all()),
        (0u64..6).prop_map(Interval::up_to),
        (0u64..6).prop_map(Interval::at_least),
        (0u64..5, 0u64..5).prop_map(|(a, d)| Interval::bounded(a, a + d).unwrap()),
    ]
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Term::var),
        (-3i64..4).prop_map(Term::int),
        prop_oneof![Just("ann"), Just("bob"), Just("jfk")].prop_map(Term::str),
    ]
}

fn atom() -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::atom("r0", [])),
        term().prop_map(|t| Formula::atom("p", [t])),
        (term(), term()).prop_map(|(a, b)| Formula::atom("q", [a, b])),
    ]
}

fn formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        atom(),
        (
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge)
            ],
            term(),
            term()
        )
            .prop_map(|(op, a, b)| Formula::Cmp(op, a, b)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), prop_oneof![Just("x"), Just("y")])
                .prop_map(|(f, v)| f.exists([Var::new(v)])),
            (inner.clone(), prop_oneof![Just("x"), Just("y")])
                .prop_map(|(f, v)| f.forall([Var::new(v)])),
            (inner.clone(), interval()).prop_map(|(f, i)| f.prev(i)),
            (inner.clone(), interval()).prop_map(|(f, i)| f.once(i)),
            (inner.clone(), interval()).prop_map(|(f, i)| f.hist(i)),
            (inner.clone(), inner, interval()).prop_map(|(a, b, i)| a.since(i, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_round_trip(f in formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {printed}\n{e}"));
        prop_assert_eq!(&reparsed, &f, "round trip changed the formula: {}", printed);
    }

    #[test]
    fn normalize_is_idempotent_and_normalizes(f in formula()) {
        let n = normalize(&f);
        prop_assert!(is_normalized(&n), "not normalized: {n}");
        prop_assert_eq!(normalize(&n), n);
    }

    #[test]
    fn normalize_never_grows_free_vars(f in formula()) {
        let n = normalize(&f);
        // Simplification may *drop* variables (e.g. `p(x) && false`) but
        // must never invent new ones.
        let before = f.free_vars();
        for v in n.free_vars() {
            prop_assert!(before.contains(&v));
        }
    }

    #[test]
    fn normalized_round_trips_too(f in formula()) {
        let n = normalize(&f);
        let reparsed = parse_formula(&n.to_string()).unwrap();
        prop_assert_eq!(reparsed, n);
    }

    #[test]
    fn horizon_of_normalized_never_exceeds_original(f in formula()) {
        // Normalization only removes lookback (constant folding), never adds.
        let h_orig = horizon(&f);
        let h_norm = horizon(&normalize(&f));
        match (h_norm, h_orig) {
            (Horizon::Unbounded, Horizon::Finite(_)) => {
                prop_assert!(false, "normalization increased horizon");
            }
            (Horizon::Finite(a), Horizon::Finite(b)) => prop_assert!(a <= b),
            _ => {}
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC*") {
        // Errors are fine; panics are not.
        let _ = parse_formula(&s);
        let _ = rtic_temporal::parser::parse_constraint(&s);
        let _ = rtic_temporal::parser::parse_file(&s);
    }

    #[test]
    fn parser_never_panics_on_formula_like_input(
        s in "(once|hist|prev|since|exists|deny|\\(|\\)|\\[|\\]|[a-z]|[0-9]|,|\\.|&&|\\|\\||!|<|=|\"| )*"
    ) {
        let _ = parse_formula(&s);
        let _ = rtic_temporal::parser::parse_file(&s);
    }

    #[test]
    fn rename_apart_preserves_print_semantics_shape(f in formula()) {
        use rtic_temporal::normalize::rename_apart;
        let r = rename_apart(&f);
        prop_assert_eq!(r.size(), f.size(), "renaming preserves structure");
        prop_assert_eq!(r.free_vars(), f.free_vars(), "free variables unchanged");
        // Renamed-apart formulas still round-trip through the parser.
        prop_assert_eq!(parse_formula(&r.to_string()).unwrap(), r);
    }

    #[test]
    fn temporal_depth_bounds_horizon_structure(f in formula()) {
        // A formula with no temporal operators has zero horizon.
        if !f.is_temporal() {
            prop_assert_eq!(horizon(&f), Horizon::Finite(rtic_temporal::Duration(0)));
        }
    }
}
