//! Abstract syntax of Past Metric Temporal Logic (Past MTL).
//!
//! Formulas are first-order logic over database atoms and comparisons,
//! extended with the four metric past operators of the paper:
//! `prev[I]`, `once[I]`, `hist[I]` and binary `since[I]`.
//!
//! # Semantics
//!
//! Over a history `ρ = (D_0,t_0) … (D_n,t_n)` with strictly increasing
//! timestamps, at position `i` under valuation `ν`:
//!
//! * `R(u̅)` — `ν(u̅) ∈ D_i(R)`.
//! * Boolean connectives and comparisons as usual; quantifiers range over
//!   the (infinite) domain, which is why constraints must be *safe-range*
//!   (see [`crate::safety`]).
//! * `prev[I] f` — `i > 0`, `t_i − t_{i−1} ∈ I`, and `f` holds at `i−1`.
//! * `once[I] f` — ∃ `j ≤ i` with `t_i − t_j ∈ I` and `f` at `j`.
//! * `hist[I] f` — ∀ `j ≤ i` with `t_i − t_j ∈ I`, `f` at `j`.
//! * `f since[I] g` — ∃ `j ≤ i` with `t_i − t_j ∈ I`, `g` at `j`, and `f`
//!   at every `k` with `j < k ≤ i`.
//!
//! Note `once[I] f ≡ true since[I] f` and, at `I = [0,∞]`, these are the
//! classical (non-metric) past operators.

use std::collections::BTreeSet;
use std::fmt;

use rtic_relation::{Symbol, Value};

use crate::time::Interval;

/// A logic variable.
///
/// `Ord` compares variable *names* lexicographically (not interner ids),
/// so every user-visible column order — violation witnesses, explain
/// plans, checkpoint files — is stable across processes and independent of
/// interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Var(pub Symbol);

impl PartialOrd for Var {
    fn partial_cmp(&self, other: &Var) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Var {
    fn cmp(&self, other: &Var) -> std::cmp::Ordering {
        self.0.as_str().cmp(other.0.as_str())
    }
}

impl Var {
    /// A variable named `name`.
    pub fn new(name: impl Into<Symbol>) -> Var {
        Var(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> Symbol {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

/// Shorthand for [`Var::new`].
pub fn var(name: &str) -> Var {
    Var::new(name)
}

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::Var(Var::new(name))
    }

    /// An integer constant.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// A string constant.
    pub fn str(s: &str) -> Term {
        Term::Const(Value::str(s))
    }

    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "{:?}", s.as_str()),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Term {
        Term::int(i)
    }
}

impl From<&str> for Term {
    /// Bare strings become *variables*; use [`Term::str`] for string
    /// constants (mirroring the concrete syntax, where constants are
    /// quoted).
    fn from(s: &str) -> Term {
        Term::var(s)
    }
}

/// A comparison operator. Order operators apply to integers only (enforced
/// by [`crate::typecheck`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on concrete values. Order comparisons on
    /// non-integers return `false` (the type checker rejects them earlier).
    pub fn eval(self, a: Value, b: Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            _ => match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => match self {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Eq | CmpOp::Ne => unreachable!(),
                },
                _ => false,
            },
        }
    }

    /// The operator with its arguments swapped (`<` ↦ `>` etc.).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The negated operator (`<` ↦ `>=` etc.).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A Past MTL formula.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The always-true formula.
    True,
    /// The always-false formula.
    False,
    /// A database atom `R(u̅)`.
    Atom {
        /// Relation name.
        relation: Symbol,
        /// Argument terms (arity checked against the catalog).
        terms: Vec<Term>,
    },
    /// A comparison `u ⊙ v`.
    Cmp(CmpOp, Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication (sugar; normalized away).
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Vec<Var>, Box<Formula>),
    /// Universal quantification (sugar; normalized away).
    Forall(Vec<Var>, Box<Formula>),
    /// `prev[I] f`.
    Prev(Interval, Box<Formula>),
    /// `once[I] f`.
    Once(Interval, Box<Formula>),
    /// `hist[I] f`.
    Hist(Interval, Box<Formula>),
    /// `f since[I] g` — first operand is the *maintained* formula `f`,
    /// second the *anchor* formula `g`.
    Since(Interval, Box<Formula>, Box<Formula>),
    /// A counting aggregate `count x̄ . (body) ⊙ n`: the number of distinct
    /// assignments to `x̄` satisfying `body` *at the current state*,
    /// compared against the integer constant `n`. The aggregate itself is
    /// not temporal (it reads the current state), but `body` may freely
    /// contain temporal subformulas. An extension beyond the PODS'92
    /// operator set (aggregates are the research line's stated follow-up).
    CountCmp {
        /// The counted (bound) variables.
        vars: Vec<Var>,
        /// The counted formula.
        body: Box<Formula>,
        /// The comparison applied to the count.
        op: CmpOp,
        /// The constant threshold.
        threshold: i64,
    },
}

impl Formula {
    /// An atom `relation(terms…)`.
    pub fn atom(relation: impl Into<Symbol>, terms: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Atom {
            relation: relation.into(),
            terms: terms.into_iter().collect(),
        }
    }

    /// A comparison.
    pub fn cmp(op: CmpOp, lhs: impl Into<Term>, rhs: impl Into<Term>) -> Formula {
        Formula::Cmp(op, lhs.into(), rhs.into())
    }

    /// Equality `lhs = rhs`.
    pub fn eq(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Formula {
        Formula::cmp(CmpOp::Eq, lhs, rhs)
    }

    /// Negation `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction `self && rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction `self || rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// Implication `self -> rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// `exists vars . self`.
    pub fn exists(self, vars: impl IntoIterator<Item = Var>) -> Formula {
        Formula::Exists(vars.into_iter().collect(), Box::new(self))
    }

    /// `forall vars . self`.
    pub fn forall(self, vars: impl IntoIterator<Item = Var>) -> Formula {
        Formula::Forall(vars.into_iter().collect(), Box::new(self))
    }

    /// `prev[i] self`.
    pub fn prev(self, i: Interval) -> Formula {
        Formula::Prev(i, Box::new(self))
    }

    /// `once[i] self`.
    pub fn once(self, i: Interval) -> Formula {
        Formula::Once(i, Box::new(self))
    }

    /// `hist[i] self`.
    pub fn hist(self, i: Interval) -> Formula {
        Formula::Hist(i, Box::new(self))
    }

    /// `self since[i] anchor`.
    pub fn since(self, i: Interval, anchor: Formula) -> Formula {
        Formula::Since(i, Box::new(self), Box::new(anchor))
    }

    /// `count vars . (self) op threshold`.
    pub fn count_cmp(
        self,
        vars: impl IntoIterator<Item = Var>,
        op: CmpOp,
        threshold: i64,
    ) -> Formula {
        Formula::CountCmp {
            vars: vars.into_iter().collect(),
            body: Box::new(self),
            op,
            threshold,
        }
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn go(f: &Formula, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom { terms, .. } => {
                    for t in terms {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(*v);
                            }
                        }
                    }
                }
                Formula::Cmp(_, a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(*v);
                            }
                        }
                    }
                }
                Formula::Not(g)
                | Formula::Prev(_, g)
                | Formula::Once(_, g)
                | Formula::Hist(_, g) => go(g, bound, out),
                Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Since(_, a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                    let n = bound.len();
                    bound.extend(vs.iter().copied());
                    go(g, bound, out);
                    bound.truncate(n);
                }
                Formula::CountCmp { vars, body, .. } => {
                    let n = bound.len();
                    bound.extend(vars.iter().copied());
                    go(body, bound, out);
                    bound.truncate(n);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Whether the formula contains any temporal operator.
    pub fn is_temporal(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => false,
            Formula::Prev(..) | Formula::Once(..) | Formula::Hist(..) | Formula::Since(..) => true,
            Formula::Not(g) => g.is_temporal(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.is_temporal() || b.is_temporal()
            }
            Formula::Exists(_, g) | Formula::Forall(_, g) => g.is_temporal(),
            Formula::CountCmp { body, .. } => body.is_temporal(),
        }
    }

    /// Maximum nesting depth of temporal operators.
    pub fn temporal_depth(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => 0,
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => g.temporal_depth(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.temporal_depth().max(b.temporal_depth())
            }
            Formula::Prev(_, g) | Formula::Once(_, g) | Formula::Hist(_, g) => {
                1 + g.temporal_depth()
            }
            Formula::Since(_, a, b) => 1 + a.temporal_depth().max(b.temporal_depth()),
            Formula::CountCmp { body, .. } => body.temporal_depth(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => 1,
            Formula::Not(g)
            | Formula::Exists(_, g)
            | Formula::Forall(_, g)
            | Formula::Prev(_, g)
            | Formula::Once(_, g)
            | Formula::Hist(_, g) => 1 + g.size(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Since(_, a, b) => 1 + a.size() + b.size(),
            Formula::CountCmp { body, .. } => 1 + body.size(),
        }
    }

    /// All relation names mentioned in atoms.
    pub fn relations(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Atom { relation, .. } = f {
                out.insert(*relation);
            }
        });
        out
    }

    /// Pre-order visit of every subformula.
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => {}
            Formula::Not(g)
            | Formula::Exists(_, g)
            | Formula::Forall(_, g)
            | Formula::Prev(_, g)
            | Formula::Once(_, g)
            | Formula::Hist(_, g) => g.visit(f),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Since(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::CountCmp { body, .. } => body.visit(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reserved() -> Formula {
        Formula::atom("reserved", [Term::var("p"), Term::var("f")])
    }

    #[test]
    fn free_vars_of_atom() {
        let fv = reserved().free_vars();
        assert_eq!(fv.len(), 2);
        assert!(fv.contains(&var("p")));
    }

    #[test]
    fn quantifier_binds() {
        let f = reserved().exists([var("p")]);
        let fv = f.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![var("f")]);
    }

    #[test]
    fn shadowing_inner_bound_stays_bound() {
        // exists p . (reserved(p,f) && exists p . reserved(p,g))
        let inner = Formula::atom("reserved", [Term::var("p"), Term::var("g")]).exists([var("p")]);
        let f = reserved().and(inner).exists([var("p")]);
        let fv = f.free_vars();
        assert!(fv.contains(&var("f")) && fv.contains(&var("g")) && !fv.contains(&var("p")));
    }

    #[test]
    fn since_free_vars_union_both_sides() {
        let f = reserved().since(
            Interval::up_to(3),
            Formula::atom("confirmed", [Term::var("p")]),
        );
        assert_eq!(f.free_vars().len(), 2);
    }

    #[test]
    fn temporal_detection_and_depth() {
        assert!(!reserved().is_temporal());
        let f = reserved().once(Interval::all());
        assert!(f.is_temporal());
        assert_eq!(f.temporal_depth(), 1);
        let g = f.clone().since(Interval::up_to(2), f);
        assert_eq!(g.temporal_depth(), 2);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(reserved().size(), 1);
        assert_eq!(reserved().and(Formula::True).size(), 3);
    }

    #[test]
    fn relations_collects_atoms() {
        let f = reserved().and(Formula::atom("confirmed", [Term::var("p")]).not());
        let rels = f.relations();
        assert_eq!(rels.len(), 2);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(Value::Int(1), Value::Int(2)));
        assert!(
            !CmpOp::Lt.eval(Value::str("a"), Value::str("b")),
            "order on non-int is false"
        );
        assert!(CmpOp::Ne.eval(Value::str("a"), Value::str("b")));
        assert!(CmpOp::Eq.eval(Value::Bool(true), Value::Bool(true)));
    }

    #[test]
    fn cmp_negated_is_complement_on_ints() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for a in -2..3 {
                for b in -2..3 {
                    let (a, b) = (Value::Int(a), Value::Int(b));
                    assert_ne!(op.eval(a, b), op.negated().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn cmp_flipped_swaps_args() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for a in -2..3 {
                for b in -2..3 {
                    let (a, b) = (Value::Int(a), Value::Int(b));
                    assert_eq!(op.eval(a, b), op.flipped().eval(b, a));
                }
            }
        }
    }

    #[test]
    fn count_cmp_binds_its_vars() {
        // count f . (reserved(p, f)) >= 3 — free var is p only.
        let f = Formula::atom("reserved", [Term::var("p"), Term::var("f")]).count_cmp(
            [var("f")],
            CmpOp::Ge,
            3,
        );
        let fv = f.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![var("p")]);
        assert!(!f.is_temporal());
        assert_eq!(f.size(), 2);
        let g = Formula::atom("q", [Term::var("x")])
            .once(Interval::all())
            .count_cmp([var("x")], CmpOp::Lt, 2);
        assert!(
            g.is_temporal(),
            "temporal body makes the aggregate temporal"
        );
    }

    #[test]
    fn term_from_impls() {
        assert_eq!(Term::from("x"), Term::var("x"));
        assert_eq!(Term::from(3), Term::int(3));
    }
}
