//! Static analysis of formulas: lookback horizon, aux-space bound,
//! touched relations, and tick stability (relevance dispatch).

use std::collections::BTreeSet;

use rtic_relation::Symbol;

use crate::ast::Formula;
use crate::time::{Duration, UpperBound};

/// The *horizon* of a formula: the maximum age (in clock ticks) of any past
/// state the formula's truth at `now` can depend on.
///
/// `Horizon::Finite(h)` means states older than `h` ticks are irrelevant —
/// the correctness basis of the windowed baseline checker and of all window
/// pruning inside the bounded encoding. Any unbounded interval anywhere
/// makes the horizon [`Horizon::Unbounded`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Horizon {
    /// All relevant states are at most this old.
    Finite(Duration),
    /// Arbitrarily old states can matter.
    Unbounded,
}

impl Horizon {
    /// The finite payload, if any.
    pub fn finite(self) -> Option<Duration> {
        match self {
            Horizon::Finite(d) => Some(d),
            Horizon::Unbounded => None,
        }
    }

    fn max(self, other: Horizon) -> Horizon {
        match (self, other) {
            (Horizon::Finite(a), Horizon::Finite(b)) => Horizon::Finite(a.max(b)),
            _ => Horizon::Unbounded,
        }
    }

    fn plus(self, bound: UpperBound) -> Horizon {
        match (self, bound) {
            (Horizon::Finite(a), UpperBound::Finite(b)) => {
                Horizon::Finite(Duration(a.0.saturating_add(b.0)))
            }
            _ => Horizon::Unbounded,
        }
    }
}

/// Computes the lookback [`Horizon`] of `f`.
///
/// Temporal operators *nest additively*: `once[0,3] once[0,4] p` can depend
/// on states up to 7 ticks old (3 ticks back to the outer witness, which
/// itself looks 4 further back).
pub fn horizon(f: &Formula) -> Horizon {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => {
            Horizon::Finite(Duration(0))
        }
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => horizon(g),
        Formula::CountCmp { body, .. } => horizon(body),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            horizon(a).max(horizon(b))
        }
        Formula::Prev(i, g) | Formula::Once(i, g) | Formula::Hist(i, g) => horizon(g).plus(i.hi()),
        Formula::Since(i, a, b) => horizon(a).max(horizon(b)).plus(i.hi()),
    }
}

/// An upper bound on the number of timestamps the bounded encoding stores
/// *per live key* of any single auxiliary relation — the quantity the paper
/// proves independent of history length.
///
/// For a subformula with metric bound `[a, b]`, at most `b + 1` distinct
/// integer timestamps fit in a window of span `b`; the `a = 0` and `b = ∞`
/// specializations store exactly one. Returns the maximum over all temporal
/// subformulas (1 if there are none, since `prev` stores one state).
pub fn per_key_timestamp_bound(f: &Formula) -> UpperBound {
    fn node_bound(f: &Formula) -> UpperBound {
        match f {
            Formula::Once(i, _) | Formula::Since(i, _, _) => {
                if i.lo().0 == 0 {
                    UpperBound::Finite(Duration(1))
                } else {
                    match i.hi() {
                        UpperBound::Finite(b) => UpperBound::Finite(Duration(b.0 + 1)),
                        UpperBound::Infinite => UpperBound::Finite(Duration(1)),
                    }
                }
            }
            // A run is two timestamps; the number of runs in a window of
            // span b is at most ⌈(b+1)/2⌉; unbounded hist keeps one run.
            Formula::Hist(i, _) => match i.hi() {
                UpperBound::Finite(b) => UpperBound::Finite(Duration(b.0 + 2)),
                UpperBound::Infinite => UpperBound::Finite(Duration(2)),
            },
            Formula::Prev(..) => UpperBound::Finite(Duration(1)),
            _ => UpperBound::Finite(Duration(0)),
        }
    }
    let mut worst = UpperBound::Finite(Duration(1));
    f.visit(&mut |g| {
        let b = node_bound(g);
        if b > worst {
            worst = b;
        }
    });
    worst
}

/// The set of relations whose contents the truth of `f` can depend on —
/// the *touched-relation set* used for relevance dispatch: an update that
/// inserts into / deletes from none of these relations cannot change `f`'s
/// extension at the new state (it can still change it through pure time
/// passage; see [`tick_stability`] for that axis).
pub fn touched_relations(f: &Formula) -> BTreeSet<Symbol> {
    f.relations()
}

/// How a formula's satisfying assignments can move under a *pure clock
/// tick*: a transition whose update touches none of the formula's
/// relations, so every atom's extension is unchanged and only `now`
/// advances.
///
/// Both fields are conservative (may be `false` when the property actually
/// holds, never the reverse):
///
/// * `gain_free` — no valuation can go unsatisfied → satisfied. For a
///   denial body this is *update-monotonicity*: a violation-free state
///   stays violation-free across ticks, so re-evaluating the body on a
///   quiescent step is unnecessary.
/// * `lose_free` — no valuation can go satisfied → unsatisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TickStability {
    /// Pure time passage cannot create new satisfying assignments.
    pub gain_free: bool,
    /// Pure time passage cannot destroy satisfying assignments.
    pub lose_free: bool,
}

impl TickStability {
    const BOTH: TickStability = TickStability {
        gain_free: true,
        lose_free: true,
    };
    const NEITHER: TickStability = TickStability {
        gain_free: false,
        lose_free: false,
    };

    fn and(self, other: TickStability) -> TickStability {
        TickStability {
            gain_free: self.gain_free && other.gain_free,
            lose_free: self.lose_free && other.lose_free,
        }
    }

    fn negated(self) -> TickStability {
        TickStability {
            gain_free: self.lose_free,
            lose_free: self.gain_free,
        }
    }

    fn fully_stable(self) -> bool {
        self.gain_free && self.lose_free
    }
}

/// Computes the [`TickStability`] of `f`.
///
/// The interesting cases are the metric operators, where window edges move
/// with the clock:
///
/// * `once[a,b] g` — a witness *enters* the window by aging past `a`
///   (gains need `a = 0`) and *leaves* it by aging past `b` (losses need
///   `b = ∞`).
/// * `hist[a,b] g` — dually: a refuting `¬g` state leaves the window only
///   when `b` is finite (gains need `b = ∞`... losses need `a = 0` and a
///   `lose_free` operand, since the new state joins the window).
/// * `f since[I] g` — anchors age like `once` witnesses, but a key whose
///   only anchor is the current state was never filtered through `f`, so
///   the *next* state may drop it: never `lose_free`.
/// * `prev[I] g` — the referenced state and the gap both change on every
///   transition: never stable in either direction.
pub fn tick_stability(f: &Formula) -> TickStability {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => {
            TickStability::BOTH
        }
        Formula::Not(g) => tick_stability(g).negated(),
        Formula::And(a, b) | Formula::Or(a, b) => tick_stability(a).and(tick_stability(b)),
        Formula::Implies(a, b) => tick_stability(a).negated().and(tick_stability(b)),
        Formula::Exists(_, g) | Formula::Forall(_, g) => tick_stability(g),
        // The count can move up when the body gains and down when it
        // loses; which direction flips the comparison depends on the
        // operator, so require the body fully stable.
        Formula::CountCmp { body, .. } => {
            if tick_stability(body).fully_stable() {
                TickStability::BOTH
            } else {
                TickStability::NEITHER
            }
        }
        Formula::Prev(..) => TickStability::NEITHER,
        Formula::Once(i, g) => TickStability {
            gain_free: i.lo().0 == 0 && tick_stability(g).gain_free,
            lose_free: i.hi() == UpperBound::Infinite,
        },
        Formula::Hist(i, g) => TickStability {
            gain_free: i.hi() == UpperBound::Infinite,
            lose_free: i.lo().0 == 0 && tick_stability(g).lose_free,
        },
        Formula::Since(i, _f, g) => TickStability {
            gain_free: i.lo().0 == 0 && tick_stability(g).gain_free,
            lose_free: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula, Term};
    use crate::time::Interval;

    fn p() -> Formula {
        Formula::atom("p", [Term::var("x")])
    }

    #[test]
    fn nontemporal_horizon_is_zero() {
        assert_eq!(horizon(&p().and(p().not())), Horizon::Finite(Duration(0)));
    }

    #[test]
    fn single_operator_horizon_is_its_bound() {
        assert_eq!(
            horizon(&p().once(Interval::up_to(5))),
            Horizon::Finite(Duration(5))
        );
    }

    #[test]
    fn nesting_is_additive() {
        let f = p().once(Interval::up_to(4)).once(Interval::up_to(3));
        assert_eq!(horizon(&f), Horizon::Finite(Duration(7)));
    }

    #[test]
    fn since_takes_max_of_operands() {
        let f = p()
            .once(Interval::up_to(10))
            .since(Interval::up_to(2), p().once(Interval::up_to(1)));
        assert_eq!(horizon(&f), Horizon::Finite(Duration(12)));
    }

    #[test]
    fn any_unbounded_interval_is_unbounded() {
        let f = p().and(p().once(Interval::at_least(3)));
        assert_eq!(horizon(&f), Horizon::Unbounded);
    }

    #[test]
    fn prev_adds_its_bound() {
        let f = p().prev(Interval::up_to(2)).prev(Interval::up_to(2));
        assert_eq!(horizon(&f), Horizon::Finite(Duration(4)));
    }

    #[test]
    fn touched_relations_collects_all_atoms() {
        let f = p().and(Formula::atom("q", [Term::var("x")]).once(Interval::up_to(3)));
        let rels = touched_relations(&f);
        assert_eq!(rels.len(), 2);
        assert!(rels.contains(&Symbol::from("p")));
        assert!(rels.contains(&Symbol::from("q")));
    }

    #[test]
    fn nontemporal_formulas_are_fully_tick_stable() {
        let f = p().and(p().not());
        assert_eq!(tick_stability(&f), TickStability::BOTH);
    }

    #[test]
    fn once_from_zero_gains_but_never_loses_only_when_unbounded() {
        // once[0,5] p: a witness can age out (loses), but with lo = 0
        // nothing newly enters the window on a pure tick.
        let bounded = p().once(Interval::up_to(5));
        assert_eq!(
            tick_stability(&bounded),
            TickStability {
                gain_free: true,
                lose_free: false
            }
        );
        // once[0,*] p: monotone in both directions under a tick.
        let unbounded = p().once(Interval::all());
        assert_eq!(tick_stability(&unbounded), TickStability::BOTH);
        // once[2,5] p: a past witness can age *into* the window.
        let delayed = p().once(Interval::bounded(2, 5).unwrap());
        assert_eq!(tick_stability(&delayed), TickStability::NEITHER);
    }

    #[test]
    fn negation_swaps_polarities() {
        // !once[0,5] p gains exactly when once[0,5] p loses.
        let f = p().once(Interval::up_to(5)).not();
        assert_eq!(
            tick_stability(&f),
            TickStability {
                gain_free: false,
                lose_free: true
            }
        );
    }

    #[test]
    fn typical_denial_body_is_gain_free() {
        // The README's running example shape: once[2,*] reserved && reserved
        // && !once[0,*] confirmed. Ticks can only *add* violations via the
        // once[2,*]... which has lo > 0, so gain_free must be false there.
        let reserved = Formula::atom("reserved", [Term::var("x")]);
        let confirmed = Formula::atom("confirmed", [Term::var("x")]);
        let f = reserved
            .clone()
            .once(Interval::at_least(2))
            .and(reserved)
            .and(confirmed.once(Interval::all()).not());
        assert!(!tick_stability(&f).gain_free);

        // Whereas `p && !once[0,*] q` cannot gain violations on a tick.
        let g = p().and(
            Formula::atom("q", [Term::var("x")])
                .once(Interval::all())
                .not(),
        );
        assert!(tick_stability(&g).gain_free);
    }

    #[test]
    fn prev_and_since_are_unstable() {
        assert_eq!(
            tick_stability(&p().prev(Interval::up_to(2))),
            TickStability::NEITHER
        );
        let s = p().since(Interval::up_to(4), p());
        assert_eq!(
            tick_stability(&s),
            TickStability {
                gain_free: true,
                lose_free: false
            }
        );
    }

    #[test]
    fn per_key_bound_specializations() {
        // a = 0: one timestamp regardless of b.
        assert_eq!(
            per_key_timestamp_bound(&p().once(Interval::up_to(100))),
            UpperBound::Finite(Duration(1))
        );
        // b = ∞, a > 0: one timestamp.
        assert_eq!(
            per_key_timestamp_bound(&p().once(Interval::at_least(5))),
            UpperBound::Finite(Duration(1))
        );
        // General case: b + 1.
        assert_eq!(
            per_key_timestamp_bound(&p().once(Interval::bounded(2, 9).unwrap())),
            UpperBound::Finite(Duration(10))
        );
    }
}
