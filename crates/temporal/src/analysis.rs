//! Static analysis of formulas: lookback horizon and aux-space bound.

use crate::ast::Formula;
use crate::time::{Duration, UpperBound};

/// The *horizon* of a formula: the maximum age (in clock ticks) of any past
/// state the formula's truth at `now` can depend on.
///
/// `Horizon::Finite(h)` means states older than `h` ticks are irrelevant —
/// the correctness basis of the windowed baseline checker and of all window
/// pruning inside the bounded encoding. Any unbounded interval anywhere
/// makes the horizon [`Horizon::Unbounded`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Horizon {
    /// All relevant states are at most this old.
    Finite(Duration),
    /// Arbitrarily old states can matter.
    Unbounded,
}

impl Horizon {
    /// The finite payload, if any.
    pub fn finite(self) -> Option<Duration> {
        match self {
            Horizon::Finite(d) => Some(d),
            Horizon::Unbounded => None,
        }
    }

    fn max(self, other: Horizon) -> Horizon {
        match (self, other) {
            (Horizon::Finite(a), Horizon::Finite(b)) => Horizon::Finite(a.max(b)),
            _ => Horizon::Unbounded,
        }
    }

    fn plus(self, bound: UpperBound) -> Horizon {
        match (self, bound) {
            (Horizon::Finite(a), UpperBound::Finite(b)) => {
                Horizon::Finite(Duration(a.0.saturating_add(b.0)))
            }
            _ => Horizon::Unbounded,
        }
    }
}

/// Computes the lookback [`Horizon`] of `f`.
///
/// Temporal operators *nest additively*: `once[0,3] once[0,4] p` can depend
/// on states up to 7 ticks old (3 ticks back to the outer witness, which
/// itself looks 4 further back).
pub fn horizon(f: &Formula) -> Horizon {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => {
            Horizon::Finite(Duration(0))
        }
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => horizon(g),
        Formula::CountCmp { body, .. } => horizon(body),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            horizon(a).max(horizon(b))
        }
        Formula::Prev(i, g) | Formula::Once(i, g) | Formula::Hist(i, g) => horizon(g).plus(i.hi()),
        Formula::Since(i, a, b) => horizon(a).max(horizon(b)).plus(i.hi()),
    }
}

/// An upper bound on the number of timestamps the bounded encoding stores
/// *per live key* of any single auxiliary relation — the quantity the paper
/// proves independent of history length.
///
/// For a subformula with metric bound `[a, b]`, at most `b + 1` distinct
/// integer timestamps fit in a window of span `b`; the `a = 0` and `b = ∞`
/// specializations store exactly one. Returns the maximum over all temporal
/// subformulas (1 if there are none, since `prev` stores one state).
pub fn per_key_timestamp_bound(f: &Formula) -> UpperBound {
    fn node_bound(f: &Formula) -> UpperBound {
        match f {
            Formula::Once(i, _) | Formula::Since(i, _, _) => {
                if i.lo().0 == 0 {
                    UpperBound::Finite(Duration(1))
                } else {
                    match i.hi() {
                        UpperBound::Finite(b) => UpperBound::Finite(Duration(b.0 + 1)),
                        UpperBound::Infinite => UpperBound::Finite(Duration(1)),
                    }
                }
            }
            // A run is two timestamps; the number of runs in a window of
            // span b is at most ⌈(b+1)/2⌉; unbounded hist keeps one run.
            Formula::Hist(i, _) => match i.hi() {
                UpperBound::Finite(b) => UpperBound::Finite(Duration(b.0 + 2)),
                UpperBound::Infinite => UpperBound::Finite(Duration(2)),
            },
            Formula::Prev(..) => UpperBound::Finite(Duration(1)),
            _ => UpperBound::Finite(Duration(0)),
        }
    }
    let mut worst = UpperBound::Finite(Duration(1));
    f.visit(&mut |g| {
        let b = node_bound(g);
        if b > worst {
            worst = b;
        }
    });
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula, Term};
    use crate::time::Interval;

    fn p() -> Formula {
        Formula::atom("p", [Term::var("x")])
    }

    #[test]
    fn nontemporal_horizon_is_zero() {
        assert_eq!(horizon(&p().and(p().not())), Horizon::Finite(Duration(0)));
    }

    #[test]
    fn single_operator_horizon_is_its_bound() {
        assert_eq!(
            horizon(&p().once(Interval::up_to(5))),
            Horizon::Finite(Duration(5))
        );
    }

    #[test]
    fn nesting_is_additive() {
        let f = p().once(Interval::up_to(4)).once(Interval::up_to(3));
        assert_eq!(horizon(&f), Horizon::Finite(Duration(7)));
    }

    #[test]
    fn since_takes_max_of_operands() {
        let f = p()
            .once(Interval::up_to(10))
            .since(Interval::up_to(2), p().once(Interval::up_to(1)));
        assert_eq!(horizon(&f), Horizon::Finite(Duration(12)));
    }

    #[test]
    fn any_unbounded_interval_is_unbounded() {
        let f = p().and(p().once(Interval::at_least(3)));
        assert_eq!(horizon(&f), Horizon::Unbounded);
    }

    #[test]
    fn prev_adds_its_bound() {
        let f = p().prev(Interval::up_to(2)).prev(Interval::up_to(2));
        assert_eq!(horizon(&f), Horizon::Finite(Duration(4)));
    }

    #[test]
    fn per_key_bound_specializations() {
        // a = 0: one timestamp regardless of b.
        assert_eq!(
            per_key_timestamp_bound(&p().once(Interval::up_to(100))),
            UpperBound::Finite(Duration(1))
        );
        // b = ∞, a > 0: one timestamp.
        assert_eq!(
            per_key_timestamp_bound(&p().once(Interval::at_least(5))),
            UpperBound::Finite(Duration(1))
        );
        // General case: b + 1.
        assert_eq!(
            per_key_timestamp_bound(&p().once(Interval::bounded(2, 9).unwrap())),
            UpperBound::Finite(Duration(10))
        );
    }
}
