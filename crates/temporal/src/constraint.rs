//! Named integrity constraints in denial or assertion form.

use std::fmt;

use rtic_relation::Symbol;

use crate::ast::Formula;
use crate::normalize::normalize;

/// How a constraint's body is read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// `deny f` — the constraint is **violated** by every assignment
    /// satisfying `f` at some state. This is the primitive form.
    Deny,
    /// `assert f` — `f` must hold (for all assignments) at every state;
    /// sugar for `deny !f`.
    Assert,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Deny => "deny",
            Mode::Assert => "assert",
        })
    }
}

/// A named real-time integrity constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Constraint name (for reports).
    pub name: Symbol,
    /// Denial or assertion reading.
    pub mode: Mode,
    /// The body formula as written.
    pub body: Formula,
}

impl Constraint {
    /// A denial constraint: violated by assignments satisfying `body`.
    pub fn deny(name: impl Into<Symbol>, body: Formula) -> Constraint {
        Constraint {
            name: name.into(),
            mode: Mode::Deny,
            body,
        }
    }

    /// An assertion constraint: violated by assignments *falsifying* `body`.
    pub fn assert(name: impl Into<Symbol>, body: Formula) -> Constraint {
        Constraint {
            name: name.into(),
            mode: Mode::Assert,
            body,
        }
    }

    /// The normalized denial body: the formula whose satisfying assignments
    /// are this constraint's violation witnesses. Checkers compile this.
    pub fn denial_body(&self) -> Formula {
        match self.mode {
            Mode::Deny => normalize(&self.body),
            Mode::Assert => normalize(&self.body.clone().not()),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.mode, self.name, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    fn p() -> Formula {
        Formula::atom("p", [Term::var("x")])
    }

    #[test]
    fn deny_body_is_normalized_identity() {
        let c = Constraint::deny("c1", p().and(Formula::True));
        assert_eq!(c.denial_body(), p());
    }

    #[test]
    fn assert_negates() {
        let c = Constraint::assert("c2", p().not());
        assert_eq!(c.denial_body(), p(), "!!p normalizes to p");
    }

    #[test]
    fn display_round_trips_header() {
        let c = Constraint::deny("noshow", p());
        assert_eq!(c.to_string(), "deny noshow: p(x)");
        let a = Constraint::assert("ok", p());
        assert_eq!(a.to_string(), "assert ok: p(x)");
    }
}
