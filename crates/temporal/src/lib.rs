//! # rtic-temporal — time model and Past Metric Temporal Logic
//!
//! The constraint language of *Real-Time Integrity Constraints* (Chomicki,
//! PODS 1992): first-order logic over database atoms plus the metric past
//! operators `prev[I]`, `once[I]`, `hist[I]` and `since[I]`, interpreted
//! over timestamped database histories.
//!
//! * [`time`] — the discrete clock: [`TimePoint`], [`Duration`],
//!   [`Interval`] metric bounds (possibly unbounded above).
//! * [`ast`] — [`Formula`]/[`Term`]/[`Var`] with an ergonomic builder API.
//! * [`parser`] — the concrete constraint-file syntax.
//! * [`normalize`] — desugar `forall`/`->`, boolean simplification.
//! * [`optimize`] — conservative, gap-safe peephole rewrites.
//! * [`safety`] — safe-range (domain-independence) analysis plus the
//!   conjunct ordering shared by all evaluators.
//! * [`typecheck`] — sort checking against a catalog.
//! * [`analysis`] — lookback [`Horizon`] and the paper's per-key aux-space
//!   bound.
//! * [`constraint`] — named `deny`/`assert` constraints.
//!
//! ```
//! use rtic_temporal::parser::parse_constraint;
//! use rtic_temporal::{analysis, normalize, safety};
//!
//! let c = parse_constraint(
//!     "deny unconfirmed: once[2,*] reserved(p, f) && reserved(p, f) \
//!      && !once confirmed(p, f)",
//! )
//! .unwrap();
//! let body = c.denial_body();
//! safety::check(&body).unwrap();
//! assert_eq!(analysis::horizon(&body), rtic_temporal::analysis::Horizon::Unbounded);
//! assert!(normalize::is_normalized(&body));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod constraint;
pub mod normalize;
pub mod optimize;
pub mod parser;
mod pretty;
pub mod safety;
pub mod time;
pub mod typecheck;

pub use analysis::{horizon, Horizon};
pub use ast::{var, CmpOp, Formula, Term, Var};
pub use constraint::{Constraint, Mode};
pub use time::{Duration, Interval, TimePoint, UpperBound};
