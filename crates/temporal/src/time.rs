//! The discrete real-time model: time points, durations, metric intervals.
//!
//! Histories are stamped with strictly increasing [`TimePoint`]s drawn from a
//! discrete clock (`u64` ticks). Real time is modelled by *gaps*: consecutive
//! states may be any positive number of ticks apart. Metric temporal
//! operators carry an [`Interval`] `[a, b]` (`b` possibly `∞`) constraining
//! the *age* `now − then` of the states they look back at.

use std::fmt;

/// A point on the discrete clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimePoint(pub u64);

impl TimePoint {
    /// The age of `earlier` as seen from `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; ages are only meaningful
    /// looking into the past.
    pub fn age_of(self, earlier: TimePoint) -> Duration {
        assert!(earlier <= self, "age_of: {earlier} is later than {self}");
        Duration(self.0 - earlier.0)
    }

    /// The time `d` ticks after `self` (saturating).
    pub fn plus(self, d: Duration) -> TimePoint {
        TimePoint(self.0.saturating_add(d.0))
    }

    /// The time `d` ticks before `self`, or `None` if that underflows the
    /// clock's origin.
    pub fn minus(self, d: Duration) -> Option<TimePoint> {
        self.0.checked_sub(d.0).map(TimePoint)
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u64> for TimePoint {
    fn from(t: u64) -> TimePoint {
        TimePoint(t)
    }
}

/// A non-negative span of clock ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Duration(pub u64);

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Duration {
    fn from(d: u64) -> Duration {
        Duration(d)
    }
}

/// The upper bound of a metric interval: a finite duration or `∞`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UpperBound {
    /// A finite inclusive bound.
    Finite(Duration),
    /// Unbounded ("any age").
    Infinite,
}

impl UpperBound {
    /// Whether `d` is at or below the bound.
    pub fn admits(self, d: Duration) -> bool {
        match self {
            UpperBound::Finite(b) => d <= b,
            UpperBound::Infinite => true,
        }
    }

    /// The finite payload, if any.
    pub fn finite(self) -> Option<Duration> {
        match self {
            UpperBound::Finite(d) => Some(d),
            UpperBound::Infinite => None,
        }
    }
}

impl PartialOrd for UpperBound {
    fn partial_cmp(&self, other: &UpperBound) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UpperBound {
    fn cmp(&self, other: &UpperBound) -> std::cmp::Ordering {
        use UpperBound::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.cmp(b),
            (Finite(_), Infinite) => std::cmp::Ordering::Less,
            (Infinite, Finite(_)) => std::cmp::Ordering::Greater,
            (Infinite, Infinite) => std::cmp::Ordering::Equal,
        }
    }
}

impl fmt::Display for UpperBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpperBound::Finite(d) => write!(f, "{d}"),
            UpperBound::Infinite => f.write_str("*"),
        }
    }
}

/// A metric interval `[lo, hi]` of ages, `0 ≤ lo ≤ hi ≤ ∞`, both ends
/// inclusive.
///
/// Invalid intervals (`lo > hi`) cannot be constructed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    lo: Duration,
    hi: UpperBound,
}

/// Error for an attempted empty interval (`lo > hi`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EmptyInterval {
    /// Attempted lower bound.
    pub lo: Duration,
    /// Attempted (finite) upper bound.
    pub hi: Duration,
}

impl fmt::Display for EmptyInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "empty metric interval [{}, {}]", self.lo, self.hi)
    }
}

impl std::error::Error for EmptyInterval {}

impl Interval {
    /// `[lo, hi]`, rejecting `lo > hi`.
    pub fn bounded(lo: u64, hi: u64) -> Result<Interval, EmptyInterval> {
        if lo > hi {
            Err(EmptyInterval {
                lo: Duration(lo),
                hi: Duration(hi),
            })
        } else {
            Ok(Interval {
                lo: Duration(lo),
                hi: UpperBound::Finite(Duration(hi)),
            })
        }
    }

    /// `[lo, ∞]`.
    pub fn at_least(lo: u64) -> Interval {
        Interval {
            lo: Duration(lo),
            hi: UpperBound::Infinite,
        }
    }

    /// `[0, hi]`.
    pub fn up_to(hi: u64) -> Interval {
        Interval {
            lo: Duration(0),
            hi: UpperBound::Finite(Duration(hi)),
        }
    }

    /// `[0, ∞]` — the unconstrained interval (plain past operators).
    pub fn all() -> Interval {
        Interval {
            lo: Duration(0),
            hi: UpperBound::Infinite,
        }
    }

    /// `[k, k]`.
    pub fn exactly(k: u64) -> Interval {
        Interval {
            lo: Duration(k),
            hi: UpperBound::Finite(Duration(k)),
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> Duration {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> UpperBound {
        self.hi
    }

    /// Whether an age lies in the interval.
    pub fn contains(&self, age: Duration) -> bool {
        age >= self.lo && self.hi.admits(age)
    }

    /// Whether the upper bound is finite.
    pub fn is_bounded(&self) -> bool {
        matches!(self.hi, UpperBound::Finite(_))
    }

    /// Whether this is `[0, ∞]` (no metric constraint at all).
    pub fn is_unconstrained(&self) -> bool {
        self.lo.0 == 0 && self.hi == UpperBound::Infinite
    }

    /// The window of time points `[t − hi, t − lo]` whose age from `t` lies
    /// in the interval, clipped at the clock origin. Empty (`None`) when
    /// even age `lo` reaches before the origin... never: clipping at origin
    /// keeps the window nonempty iff `t − lo ≥ 0`; otherwise `None`.
    pub fn window_at(&self, t: TimePoint) -> Option<(TimePoint, TimePoint)> {
        let latest = t.minus(self.lo)?;
        let earliest = match self.hi {
            UpperBound::Infinite => TimePoint(0),
            UpperBound::Finite(b) => t.minus(b).unwrap_or(TimePoint(0)),
        };
        Some((earliest, latest))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_arithmetic() {
        assert_eq!(TimePoint(10).age_of(TimePoint(3)), Duration(7));
        assert_eq!(TimePoint(10).age_of(TimePoint(10)), Duration(0));
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn age_of_future_panics() {
        TimePoint(3).age_of(TimePoint(10));
    }

    #[test]
    fn plus_minus() {
        assert_eq!(TimePoint(5).plus(Duration(3)), TimePoint(8));
        assert_eq!(TimePoint(5).minus(Duration(3)), Some(TimePoint(2)));
        assert_eq!(TimePoint(2).minus(Duration(3)), None);
    }

    #[test]
    fn empty_interval_rejected() {
        assert!(Interval::bounded(5, 4).is_err());
        assert!(Interval::bounded(5, 5).is_ok());
    }

    #[test]
    fn containment() {
        let i = Interval::bounded(2, 5).unwrap();
        assert!(!i.contains(Duration(1)));
        assert!(i.contains(Duration(2)));
        assert!(i.contains(Duration(5)));
        assert!(!i.contains(Duration(6)));
        assert!(Interval::at_least(3).contains(Duration(1_000_000)));
        assert!(!Interval::at_least(3).contains(Duration(2)));
        assert!(Interval::all().contains(Duration(0)));
    }

    #[test]
    fn unconstrained_detection() {
        assert!(Interval::all().is_unconstrained());
        assert!(!Interval::up_to(7).is_unconstrained());
        assert!(!Interval::at_least(1).is_unconstrained());
    }

    #[test]
    fn window_at_clips_at_origin() {
        let i = Interval::bounded(2, 5).unwrap();
        assert_eq!(
            i.window_at(TimePoint(10)),
            Some((TimePoint(5), TimePoint(8)))
        );
        assert_eq!(
            i.window_at(TimePoint(3)),
            Some((TimePoint(0), TimePoint(1)))
        );
        assert_eq!(
            i.window_at(TimePoint(1)),
            None,
            "even the newest admissible age predates the origin"
        );
        assert_eq!(
            Interval::all().window_at(TimePoint(4)),
            Some((TimePoint(0), TimePoint(4)))
        );
    }

    #[test]
    fn upper_bound_order() {
        assert!(UpperBound::Finite(Duration(9)) < UpperBound::Infinite);
        assert!(UpperBound::Finite(Duration(3)) < UpperBound::Finite(Duration(4)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::bounded(1, 4).unwrap().to_string(), "[1,4]");
        assert_eq!(Interval::at_least(2).to_string(), "[2,*]");
        assert_eq!(TimePoint(7).to_string(), "@7");
    }
}
