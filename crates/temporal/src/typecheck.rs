//! Sort checking of formulas against a database catalog.
//!
//! Infers one sort per variable *name* (conservative: reusing a name at two
//! different sorts is rejected even across disjoint scopes — rename
//! instead), checks atom arities and argument sorts, and restricts order
//! comparisons to integers.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rtic_relation::{Catalog, Sort, Symbol};

use crate::ast::{CmpOp, Formula, Term, Var};

/// A sort-checking failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeError {
    /// Atom over a relation the catalog does not declare.
    UnknownRelation {
        /// The missing name.
        relation: Symbol,
    },
    /// Atom arity differs from the declared schema.
    ArityMismatch {
        /// The relation.
        relation: Symbol,
        /// Declared arity.
        expected: usize,
        /// Arity used in the formula.
        found: usize,
    },
    /// A variable is used at two different sorts.
    SortConflict {
        /// The variable.
        var: Var,
        /// The sort from an earlier use.
        first: Sort,
        /// The conflicting sort.
        second: Sort,
    },
    /// A constant appears where a different sort is required.
    ConstSortMismatch {
        /// Required sort.
        expected: Sort,
        /// The constant's sort.
        found: Sort,
    },
    /// An order comparison (`<`, `<=`, `>`, `>=`) over non-integers.
    OrderOnNonInt {
        /// The offending sort.
        found: Sort,
    },
    /// A comparison between terms whose sorts cannot be reconciled.
    IncomparableSorts {
        /// Left sort.
        left: Sort,
        /// Right sort.
        right: Sort,
    },
    /// A comparison where neither side's sort is determinable (two
    /// never-elsewhere-used variables).
    UndeterminedComparison,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            TypeError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, used with {found} arguments"
            ),
            TypeError::SortConflict { var, first, second } => write!(
                f,
                "variable `{var}` used at sort {first} and at sort {second}"
            ),
            TypeError::ConstSortMismatch { expected, found } => {
                write!(f, "constant of sort {found} where {expected} is required")
            }
            TypeError::OrderOnNonInt { found } => {
                write!(f, "order comparison over sort {found} (integers only)")
            }
            TypeError::IncomparableSorts { left, right } => {
                write!(f, "comparison between sorts {left} and {right}")
            }
            TypeError::UndeterminedComparison => f.write_str(
                "comparison between variables whose sorts are not determined by any atom",
            ),
        }
    }
}

impl Error for TypeError {}

struct Env {
    sorts: BTreeMap<Var, Sort>,
}

impl Env {
    fn bind(&mut self, v: Var, sort: Sort) -> Result<(), TypeError> {
        match self.sorts.get(&v) {
            Some(&s) if s != sort => Err(TypeError::SortConflict {
                var: v,
                first: s,
                second: sort,
            }),
            _ => {
                self.sorts.insert(v, sort);
                Ok(())
            }
        }
    }

    fn term_sort(&self, t: &Term) -> Option<Sort> {
        match t {
            Term::Var(v) => self.sorts.get(v).copied(),
            Term::Const(c) => Some(c.sort()),
        }
    }

    fn require(&mut self, t: &Term, sort: Sort) -> Result<(), TypeError> {
        match t {
            Term::Var(v) => self.bind(*v, sort),
            Term::Const(c) if c.sort() == sort => Ok(()),
            Term::Const(c) => Err(TypeError::ConstSortMismatch {
                expected: sort,
                found: c.sort(),
            }),
        }
    }
}

fn walk(f: &Formula, catalog: &Catalog, env: &mut Env) -> Result<(), TypeError> {
    match f {
        Formula::True | Formula::False => Ok(()),
        Formula::Atom { relation, terms } => {
            let schema = catalog
                .schema_of(*relation)
                .ok_or(TypeError::UnknownRelation {
                    relation: *relation,
                })?;
            if schema.arity() != terms.len() {
                return Err(TypeError::ArityMismatch {
                    relation: *relation,
                    expected: schema.arity(),
                    found: terms.len(),
                });
            }
            for (i, t) in terms.iter().enumerate() {
                let sort = schema.sort_at(i).expect("arity checked");
                env.require(t, sort)?;
            }
            Ok(())
        }
        Formula::Cmp(op, a, b) => {
            let sa = env.term_sort(a);
            let sb = env.term_sort(b);
            match (sa, sb) {
                (Some(x), Some(y)) if x != y => {
                    return Err(TypeError::IncomparableSorts { left: x, right: y })
                }
                (Some(s), _) => env.require(b, s)?,
                (_, Some(s)) => env.require(a, s)?,
                (None, None) => return Err(TypeError::UndeterminedComparison),
            }
            if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                let s = env.term_sort(a).expect("bound above");
                if s != Sort::Int {
                    return Err(TypeError::OrderOnNonInt { found: s });
                }
            }
            Ok(())
        }
        Formula::Not(g)
        | Formula::Exists(_, g)
        | Formula::Forall(_, g)
        | Formula::Prev(_, g)
        | Formula::Once(_, g)
        | Formula::Hist(_, g) => walk(g, catalog, env),
        Formula::And(a, b)
        | Formula::Or(a, b)
        | Formula::Implies(a, b)
        | Formula::Since(_, a, b) => {
            walk(a, catalog, env)?;
            walk(b, catalog, env)
        }
        Formula::CountCmp { body, .. } => walk(body, catalog, env),
    }
}

/// Sort-checks `f` against `catalog`, in two passes so that comparisons may
/// precede the atoms that determine their variables' sorts. Returns the
/// inferred variable sorts.
pub fn typecheck(f: &Formula, catalog: &Catalog) -> Result<BTreeMap<Var, Sort>, TypeError> {
    let mut env = Env {
        sorts: BTreeMap::new(),
    };
    // Pass 1: atoms only, to seed variable sorts.
    let mut atom_err = None;
    f.visit(&mut |g| {
        if atom_err.is_some() {
            return;
        }
        if matches!(g, Formula::Atom { .. }) {
            if let Err(e) = walk(g, catalog, &mut env) {
                atom_err = Some(e);
            }
        }
    });
    if let Some(e) = atom_err {
        return Err(e);
    }
    // Pass 2: the full formula, comparisons included.
    walk(f, catalog, &mut env)?;
    Ok(env.sorts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::Schema;

    fn catalog() -> Catalog {
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Int)]))
            .unwrap()
            .with("q", Schema::of(&[("a", Sort::Str), ("n", Sort::Int)]))
            .unwrap()
    }

    #[test]
    fn infers_sorts_from_atoms() {
        let f = Formula::atom("q", [Term::var("a"), Term::var("n")]);
        let sorts = typecheck(&f, &catalog()).unwrap();
        assert_eq!(sorts[&Var::new("a")], Sort::Str);
        assert_eq!(sorts[&Var::new("n")], Sort::Int);
    }

    #[test]
    fn unknown_relation_rejected() {
        let f = Formula::atom("zzz", []);
        assert!(matches!(
            typecheck(&f, &catalog()),
            Err(TypeError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn arity_checked() {
        let f = Formula::atom("p", [Term::var("x"), Term::var("y")]);
        assert!(matches!(
            typecheck(&f, &catalog()),
            Err(TypeError::ArityMismatch {
                expected: 1,
                found: 2,
                ..
            })
        ));
    }

    #[test]
    fn sort_conflict_across_atoms() {
        let f = Formula::atom("p", [Term::var("v")])
            .and(Formula::atom("q", [Term::var("v"), Term::int(1)]));
        assert!(matches!(
            typecheck(&f, &catalog()),
            Err(TypeError::SortConflict { .. })
        ));
    }

    #[test]
    fn const_sort_checked_in_atom() {
        let f = Formula::atom("p", [Term::str("oops")]);
        assert!(matches!(
            typecheck(&f, &catalog()),
            Err(TypeError::ConstSortMismatch { .. })
        ));
    }

    #[test]
    fn comparison_before_atom_is_fine() {
        // x = 3 && p(x): two-pass inference seeds x: Int from p.
        let f = Formula::eq(Term::var("x"), Term::int(3)).and(Formula::atom("p", [Term::var("x")]));
        typecheck(&f, &catalog()).unwrap();
    }

    #[test]
    fn order_comparison_requires_int() {
        let f = Formula::atom("q", [Term::var("a"), Term::var("n")]).and(Formula::cmp(
            CmpOp::Lt,
            Term::var("a"),
            Term::str("z"),
        ));
        assert!(matches!(
            typecheck(&f, &catalog()),
            Err(TypeError::OrderOnNonInt { .. })
        ));
        let ok = Formula::atom("q", [Term::var("a"), Term::var("n")]).and(Formula::cmp(
            CmpOp::Lt,
            Term::var("n"),
            Term::int(10),
        ));
        typecheck(&ok, &catalog()).unwrap();
    }

    #[test]
    fn incomparable_sorts_rejected() {
        let f = Formula::atom("q", [Term::var("a"), Term::var("n")])
            .and(Formula::eq(Term::var("a"), Term::var("n")));
        assert!(matches!(
            typecheck(&f, &catalog()),
            Err(TypeError::IncomparableSorts { .. })
        ));
    }

    #[test]
    fn undetermined_comparison_rejected() {
        let f = Formula::eq(Term::var("u"), Term::var("w"));
        assert_eq!(
            typecheck(&f, &catalog()),
            Err(TypeError::UndeterminedComparison)
        );
    }

    #[test]
    fn comparison_binds_via_constant() {
        let f = Formula::eq(Term::var("u"), Term::int(3));
        let sorts = typecheck(&f, &catalog()).unwrap();
        assert_eq!(sorts[&Var::new("u")], Sort::Int);
    }
}
