//! Parser for the constraint language.
//!
//! # Grammar
//!
//! ```text
//! file        := (relation_decl | constraint)*
//! relation_decl := "relation" IDENT "(" attr ("," attr)* ")"
//! attr        := IDENT ":" ("int" | "str" | "bool")
//! constraint  := ("deny" | "assert") IDENT ":" formula
//!
//! formula     := implies
//! implies     := or ("->" implies)?                 (right-assoc)
//! or          := and ("||" and)*
//! and         := since ("&&" since)*
//! since       := unary ("since" interval? unary)*   (left-assoc)
//! unary       := "!" unary
//!              | ("prev" | "once" | "hist") interval? unary
//!              | ("exists" | "forall") IDENT ("," IDENT)* "." implies
//!              | "count" IDENT ("," IDENT)* "." "(" formula ")" cmpop INT
//!              | primary
//! primary     := "true" | "false"
//!              | IDENT "(" (term ("," term)*)? ")"  (atom)
//!              | "(" formula ")"
//!              | term cmpop term                    (comparison)
//! term        := IDENT (variable) | INT | STRING
//! cmpop       := "=" | "!=" | "<" | "<=" | ">" | ">="
//! interval    := "[" INT "," (INT | "*") "]"
//! ```
//!
//! An omitted interval is `[0,*]`. Comments run from `#` or `//` to the end
//! of the line.

mod lexer;

pub use lexer::{lex, ParseError, Spanned, Tok};

use rtic_relation::{Attribute, Catalog, Schema, Sort};

use crate::ast::{CmpOp, Formula, Term, Var};
use crate::constraint::{Constraint, Mode};
use crate::time::Interval;

/// A parsed constraint file: the declared catalog plus the constraints.
#[derive(Clone, Debug)]
pub struct ConstraintFile {
    /// Relations declared with `relation …`.
    pub catalog: Catalog,
    /// Constraints in declaration order.
    pub constraints: Vec<Constraint>,
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn here(&self) -> (u32, u32) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.eat(want) {
            Ok(())
        } else {
            match self.peek() {
                Some(got) => Err(self.error(format!("expected {want}, found {got}"))),
                None => Err(self.error(format!("expected {want}, found end of input"))),
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => match self.bump() {
                Some(Tok::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            Some(got) => Err(self.error(format!("expected identifier, found {got}"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    // ---- formulas -------------------------------------------------------

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.implies()
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.and()?;
        while self.eat(&Tok::OrOr) {
            f = f.or(self.and()?);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.since()?;
        while self.eat(&Tok::AndAnd) {
            f = f.and(self.since()?);
        }
        Ok(f)
    }

    fn since(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.unary()?;
        while self.eat(&Tok::Since) {
            let i = self.interval_opt()?;
            let rhs = self.unary()?;
            f = f.since(i, rhs);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                Ok(self.unary()?.not())
            }
            Some(Tok::Prev) => {
                self.bump();
                let i = self.interval_opt()?;
                Ok(self.unary()?.prev(i))
            }
            Some(Tok::Once) => {
                self.bump();
                let i = self.interval_opt()?;
                Ok(self.unary()?.once(i))
            }
            Some(Tok::Hist) => {
                self.bump();
                let i = self.interval_opt()?;
                Ok(self.unary()?.hist(i))
            }
            Some(Tok::Count) => {
                self.bump();
                let mut vars = vec![Var::new(self.expect_ident()?.as_str())];
                while self.eat(&Tok::Comma) {
                    vars.push(Var::new(self.expect_ident()?.as_str()));
                }
                self.expect(&Tok::Dot)?;
                self.expect(&Tok::LParen)?;
                let body = self.formula()?;
                self.expect(&Tok::RParen)?;
                let op = match self.bump() {
                    Some(Tok::Eq) => CmpOp::Eq,
                    Some(Tok::Ne) => CmpOp::Ne,
                    Some(Tok::Lt) => CmpOp::Lt,
                    Some(Tok::Le) => CmpOp::Le,
                    Some(Tok::Gt) => CmpOp::Gt,
                    Some(Tok::Ge) => CmpOp::Ge,
                    Some(got) => {
                        return Err(self.error(format!(
                            "expected a comparison operator after `count … . (…)`, found {got}"
                        )))
                    }
                    None => {
                        return Err(self.error("expected a comparison operator, found end of input"))
                    }
                };
                let threshold = match self.bump() {
                    Some(Tok::Int(n)) => n,
                    Some(got) => {
                        return Err(self.error(format!(
                            "count compares against an integer constant, found {got}"
                        )))
                    }
                    None => return Err(self.error("expected an integer, found end of input")),
                };
                Ok(body.count_cmp(vars, op, threshold))
            }
            Some(Tok::Exists) | Some(Tok::Forall) => {
                let existential = self.peek() == Some(&Tok::Exists);
                self.bump();
                let mut vars = vec![Var::new(self.expect_ident()?.as_str())];
                while self.eat(&Tok::Comma) {
                    vars.push(Var::new(self.expect_ident()?.as_str()));
                }
                self.expect(&Tok::Dot)?;
                let body = self.implies()?;
                Ok(if existential {
                    body.exists(vars)
                } else {
                    body.forall(vars)
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::True) => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::False) => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::Ident(_)) => {
                let name = self.expect_ident()?;
                if self.eat(&Tok::LParen) {
                    // Atom.
                    let mut terms = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            terms.push(self.term()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma)?;
                        }
                    }
                    Ok(Formula::atom(name.as_str(), terms))
                } else {
                    // Variable as comparison lhs.
                    self.comparison(Term::var(name.as_str()))
                }
            }
            Some(Tok::Int(_)) | Some(Tok::Str(_)) => {
                let lhs = self.term()?;
                self.comparison(lhs)
            }
            Some(got) => Err(self.error(format!("expected a formula, found {got}"))),
            None => Err(self.error("expected a formula, found end of input")),
        }
    }

    fn comparison(&mut self, lhs: Term) -> Result<Formula, ParseError> {
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(got) => {
                return Err(self.error(format!("expected a comparison operator, found {got}")))
            }
            None => return Err(self.error("expected a comparison operator, found end of input")),
        };
        self.bump();
        let rhs = self.term()?;
        Ok(Formula::Cmp(op, lhs, rhs))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(Term::var(s.as_str())),
            Some(Tok::Int(i)) => Ok(Term::int(i)),
            Some(Tok::Str(s)) => Ok(Term::str(&s)),
            Some(got) => Err(self.error(format!("expected a term, found {got}"))),
            None => Err(self.error("expected a term, found end of input")),
        }
    }

    fn interval_opt(&mut self) -> Result<Interval, ParseError> {
        if !self.eat(&Tok::LBracket) {
            return Ok(Interval::all());
        }
        let lo = match self.bump() {
            Some(Tok::Int(i)) if i >= 0 => i as u64,
            Some(got) => {
                return Err(self.error(format!("expected a non-negative bound, found {got}")))
            }
            None => return Err(self.error("expected a bound, found end of input")),
        };
        self.expect(&Tok::Comma)?;
        let interval = match self.bump() {
            Some(Tok::Star) => Interval::at_least(lo),
            Some(Tok::Int(hi)) if hi >= 0 => {
                Interval::bounded(lo, hi as u64).map_err(|e| self.error(e.to_string()))?
            }
            Some(got) => return Err(self.error(format!("expected a bound or `*`, found {got}"))),
            None => return Err(self.error("expected a bound, found end of input")),
        };
        self.expect(&Tok::RBracket)?;
        Ok(interval)
    }

    // ---- items ----------------------------------------------------------

    fn sort(&mut self) -> Result<Sort, ParseError> {
        match self.bump() {
            Some(Tok::KwInt) => Ok(Sort::Int),
            Some(Tok::KwStr) => Ok(Sort::Str),
            Some(Tok::KwBool) => Ok(Sort::Bool),
            Some(got) => Err(self.error(format!("expected a sort, found {got}"))),
            None => Err(self.error("expected a sort, found end of input")),
        }
    }

    fn relation_decl(&mut self, catalog: &mut Catalog) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let attr = self.expect_ident()?;
            self.expect(&Tok::Colon)?;
            let sort = self.sort()?;
            attrs.push(Attribute::new(attr.as_str(), sort));
            if self.eat(&Tok::RParen) {
                break;
            }
            self.expect(&Tok::Comma)?;
        }
        let schema = Schema::new(attrs).map_err(|e| self.error(e.to_string()))?;
        catalog
            .declare(name.as_str(), schema)
            .map_err(|e| self.error(e.to_string()))
    }

    fn constraint(&mut self, mode: Mode) -> Result<Constraint, ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Tok::Colon)?;
        let body = self.formula()?;
        Ok(Constraint {
            name: name.as_str().into(),
            mode,
            body,
        })
    }

    fn file(&mut self) -> Result<ConstraintFile, ParseError> {
        let mut catalog = Catalog::new();
        let mut constraints = Vec::new();
        while !self.at_end() {
            match self.peek() {
                Some(Tok::Relation) => {
                    self.bump();
                    self.relation_decl(&mut catalog)?;
                }
                Some(Tok::Deny) => {
                    self.bump();
                    constraints.push(self.constraint(Mode::Deny)?);
                }
                Some(Tok::Assert) => {
                    self.bump();
                    constraints.push(self.constraint(Mode::Assert)?);
                }
                Some(got) => {
                    return Err(self.error(format!(
                        "expected `relation`, `deny` or `assert`, found {got}"
                    )))
                }
                None => break,
            }
        }
        Ok(ConstraintFile {
            catalog,
            constraints,
        })
    }
}

/// Parses a single formula (for tests and embedding).
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::new(input)?;
    let f = p.formula()?;
    if !p.at_end() {
        return Err(p.error("trailing input after formula"));
    }
    Ok(f)
}

/// Parses a single `deny name: …` / `assert name: …` constraint.
pub fn parse_constraint(input: &str) -> Result<Constraint, ParseError> {
    let mut p = Parser::new(input)?;
    let mode = if p.eat(&Tok::Deny) {
        Mode::Deny
    } else if p.eat(&Tok::Assert) {
        Mode::Assert
    } else {
        return Err(p.error("expected `deny` or `assert`"));
    };
    let c = p.constraint(mode)?;
    if !p.at_end() {
        return Err(p.error("trailing input after constraint"));
    }
    Ok(c)
}

/// Parses a whole constraint file (relation declarations + constraints).
pub fn parse_file(input: &str) -> Result<ConstraintFile, ParseError> {
    Parser::new(input)?.file()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::var;

    #[test]
    fn atom_and_constants() {
        let f = parse_formula(r#"reserved(p, "jfk", 3)"#).unwrap();
        assert_eq!(
            f,
            Formula::atom("reserved", [Term::var("p"), Term::str("jfk"), Term::int(3)])
        );
    }

    #[test]
    fn empty_atom() {
        assert_eq!(
            parse_formula("alarm()").unwrap(),
            Formula::atom("alarm", [])
        );
    }

    #[test]
    fn precedence_and_over_or_over_implies() {
        let f = parse_formula("p() && q() || r() -> s()").unwrap();
        let expect = Formula::atom("p", [])
            .and(Formula::atom("q", []))
            .or(Formula::atom("r", []))
            .implies(Formula::atom("s", []));
        assert_eq!(f, expect);
    }

    #[test]
    fn implies_right_assoc() {
        let f = parse_formula("a() -> b() -> c()").unwrap();
        let expect =
            Formula::atom("a", []).implies(Formula::atom("b", []).implies(Formula::atom("c", [])));
        assert_eq!(f, expect);
    }

    #[test]
    fn since_binds_tighter_than_and() {
        let f = parse_formula("p() since q() && r()").unwrap();
        let expect = Formula::atom("p", [])
            .since(Interval::all(), Formula::atom("q", []))
            .and(Formula::atom("r", []));
        assert_eq!(f, expect);
    }

    #[test]
    fn since_left_assoc_with_intervals() {
        let f = parse_formula("p() since[1,2] q() since[3,*] r()").unwrap();
        let expect = Formula::atom("p", [])
            .since(Interval::bounded(1, 2).unwrap(), Formula::atom("q", []))
            .since(Interval::at_least(3), Formula::atom("r", []));
        assert_eq!(f, expect);
    }

    #[test]
    fn unary_operators_and_default_interval() {
        let f = parse_formula("once p() && hist[0,4] q() && prev[2,2] r()").unwrap();
        let expect = Formula::atom("p", [])
            .once(Interval::all())
            .and(Formula::atom("q", []).hist(Interval::up_to(4)))
            .and(Formula::atom("r", []).prev(Interval::exactly(2)));
        assert_eq!(f, expect);
    }

    #[test]
    fn quantifier_body_extends_right() {
        let f = parse_formula("exists x, y . p(x) && q(y)").unwrap();
        let expect = Formula::atom("p", [Term::var("x")])
            .and(Formula::atom("q", [Term::var("y")]))
            .exists([var("x"), var("y")]);
        assert_eq!(f, expect);
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            parse_formula("x = 3").unwrap(),
            Formula::eq(Term::var("x"), Term::int(3))
        );
        assert_eq!(
            parse_formula("3 <= x").unwrap(),
            Formula::cmp(CmpOp::Le, Term::int(3), Term::var("x"))
        );
        assert_eq!(
            parse_formula(r#"n != "x""#).unwrap(),
            Formula::cmp(CmpOp::Ne, Term::var("n"), Term::str("x"))
        );
    }

    #[test]
    fn parenthesized_since_rhs() {
        let f = parse_formula("p() since (q() since r())").unwrap();
        let inner = Formula::atom("q", []).since(Interval::all(), Formula::atom("r", []));
        assert_eq!(f, Formula::atom("p", []).since(Interval::all(), inner));
    }

    #[test]
    fn error_positions_and_messages() {
        let e = parse_formula("p( &&").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("term"));
        let e = parse_formula("p() q()").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_formula("once[5,2] p()").unwrap_err();
        assert!(e.message.contains("empty"));
        let e = parse_formula("bare").unwrap_err();
        assert!(e.message.contains("comparison"));
    }

    #[test]
    fn negative_interval_bound_rejected() {
        assert!(parse_formula("once[-1,2] p()").is_err());
    }

    #[test]
    fn count_aggregate_parses() {
        let f = parse_formula("count j . (reserved(p, j)) >= 3").unwrap();
        assert_eq!(
            f,
            Formula::atom("reserved", [Term::var("p"), Term::var("j")]).count_cmp(
                [var("j")],
                CmpOp::Ge,
                3
            )
        );
        // Binds tighter than && via its mandatory parentheses.
        let g = parse_formula("p(x) && count y . (q(x, y)) = 0").unwrap();
        assert!(matches!(g, Formula::And(..)));
        // Round-trips through the printer.
        assert_eq!(parse_formula(&f.to_string()).unwrap(), f);
        // Errors.
        assert!(
            parse_formula("count j . reserved(p, j) >= 3").is_err(),
            "body needs parens"
        );
        assert!(
            parse_formula("count j . (p(j)) >= x").is_err(),
            "constant threshold only"
        );
        assert!(parse_formula("count . (p(j)) >= 1").is_err());
    }

    #[test]
    fn parse_constraint_modes() {
        let c = parse_constraint("deny overdue: loan(b, m) && !ret(b)").unwrap();
        assert_eq!(c.mode, Mode::Deny);
        assert_eq!(c.name.as_str(), "overdue");
        let a = parse_constraint("assert ok: true").unwrap();
        assert_eq!(a.mode, Mode::Assert);
    }

    #[test]
    fn parse_file_with_declarations() {
        let src = r#"
            # reservations schema
            relation reserved(passenger: str, flight: int)
            relation confirmed(passenger: str, flight: int)

            deny unconfirmed:
                once[2,*] reserved(p, f) && reserved(p, f) && !once confirmed(p, f)
            assert sane: true
        "#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.catalog.len(), 2);
        assert_eq!(file.constraints.len(), 2);
        assert_eq!(file.constraints[0].name.as_str(), "unconfirmed");
    }

    #[test]
    fn duplicate_relation_decl_is_error() {
        let src = "relation r(x: int) relation r(x: int)";
        assert!(parse_file(src).is_err());
    }

    #[test]
    fn file_rejects_stray_tokens() {
        assert!(parse_file("relation r(x: int) 42").is_err());
    }
}
