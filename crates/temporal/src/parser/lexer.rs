//! Lexer for the constraint language.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier (relation, variable, or constraint name).
    Ident(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// Quoted string literal (content, unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `*`
    Star,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Keywords.
    Deny,
    /// `assert`
    Assert,
    /// `relation`
    Relation,
    /// `exists`
    Exists,
    /// `forall`
    Forall,
    /// `prev`
    Prev,
    /// `once`
    Once,
    /// `hist`
    Hist,
    /// `since`
    Since,
    /// `count`
    Count,
    /// `true`
    True,
    /// `false`
    False,
    /// sort keyword `int`
    KwInt,
    /// sort keyword `str`
    KwStr,
    /// sort keyword `bool`
    KwBool,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Star => f.write_str("`*`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::OrOr => f.write_str("`||`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Deny => f.write_str("`deny`"),
            Tok::Assert => f.write_str("`assert`"),
            Tok::Relation => f.write_str("`relation`"),
            Tok::Exists => f.write_str("`exists`"),
            Tok::Forall => f.write_str("`forall`"),
            Tok::Prev => f.write_str("`prev`"),
            Tok::Once => f.write_str("`once`"),
            Tok::Hist => f.write_str("`hist`"),
            Tok::Since => f.write_str("`since`"),
            Tok::Count => f.write_str("`count`"),
            Tok::True => f.write_str("`true`"),
            Tok::False => f.write_str("`false`"),
            Tok::KwInt => f.write_str("`int`"),
            Tok::KwStr => f.write_str("`str`"),
            Tok::KwBool => f.write_str("`bool`"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A lexing or parsing failure with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "deny" => Tok::Deny,
        "assert" => Tok::Assert,
        "relation" => Tok::Relation,
        "exists" => Tok::Exists,
        "forall" => Tok::Forall,
        "prev" => Tok::Prev,
        "once" => Tok::Once,
        "hist" => Tok::Hist,
        "since" => Tok::Since,
        "count" => Tok::Count,
        "true" => Tok::True,
        "false" => Tok::False,
        "int" => Tok::KwInt,
        "str" => Tok::KwStr,
        "bool" => Tok::KwBool,
        _ => return None,
    })
}

/// Tokenizes `input`. Comments run from `#` or `//` to end of line.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(ParseError { message: format!($($arg)*), line, col })
        };
    }
    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col);
                continue;
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
                continue;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
                continue;
            }
            _ => {}
        }
        let tok = match c {
            '(' => {
                advance(&mut i, &mut line, &mut col);
                Tok::LParen
            }
            ')' => {
                advance(&mut i, &mut line, &mut col);
                Tok::RParen
            }
            '[' => {
                advance(&mut i, &mut line, &mut col);
                Tok::LBracket
            }
            ']' => {
                advance(&mut i, &mut line, &mut col);
                Tok::RBracket
            }
            ',' => {
                advance(&mut i, &mut line, &mut col);
                Tok::Comma
            }
            '.' => {
                advance(&mut i, &mut line, &mut col);
                Tok::Dot
            }
            ':' => {
                advance(&mut i, &mut line, &mut col);
                Tok::Colon
            }
            '*' => {
                advance(&mut i, &mut line, &mut col);
                Tok::Star
            }
            '&' => {
                if chars.get(i + 1) != Some(&'&') {
                    err!("expected `&&`");
                }
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                Tok::AndAnd
            }
            '|' => {
                if chars.get(i + 1) != Some(&'|') {
                    err!("expected `||`");
                }
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                Tok::OrOr
            }
            '!' => {
                advance(&mut i, &mut line, &mut col);
                if chars.get(i) == Some(&'=') {
                    advance(&mut i, &mut line, &mut col);
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            '=' => {
                advance(&mut i, &mut line, &mut col);
                Tok::Eq
            }
            '<' => {
                advance(&mut i, &mut line, &mut col);
                if chars.get(i) == Some(&'=') {
                    advance(&mut i, &mut line, &mut col);
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                advance(&mut i, &mut line, &mut col);
                if chars.get(i) == Some(&'=') {
                    advance(&mut i, &mut line, &mut col);
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '-' => {
                advance(&mut i, &mut line, &mut col);
                match chars.get(i) {
                    Some(&'>') => {
                        advance(&mut i, &mut line, &mut col);
                        Tok::Arrow
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let mut n = String::from("-");
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            n.push(chars[i]);
                            advance(&mut i, &mut line, &mut col);
                        }
                        match n.parse() {
                            Ok(v) => Tok::Int(v),
                            Err(_) => err!("integer literal `{n}` out of range"),
                        }
                    }
                    _ => err!("expected `->` or a negative integer after `-`"),
                }
            }
            '"' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None | Some(&'\n') => err!("unterminated string literal"),
                        Some(&'"') => {
                            advance(&mut i, &mut line, &mut col);
                            break;
                        }
                        Some(&'\\') => {
                            advance(&mut i, &mut line, &mut col);
                            match chars.get(i) {
                                Some(&'"') => s.push('"'),
                                Some(&'\\') => s.push('\\'),
                                Some(&'n') => s.push('\n'),
                                _ => err!("unknown escape in string literal"),
                            }
                            advance(&mut i, &mut line, &mut col);
                        }
                        Some(&ch) => {
                            s.push(ch);
                            advance(&mut i, &mut line, &mut col);
                        }
                    }
                }
                Tok::Str(s)
            }
            d if d.is_ascii_digit() => {
                let mut n = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    n.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                match n.parse() {
                    Ok(v) => Tok::Int(v),
                    Err(_) => err!("integer literal `{n}` out of range"),
                }
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                keyword(&s).unwrap_or(Tok::Ident(s))
            }
            other => err!("unexpected character `{other}`"),
        };
        out.push(Spanned {
            tok,
            line: tline,
            col: tcol,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            toks("&& || ! -> = != < <= > >= ( ) [ ] , . : *"),
            vec![
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Arrow,
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::LParen,
                Tok::RParen,
                Tok::LBracket,
                Tok::RBracket,
                Tok::Comma,
                Tok::Dot,
                Tok::Colon,
                Tok::Star,
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("deny denyx since sinces"),
            vec![
                Tok::Deny,
                Tok::Ident("denyx".into()),
                Tok::Since,
                Tok::Ident("sinces".into())
            ]
        );
    }

    #[test]
    fn integers_including_negative() {
        assert_eq!(
            toks("0 42 -7"),
            vec![Tok::Int(0), Tok::Int(42), Tok::Int(-7)]
        );
    }

    #[test]
    fn bang_eq_is_one_token() {
        assert_eq!(toks("!= ! ="), vec![Tok::Ne, Tok::Bang, Tok::Eq]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""jfk" "a\"b" "n\\l""#),
            vec![
                Tok::Str("jfk".into()),
                Tok::Str("a\"b".into()),
                Tok::Str("n\\l".into())
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
        assert!(lex("\"oops\nmore\"").is_err(), "newline ends strings");
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a # comment\nb // more\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into())
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn stray_ampersand_is_error() {
        let e = lex("a & b").unwrap_err();
        assert!(e.message.contains("&&"));
    }

    #[test]
    fn lone_dash_is_error() {
        assert!(lex("a - b").is_err());
    }
}
