//! Normalization: desugar `->` and `forall`, simplify constants and double
//! negation.
//!
//! The checker compilers (`rtic-core`'s and the naive evaluator) operate on
//! *normalized* formulas: no [`Formula::Implies`], no [`Formula::Forall`],
//! no `!!f`, and no redundant `true`/`false` operands. Normalization
//! preserves semantics exactly (it is pure sugar elimination plus boolean
//! identities).

use crate::ast::Formula;

/// Normalizes a formula; see the module docs for the guarantees.
pub fn normalize(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => f.clone(),
        // Negation is pushed through the boolean skeleton (De Morgan) and
        // into comparisons, so that `assert`-style bodies like
        // `!(a && !b)` become the safe-range `!a || b`. Negation stops at
        // atoms, quantifiers, and temporal operators.
        Formula::Not(g) => match normalize(g) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            Formula::And(a, b) => normalize(&Formula::Not(a)).or(normalize(&Formula::Not(b))),
            Formula::Or(a, b) => normalize(&Formula::Not(a)).and(normalize(&Formula::Not(b))),
            Formula::Cmp(op, a, b) => Formula::Cmp(op.negated(), a, b),
            // !(count … ⊙ n) ≡ count … ⊙̄ n.
            Formula::CountCmp {
                vars,
                body,
                op,
                threshold,
            } => Formula::CountCmp {
                vars,
                body,
                op: op.negated(),
                threshold,
            },
            g => g.not(),
        },
        Formula::And(a, b) => match (normalize(a), normalize(b)) {
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (Formula::True, g) | (g, Formula::True) => g,
            (a, b) => a.and(b),
        },
        Formula::Or(a, b) => match (normalize(a), normalize(b)) {
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (Formula::False, g) | (g, Formula::False) => g,
            (a, b) => a.or(b),
        },
        // a -> b  ≡  !a || b
        Formula::Implies(a, b) => normalize(&Formula::Or(
            Box::new(Formula::Not(a.clone())),
            Box::new((**b).clone()),
        )),
        Formula::Exists(vs, g) => match normalize(g) {
            // exists x . false  ≡  false; exists x . true ≡ true over a
            // nonempty domain (ours is infinite).
            Formula::False => Formula::False,
            Formula::True => Formula::True,
            g => g.exists(vs.iter().copied()),
        },
        // forall x . f  ≡  !(exists x . !f)
        Formula::Forall(vs, g) => normalize(&Formula::Not(Box::new(Formula::Exists(
            vs.clone(),
            Box::new(Formula::Not(g.clone())),
        )))),
        Formula::Prev(i, g) => match normalize(g) {
            // prev of false can never hold; prev of true still asserts a
            // previous state exists at an admissible age, so it stays.
            Formula::False => Formula::False,
            g => g.prev(*i),
        },
        Formula::Once(i, g) => match normalize(g) {
            Formula::False => Formula::False,
            g => g.once(*i),
        },
        Formula::Hist(i, g) => {
            // hist of true is a tautology over whatever window exists.
            match normalize(g) {
                Formula::True => Formula::True,
                g => g.hist(*i),
            }
        }
        Formula::CountCmp {
            vars,
            body,
            op,
            threshold,
        } => match normalize(body) {
            // Counting an unsatisfiable body yields zero everywhere.
            Formula::False => {
                if op.eval(
                    rtic_relation::Value::Int(0),
                    rtic_relation::Value::Int(*threshold),
                ) {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            body => Formula::CountCmp {
                vars: vars.clone(),
                body: Box::new(body),
                op: *op,
                threshold: *threshold,
            },
        },
        Formula::Since(i, a, b) => match (normalize(a), normalize(b)) {
            // Anchors can never be created by a false anchor formula.
            (_, Formula::False) => Formula::False,
            // `true since[I] g` is exactly `once[I] g`.
            (Formula::True, g) => g.once(*i),
            (a, b) => a.since(*i, b),
        },
    }
}

/// Renames quantified variables apart: after this, every quantifier binds
/// fresh names distinct from all free variables and from every other
/// quantifier's names. Evaluators rely on this to ignore shadowing.
///
/// Fresh names take the form `x__1`, `x__2`, … derived from the original
/// name; the counter is global to the formula, so the result is
/// deterministic.
pub fn rename_apart(f: &Formula) -> Formula {
    use crate::ast::{Term, Var};
    use std::collections::BTreeMap;

    fn rename_term(t: &Term, sub: &BTreeMap<Var, Var>) -> Term {
        match t {
            Term::Var(v) => Term::Var(*sub.get(v).unwrap_or(v)),
            c => *c,
        }
    }

    fn go(f: &Formula, sub: &BTreeMap<Var, Var>, counter: &mut usize) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Atom { relation, terms } => Formula::Atom {
                relation: *relation,
                terms: terms.iter().map(|t| rename_term(t, sub)).collect(),
            },
            Formula::Cmp(op, a, b) => Formula::Cmp(*op, rename_term(a, sub), rename_term(b, sub)),
            Formula::Not(g) => go(g, sub, counter).not(),
            Formula::And(a, b) => go(a, sub, counter).and(go(b, sub, counter)),
            Formula::Or(a, b) => go(a, sub, counter).or(go(b, sub, counter)),
            Formula::Implies(a, b) => go(a, sub, counter).implies(go(b, sub, counter)),
            Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
                let mut inner_sub = sub.clone();
                let fresh: Vec<Var> = vs
                    .iter()
                    .map(|v| {
                        *counter += 1;
                        let fresh = Var::new(format!("{}__{}", v.name(), counter).as_str());
                        inner_sub.insert(*v, fresh);
                        fresh
                    })
                    .collect();
                let body = go(g, &inner_sub, counter);
                if matches!(f, Formula::Exists(..)) {
                    body.exists(fresh)
                } else {
                    body.forall(fresh)
                }
            }
            Formula::Prev(i, g) => go(g, sub, counter).prev(*i),
            Formula::Once(i, g) => go(g, sub, counter).once(*i),
            Formula::Hist(i, g) => go(g, sub, counter).hist(*i),
            Formula::Since(i, a, b) => go(a, sub, counter).since(*i, go(b, sub, counter)),
            Formula::CountCmp {
                vars,
                body,
                op,
                threshold,
            } => {
                let mut inner_sub = sub.clone();
                let fresh: Vec<Var> = vars
                    .iter()
                    .map(|v| {
                        *counter += 1;
                        let fresh = Var::new(format!("{}__{}", v.name(), counter).as_str());
                        inner_sub.insert(*v, fresh);
                        fresh
                    })
                    .collect();
                go(body, &inner_sub, counter).count_cmp(fresh, *op, *threshold)
            }
        }
    }

    go(f, &BTreeMap::new(), &mut 0)
}

/// Whether a formula is already in normal form.
pub fn is_normalized(f: &Formula) -> bool {
    let mut ok = true;
    f.visit(&mut |g| match g {
        Formula::Implies(..) | Formula::Forall(..) => ok = false,
        Formula::Not(inner) => {
            if matches!(
                **inner,
                Formula::Not(_)
                    | Formula::True
                    | Formula::False
                    | Formula::And(..)
                    | Formula::Or(..)
                    | Formula::Cmp(..)
                    | Formula::CountCmp { .. }
            ) {
                ok = false;
            }
        }
        _ => {}
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{var, Term};
    use crate::time::Interval;

    fn p() -> Formula {
        Formula::atom("p", [Term::var("x")])
    }

    fn q() -> Formula {
        Formula::atom("q", [Term::var("x")])
    }

    #[test]
    fn implies_desugars() {
        let n = normalize(&p().implies(q()));
        assert_eq!(n, p().not().or(q()));
    }

    #[test]
    fn forall_desugars() {
        let n = normalize(&p().forall([var("x")]));
        assert_eq!(n, p().not().exists([var("x")]).not());
    }

    #[test]
    fn double_negation_collapses() {
        assert_eq!(normalize(&p().not().not()), p());
        assert_eq!(normalize(&p().not().not().not()), p().not());
    }

    #[test]
    fn negation_pushes_through_de_morgan() {
        assert_eq!(normalize(&p().and(q()).not()), p().not().or(q().not()));
        assert_eq!(normalize(&p().or(q()).not()), p().not().and(q().not()));
        // !(p -> q) == p && !q
        assert_eq!(normalize(&p().implies(q()).not()), p().and(q().not()));
    }

    #[test]
    fn negated_comparison_flips_operator() {
        use crate::ast::CmpOp;
        let lt = Formula::cmp(CmpOp::Lt, Term::var("x"), Term::int(3));
        assert_eq!(
            normalize(&lt.not()),
            Formula::cmp(CmpOp::Ge, Term::var("x"), Term::int(3))
        );
    }

    #[test]
    fn negation_stops_at_quantifiers_and_temporal() {
        let f = p().exists([var("x")]).not();
        assert_eq!(normalize(&f), f, "negated exists stays");
        let g = p().once(Interval::all()).not();
        assert_eq!(normalize(&g), g, "negated once stays");
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(normalize(&p().and(Formula::True)), p());
        assert_eq!(normalize(&p().and(Formula::False)), Formula::False);
        assert_eq!(normalize(&p().or(Formula::False)), p());
        assert_eq!(normalize(&p().or(Formula::True)), Formula::True);
        assert_eq!(normalize(&Formula::True.not()), Formula::False);
    }

    #[test]
    fn temporal_constant_folding() {
        let i = Interval::up_to(3);
        assert_eq!(normalize(&Formula::False.once(i)), Formula::False);
        assert_eq!(normalize(&Formula::True.hist(i)), Formula::True);
        assert_eq!(normalize(&p().since(i, Formula::False)), Formula::False);
        assert_eq!(normalize(&Formula::True.since(i, q())), q().once(i));
        // prev true is NOT folded: it asserts a previous state exists.
        assert_eq!(normalize(&Formula::True.prev(i)), Formula::True.prev(i));
    }

    #[test]
    fn normalized_detection() {
        assert!(is_normalized(&p().and(q())));
        assert!(!is_normalized(&p().implies(q())));
        assert!(!is_normalized(&p().forall([var("x")])));
        assert!(!is_normalized(&p().not().not()));
        assert!(is_normalized(&normalize(
            &p().implies(q().forall([var("x")]))
        )));
    }

    #[test]
    fn rename_apart_freshens_quantifiers() {
        // exists x . (p(x) && exists x . q(x, y))
        let inner = Formula::atom("q", [Term::var("x"), Term::var("y")]).exists([var("x")]);
        let f = p().and(inner).exists([var("x")]);
        let r = rename_apart(&f);
        // Free variable y untouched; the two quantifiers bind distinct names.
        assert!(r.free_vars().contains(&var("y")));
        let mut quantified = Vec::new();
        r.visit(&mut |g| {
            if let Formula::Exists(vs, _) = g {
                quantified.extend(vs.iter().copied());
            }
        });
        assert_eq!(quantified.len(), 2);
        assert_ne!(quantified[0], quantified[1]);
        assert!(!quantified.contains(&var("x")), "original name replaced");
        assert!(
            !quantified.contains(&var("y")),
            "fresh names avoid free vars"
        );
    }

    #[test]
    fn rename_apart_preserves_free_vars_and_structure() {
        let f = p().and(q()).once(Interval::up_to(2));
        assert_eq!(rename_apart(&f), f, "no quantifiers, no change");
    }

    #[test]
    fn rename_apart_is_capture_free_for_shadowed_use() {
        // exists x . p(x) — inner atom follows the fresh name.
        let f = p().exists([var("x")]);
        let r = rename_apart(&f);
        if let Formula::Exists(vs, body) = &r {
            assert_eq!(body.free_vars().into_iter().collect::<Vec<_>>(), vs.clone());
        } else {
            panic!("expected exists");
        }
    }

    #[test]
    fn negated_count_flips_the_operator() {
        use crate::ast::CmpOp;
        let c = q().count_cmp([var("x")], CmpOp::Ge, 2);
        assert_eq!(
            normalize(&c.clone().not()),
            q().count_cmp([var("x")], CmpOp::Lt, 2)
        );
        // count of false folds by comparing 0 against the threshold.
        let z = Formula::False.count_cmp([var("x")], CmpOp::Lt, 1);
        assert_eq!(normalize(&z), Formula::True);
        let z = Formula::False.count_cmp([var("x")], CmpOp::Ge, 1);
        assert_eq!(normalize(&z), Formula::False);
    }

    #[test]
    fn normalize_is_idempotent() {
        let f = p().implies(q()).forall([var("x")]).once(Interval::all());
        let n1 = normalize(&f);
        assert_eq!(normalize(&n1), n1);
    }
}
