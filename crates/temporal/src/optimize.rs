//! Peephole optimization of temporal formulas.
//!
//! Rewrites that are **provably equivalence-preserving under the
//! point-based semantics with arbitrary clock gaps** — a deliberately
//! conservative set, because many "obvious" metric identities fail on
//! sparse histories. For example, `once[0,a] once[0,b] f` is *not*
//! `once[0,a+b] f`: collapsing the two hops requires an intermediate
//! *state* at most `a` old, which a gap can remove. The rules here avoid
//! any such dependence on state existence:
//!
//! * `once[0,∞] once[0,∞] f → once[0,∞] f` (the inner witness state is the
//!   outer witness; dually for `hist[0,∞]`);
//! * `once[0,0] f → f` and `hist[0,0] f → f` (the only admissible age is
//!   now, and the current state always exists);
//! * `since[0,0]` degenerates to its anchor: `f since[0,0] g → g`;
//! * `once[0,∞] hist[0,∞]`-style absorption is **not** applied (not an
//!   identity);
//! * operand rewrites are applied recursively, after
//!   [`crate::normalize::normalize`]-style boolean folding has run.
//!
//! Every rule is validated two ways: unit tests here, and the randomized
//! cross-checker equivalence suite in `rtic-core`, which runs optimized
//! and unoptimized compilations of the same constraint against random
//! histories.

use crate::ast::Formula;
use crate::time::Interval;

fn is_all(i: &Interval) -> bool {
    i.is_unconstrained()
}

fn is_now(i: &Interval) -> bool {
    i.lo().0 == 0 && i.hi().finite().is_some_and(|d| d.0 == 0)
}

/// Applies the proven peephole rewrites bottom-up. Idempotent; preserves
/// normal form.
///
/// Note the rewrites can make a formula *more* permissive to the safety
/// analysis (e.g. `hist[0,∞] hist[0,∞] f` collapses to a single filter,
/// and `once[0,0] f` to plain `f`) — optimization runs before the safety
/// check, so such formulas compile where their unoptimized forms would
/// not.
pub fn optimize(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Cmp(..) => f.clone(),
        Formula::Not(g) => optimize(g).not(),
        Formula::And(a, b) => optimize(a).and(optimize(b)),
        Formula::Or(a, b) => optimize(a).or(optimize(b)),
        Formula::Implies(a, b) => optimize(a).implies(optimize(b)),
        Formula::Exists(vs, g) => optimize(g).exists(vs.iter().copied()),
        Formula::Forall(vs, g) => optimize(g).forall(vs.iter().copied()),
        Formula::Prev(i, g) => optimize(g).prev(*i),
        Formula::Once(i, g) => {
            let g = optimize(g);
            if is_now(i) {
                // once[0,0] f ≡ f: only the current state has age 0 … on a
                // strictly increasing clock.
                return g;
            }
            match (&g, is_all(i)) {
                // once once f ≡ once f (unconstrained): the inner witness
                // state serves as the outer one (j = k).
                (Formula::Once(ii, inner), true) if is_all(ii) => (**inner).clone().once(*i),
                _ => g.once(*i),
            }
        }
        Formula::Hist(i, g) => {
            let g = optimize(g);
            if is_now(i) {
                // hist[0,0] f ≡ f: the window is exactly the current state.
                return g;
            }
            match (&g, is_all(i)) {
                // hist hist f ≡ hist f (unconstrained): both say "at every
                // past state" — the nesting quantifies over a subset.
                (Formula::Hist(ii, inner), true) if is_all(ii) => (**inner).clone().hist(*i),
                _ => g.hist(*i),
            }
        }
        Formula::CountCmp {
            vars,
            body,
            op,
            threshold,
        } => optimize(body).count_cmp(vars.iter().copied(), *op, *threshold),
        Formula::Since(i, a, b) => {
            let a = optimize(a);
            let b = optimize(b);
            if is_now(i) {
                // f since[0,0] g ≡ g: the anchor must be the current state,
                // and the continuity condition is then vacuous.
                return b;
            }
            a.since(*i, b)
        }
    }
}

/// Whether [`optimize`] would change the formula (for explain output).
pub fn is_optimized(f: &Formula) -> bool {
    optimize(f) == *f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    fn p() -> Formula {
        Formula::atom("p", [Term::var("x")])
    }

    #[test]
    fn unconstrained_once_collapses() {
        let f = p().once(Interval::all()).once(Interval::all());
        assert_eq!(optimize(&f), p().once(Interval::all()));
        // Triple nesting collapses fully (bottom-up).
        let g = f.once(Interval::all());
        assert_eq!(optimize(&g), p().once(Interval::all()));
    }

    #[test]
    fn metric_once_does_not_collapse() {
        // once[0,2] once[0,3] p is NOT once[0,5] p on gapped clocks.
        let f = p().once(Interval::up_to(3)).once(Interval::up_to(2));
        assert_eq!(optimize(&f), f);
        // Outer unconstrained over inner metric keeps both too: the inner
        // bound is relative to the witness state.
        let g = p().once(Interval::up_to(3)).once(Interval::all());
        assert_eq!(optimize(&g), g);
    }

    #[test]
    fn point_interval_operators_degenerate() {
        let now = Interval::exactly(0);
        assert_eq!(optimize(&p().once(now)), p());
        assert_eq!(optimize(&p().hist(now)), p());
        let q = Formula::atom("q", [Term::var("x")]);
        assert_eq!(optimize(&p().since(now, q.clone())), q);
        // prev[0,0] is NOT rewritten: ages to the previous state are ≥ 1 on
        // a strictly increasing clock, so it is unsatisfiable — but that is
        // a vacuity, not an identity we fold (the checker handles it).
        assert_eq!(optimize(&p().prev(now)), p().prev(now));
    }

    #[test]
    fn hist_collapse_mirrors_once() {
        let f = p().hist(Interval::all()).hist(Interval::all());
        assert_eq!(optimize(&f), p().hist(Interval::all()));
        let g = p().hist(Interval::up_to(4)).hist(Interval::all());
        assert_eq!(optimize(&g), g, "metric inner bound blocks the collapse");
    }

    #[test]
    fn rewrites_apply_under_connectives() {
        let f = p()
            .once(Interval::all())
            .once(Interval::all())
            .and(p().hist(Interval::exactly(0)));
        assert_eq!(optimize(&f), p().once(Interval::all()).and(p()));
    }

    #[test]
    fn optimize_is_idempotent() {
        let f = p()
            .once(Interval::all())
            .once(Interval::all())
            .since(Interval::up_to(3), p().hist(Interval::exactly(0)));
        let o = optimize(&f);
        assert_eq!(optimize(&o), o);
        assert!(is_optimized(&o));
        assert!(!is_optimized(&f));
    }
}
