//! Pretty-printing of formulas in the concrete constraint syntax.
//!
//! The printer emits exactly the grammar accepted by [`crate::parser`], with
//! minimal parentheses, so `parse(print(f))` reproduces `f` up to the
//! parser's associativity normalization (round-trip is property-tested).

use std::fmt;

use crate::ast::{Formula, Var};

/// Binding strengths, loosest first. Quantifiers print like prefix binders
/// whose body extends maximally right, so they live at the loosest level.
const PREC_IMPLIES: u8 = 1;
const PREC_OR: u8 = 2;
const PREC_AND: u8 = 3;
const PREC_SINCE: u8 = 4;
const PREC_UNARY: u8 = 5;

fn fmt_vars(vs: &[Var], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{v}")?;
    }
    Ok(())
}

fn fmt_interval(i: &crate::time::Interval, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if i.is_unconstrained() {
        Ok(())
    } else {
        write!(f, "{i}")
    }
}

fn fmt_prec(fla: &Formula, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let own = match fla {
        Formula::Implies(..) | Formula::Exists(..) | Formula::Forall(..) => PREC_IMPLIES,
        // The count comparison is self-delimiting on the left (keyword) but
        // its trailing `⊙ n` must not be captured by a tighter parent.
        Formula::CountCmp { .. } => PREC_IMPLIES,
        Formula::Or(..) => PREC_OR,
        Formula::And(..) => PREC_AND,
        Formula::Since(..) => PREC_SINCE,
        Formula::Not(..) | Formula::Prev(..) | Formula::Once(..) | Formula::Hist(..) => PREC_UNARY,
        _ => u8::MAX,
    };
    let parens = own < parent;
    if parens {
        f.write_str("(")?;
    }
    match fla {
        Formula::True => f.write_str("true")?,
        Formula::False => f.write_str("false")?,
        Formula::Atom { relation, terms } => {
            write!(f, "{relation}(")?;
            for (i, t) in terms.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
            f.write_str(")")?;
        }
        Formula::Cmp(op, a, b) => write!(f, "{a} {op} {b}")?,
        Formula::Not(g) => {
            f.write_str("!")?;
            fmt_prec(g, PREC_UNARY + 1, f)?;
        }
        Formula::And(a, b) => {
            fmt_prec(a, PREC_AND, f)?;
            f.write_str(" && ")?;
            fmt_prec(b, PREC_AND + 1, f)?;
        }
        Formula::Or(a, b) => {
            fmt_prec(a, PREC_OR, f)?;
            f.write_str(" || ")?;
            fmt_prec(b, PREC_OR + 1, f)?;
        }
        Formula::Implies(a, b) => {
            fmt_prec(a, PREC_IMPLIES + 1, f)?;
            f.write_str(" -> ")?;
            fmt_prec(b, PREC_IMPLIES, f)?;
        }
        Formula::Exists(vs, g) => {
            f.write_str("exists ")?;
            fmt_vars(vs, f)?;
            f.write_str(" . ")?;
            fmt_prec(g, PREC_IMPLIES, f)?;
        }
        Formula::Forall(vs, g) => {
            f.write_str("forall ")?;
            fmt_vars(vs, f)?;
            f.write_str(" . ")?;
            fmt_prec(g, PREC_IMPLIES, f)?;
        }
        Formula::Prev(i, g) => {
            f.write_str("prev")?;
            fmt_interval(i, f)?;
            f.write_str(" ")?;
            fmt_prec(g, PREC_UNARY, f)?;
        }
        Formula::Once(i, g) => {
            f.write_str("once")?;
            fmt_interval(i, f)?;
            f.write_str(" ")?;
            fmt_prec(g, PREC_UNARY, f)?;
        }
        Formula::Hist(i, g) => {
            f.write_str("hist")?;
            fmt_interval(i, f)?;
            f.write_str(" ")?;
            fmt_prec(g, PREC_UNARY, f)?;
        }
        Formula::Since(i, a, b) => {
            fmt_prec(a, PREC_SINCE, f)?;
            f.write_str(" since")?;
            fmt_interval(i, f)?;
            f.write_str(" ")?;
            fmt_prec(b, PREC_SINCE + 1, f)?;
        }
        Formula::CountCmp {
            vars,
            body,
            op,
            threshold,
        } => {
            f.write_str("count ")?;
            fmt_vars(vars, f)?;
            f.write_str(" . (")?;
            fmt_prec(body, 0, f)?;
            write!(f, ") {op} {threshold}")?;
        }
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::{var, Formula, Term};
    use crate::time::Interval;

    fn p() -> Formula {
        Formula::atom("p", [Term::var("x")])
    }

    fn q() -> Formula {
        Formula::atom("q", [Term::var("x"), Term::str("jfk")])
    }

    #[test]
    fn atoms_and_constants() {
        assert_eq!(q().to_string(), "q(x, \"jfk\")");
        assert_eq!(
            Formula::eq(Term::var("x"), Term::int(3)).to_string(),
            "x = 3"
        );
    }

    #[test]
    fn precedence_omits_redundant_parens() {
        let f = p().and(q()).or(p());
        assert_eq!(f.to_string(), "p(x) && q(x, \"jfk\") || p(x)");
        let g = p().or(q()).and(p());
        assert_eq!(g.to_string(), "(p(x) || q(x, \"jfk\")) && p(x)");
    }

    #[test]
    fn unary_binds_tightest() {
        assert_eq!(p().not().and(q()).to_string(), "!p(x) && q(x, \"jfk\")");
        assert_eq!(p().and(q()).not().to_string(), "!(p(x) && q(x, \"jfk\"))");
    }

    #[test]
    fn temporal_operators_show_intervals() {
        assert_eq!(p().once(Interval::up_to(2)).to_string(), "once[0,2] p(x)");
        assert_eq!(p().once(Interval::all()).to_string(), "once p(x)");
        assert_eq!(
            p().since(Interval::bounded(1, 5).unwrap(), q()).to_string(),
            "p(x) since[1,5] q(x, \"jfk\")"
        );
        assert_eq!(
            p().hist(Interval::at_least(3)).to_string(),
            "hist[3,*] p(x)"
        );
    }

    #[test]
    fn since_is_left_associative_in_print() {
        let f = p().since(Interval::all(), q()).since(Interval::all(), p());
        assert_eq!(f.to_string(), "p(x) since q(x, \"jfk\") since p(x)");
        let g = p().since(Interval::all(), q().since(Interval::all(), p()));
        assert_eq!(g.to_string(), "p(x) since (q(x, \"jfk\") since p(x))");
    }

    #[test]
    fn quantifiers_extend_right() {
        let f = p().and(q()).exists([var("x")]);
        assert_eq!(f.to_string(), "exists x . p(x) && q(x, \"jfk\")");
        let g = p().exists([var("x")]).and(q());
        assert_eq!(g.to_string(), "(exists x . p(x)) && q(x, \"jfk\")");
    }

    #[test]
    fn count_cmp_prints_with_parenthesized_body() {
        use crate::ast::{var, CmpOp};
        let f = Formula::atom("q", [Term::var("x"), Term::var("y")]).count_cmp(
            [var("y")],
            CmpOp::Ge,
            3,
        );
        assert_eq!(f.to_string(), "count y . (q(x, y)) >= 3");
        let g = f.and(p());
        assert_eq!(g.to_string(), "(count y . (q(x, y)) >= 3) && p(x)");
    }

    #[test]
    fn implies_right_assoc() {
        let f = p().implies(q().implies(p()));
        assert_eq!(f.to_string(), "p(x) -> q(x, \"jfk\") -> p(x)");
        let g = p().implies(q()).implies(p());
        assert_eq!(g.to_string(), "(p(x) -> q(x, \"jfk\")) -> p(x)");
    }

    #[test]
    fn unary_over_since_needs_parens() {
        let f = p().since(Interval::all(), q()).not();
        assert_eq!(f.to_string(), "!(p(x) since q(x, \"jfk\"))");
        let g = p().not().since(Interval::all(), q());
        assert_eq!(g.to_string(), "!p(x) since q(x, \"jfk\")");
    }
}
