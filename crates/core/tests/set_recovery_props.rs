//! Property: killing a constraint fleet at *any* step, checkpointing at
//! that cut, and restoring yields a fleet whose remaining reports are
//! identical to an uninterrupted run's — under every parallelism mode.
//! This is the core recovery-equivalence guarantee the CLI's
//! `--resume` path builds on.

use std::sync::Arc;

use proptest::prelude::*;
use rtic_core::checkpoint::{restore_set, save_set};
use rtic_core::{ConstraintSet, Parallelism};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("q", Schema::of(&[("x", Sort::Str)]))
            .unwrap(),
    )
}

const FLEET_BODIES: &[&str] = &[
    "deny both: p(x) && q(x)",
    "deny lingering: p(x) && once[2,4] q(x)",
    "deny steady: p(x) && hist[0,1] p(x)",
    "deny sinced: q(x) since[0,5] p(x)",
];

fn fleet(mask: u8) -> Vec<Constraint> {
    FLEET_BODIES
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, b)| parse_constraint(b).expect("fleet constraint parses"))
        .collect()
}

fn transitions() -> impl Strategy<Value = Vec<Transition>> {
    let change = (0u8..2, any::<bool>(), 0u8..2);
    proptest::collection::vec((1u64..3, proptest::collection::vec(change, 0..3)), 2..16).prop_map(
        |steps| {
            const DOM: [&str; 2] = ["a", "b"];
            let mut t = 0u64;
            steps
                .into_iter()
                .map(|(gap, changes)| {
                    t += gap;
                    let mut u = Update::new();
                    for (rel, ins, x) in changes {
                        let name = if rel == 0 { "p" } else { "q" };
                        let tup = tuple![DOM[x as usize]];
                        if ins {
                            u.insert(name, tup);
                        } else {
                            u.delete(name, tup);
                        }
                    }
                    Transition::new(t, u)
                })
                .collect()
        },
    )
}

proptest! {
    #[test]
    fn kill_at_any_step_and_restore_is_equivalent(
        mask in 1u8..16,
        ts in transitions(),
        cut_frac in 0.0f64..1.0,
        par_pick in 0u8..3,
    ) {
        let cat = catalog();
        let par = match par_pick {
            0 => Parallelism::Sequential,
            1 => Parallelism::N(2),
            _ => Parallelism::Auto,
        };
        let cut = ((ts.len() as f64) * cut_frac) as usize;

        // Uninterrupted reference run.
        let mut reference = ConstraintSet::new(fleet(mask), Arc::clone(&cat))
            .unwrap()
            .with_parallelism(par);
        let mut expected = Vec::new();
        for tr in &ts {
            expected.push(reference.step(tr.time, &tr.update).unwrap());
        }

        // Killed-and-recovered run: step to the cut, "crash" (drop the
        // set, keeping only the checkpoint sections), restore, continue.
        let mut head = ConstraintSet::new(fleet(mask), Arc::clone(&cat))
            .unwrap()
            .with_parallelism(par);
        let mut got = Vec::new();
        for tr in &ts[..cut] {
            got.push(head.step(tr.time, &tr.update).unwrap());
        }
        let sections: Vec<String> = save_set(&head).into_iter().map(|(_, s)| s).collect();
        let cursor = head.last_time();
        drop(head);
        let mut resumed = restore_set(fleet(mask), Arc::clone(&cat), &sections)
            .unwrap_or_else(|e| panic!("restore_set failed at cut {cut}: {e}"))
            .with_parallelism(par);
        prop_assert_eq!(resumed.last_time(), cursor, "replay cursor survives");
        for tr in &ts[cut..] {
            got.push(resumed.step(tr.time, &tr.update).unwrap());
        }
        prop_assert_eq!(got, expected, "mask {:04b} cut {} {:?}", mask, cut, par);
        // Space accounting also survives the round trip.
        prop_assert_eq!(resumed.space(), reference.space());
    }
}
