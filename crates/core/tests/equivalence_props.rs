//! The central correctness property of the reproduction:
//!
//! > The incremental checker (bounded history encoding), the naive
//! > full-history checker, and the windowed checker produce **identical
//! > violation reports** on every history.
//!
//! Exercised over a family of constraint templates covering every temporal
//! operator, every interval shape (bounded, `a = 0`, `b = ∞`, point), and
//! their nestings, against random histories with persistence, deletion,
//! clock gaps, and a small value domain (to force key collisions).

use std::sync::Arc;

use proptest::prelude::*;
use rtic_core::{Checker, EncodingOptions, IncrementalChecker, NaiveChecker, WindowedChecker};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("q", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("r", Schema::of(&[("x", Sort::Str), ("y", Sort::Str)]))
            .unwrap(),
    )
}

/// Interval text with all four shapes.
fn interval_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()), // omitted = [0,*]
        (0u64..4).prop_map(|b| format!("[0,{b}]")),
        (1u64..4).prop_map(|a| format!("[{a},*]")),
        (1u64..4, 0u64..3).prop_map(|(a, d)| format!("[{a},{}]", a + d)),
        (0u64..4).prop_map(|k| format!("[{k},{k}]")),
    ]
}

/// Constraint templates, safe by construction; `{i}`/`{j}` are replaced by
/// random intervals.
const TEMPLATES: &[&str] = &[
    "p(x) && once{i} q(x)",
    "p(x) && !once{i} q(x)",
    "q(x) since{i} p(x)",
    "p(x) since{i} (p(x) && q(x))",
    "p(x) && hist{i} q(x)",
    "q(x) && prev{i} p(x)",
    "once{i} once{j} p(x)",
    "r(x, y) && !once{i} q(x)",
    "exists y . r(x, y) && once{i} p(x)",
    "once{i} (p(x) && q(x))",
    "(p(x) since{i} q(x)) && !prev{j} p(x)",
    "q(x) && hist{i} p(x) && !p(x)",
    "(once{i} q(x)) since{j} p(x)",
    "p(x) || q(x)",
    "once{i} (q(x) since{j} p(x))",
    "r(x, y) && hist{i} r(x, y)",
    "prev{i} prev{j} p(x)",
    "p(x) && !(exists z . r(x, z))",
    "once{i} exists y . r(x, y)",
    "(p(x) && !q(x)) since{i} q(x)",
    // Rewrite triggers and extra shapes for the optimizer/pushdown paths.
    "once{i} once q(x)",
    "p(x) && hist{i} once{j} q(x)",
    "(hist{i} q(x)) since{j} q(x)",
    "r(x, y) && r(y, z) && once{i} q(x)",
    "(r(x, y) since{i} r(x, y)) && p(x)",
    "p(x) && once[0,0] q(x)",
    // Counting aggregates (state-local, with and without temporal bodies).
    "p(x) && count y . (r(x, y)) >= 2",
    "p(x) && count y . (r(x, y)) = 0",
    "p(x) && count y . (r(x, y) && once{i} q(y)) >= 1",
    "once{i} (p(x) && count y . (r(x, y)) >= 1)",
    "(count y . (r(x, y)) >= 1) since{i} p(x)",
];

fn constraint() -> impl Strategy<Value = Constraint> {
    (0..TEMPLATES.len(), interval_text(), interval_text()).prop_map(|(t, i, j)| {
        let body = TEMPLATES[t].replace("{i}", &i).replace("{j}", &j);
        parse_constraint(&format!("deny prop_c: {body}"))
            .unwrap_or_else(|e| panic!("template failed to parse: {body}: {e}"))
    })
}

/// One random step: time gap 1–3, a few inserts/deletes over a 2-value
/// domain.
#[derive(Clone, Debug)]
struct Step {
    gap: u64,
    changes: Vec<(u8, bool, u8, u8)>, // (relation, insert?, value x, value y)
}

fn step() -> impl Strategy<Value = Step> {
    let change = (0u8..3, any::<bool>(), 0u8..2, 0u8..2);
    (1u64..4, proptest::collection::vec(change, 0..4))
        .prop_map(|(gap, changes)| Step { gap, changes })
}

fn transitions(steps: &[Step]) -> Vec<Transition> {
    const DOM: [&str; 2] = ["a", "b"];
    let mut t = 0u64;
    steps
        .iter()
        .map(|s| {
            t += s.gap;
            let mut u = Update::new();
            for &(rel, ins, x, y) in &s.changes {
                let (name, tup) = match rel {
                    0 => ("p", tuple![DOM[x as usize]]),
                    1 => ("q", tuple![DOM[x as usize]]),
                    _ => ("r", tuple![DOM[x as usize], DOM[y as usize]]),
                };
                if ins {
                    u.insert(name, tup);
                } else {
                    u.delete(name, tup);
                }
            }
            Transition::new(t, u)
        })
        .collect()
}

proptest! {
    // Case count honors PROPTEST_CASES (default 256).

    #[test]
    fn all_checkers_agree(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..14),
    ) {
        let cat = catalog();
        let ts = transitions(&steps);
        let mut inc = IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut naive = NaiveChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut win = WindowedChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        for tr in &ts {
            let a = inc.step(tr.time, &tr.update).unwrap();
            let b = naive.step(tr.time, &tr.update).unwrap();
            let w = win.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(
                &a, &b,
                "incremental vs naive diverged on `{}` at {} (history: {:?})",
                c, tr.time, ts
            );
            prop_assert_eq!(
                &b, &w,
                "naive vs windowed diverged on `{}` at {}",
                c, tr.time
            );
        }
    }

    #[test]
    fn ablated_encoding_agrees_too(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..10),
    ) {
        let cat = catalog();
        let ts = transitions(&steps);
        let mut spec = IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut plain = IncrementalChecker::with_options(
            c.clone(),
            Arc::clone(&cat),
            EncodingOptions { disable_stamp_specialization: true, ..Default::default() },
        )
        .unwrap();
        for tr in &ts {
            let a = spec.step(tr.time, &tr.update).unwrap();
            let b = plain.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(&a, &b, "ablation diverged on `{}` at {}", c, tr.time);
        }
    }

    #[test]
    fn peephole_optimizer_preserves_reports(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..12),
    ) {
        // The optimizer's rewrites must be invisible in the reports; the
        // generated intervals include `[0,*]` and `[k,k]`, which are what
        // trigger them (nested unconstrained once/hist, point windows).
        use rtic_core::CompiledConstraint;
        let cat = catalog();
        let ts = transitions(&steps);
        let optimized = CompiledConstraint::compile(c.clone(), Arc::clone(&cat)).unwrap();
        let plain = CompiledConstraint::compile_unoptimized(c.clone(), Arc::clone(&cat)).unwrap();
        let mut a = IncrementalChecker::from_compiled(optimized, Default::default());
        let mut b = IncrementalChecker::from_compiled(plain, Default::default());
        for tr in &ts {
            let ra = a.step(tr.time, &tr.update).unwrap();
            let rb = b.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(&ra, &rb, "optimizer changed semantics of `{}` at {}", c, tr.time);
        }
    }

    #[test]
    fn incremental_space_is_history_independent(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..10),
    ) {
        // Run the same per-step update pattern repeated 1× and 3×: the aux
        // footprint after the final repetition must not exceed the bound
        // implied by the constraint (we check it does not keep growing
        // linearly: footprint(3n) ≤ footprint(n) + slack only for bounded
        // constraints, so here we just check the hard per-key bound).
        let cat = catalog();
        let ts = transitions(&steps);
        let mut inc = IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        for tr in &ts {
            inc.step(tr.time, &tr.update).unwrap();
            let s = inc.space();
            // 3 relations × ≤4 keys (2-value domain, ≤2 columns) per node;
            // stamps per key bounded by max bound + 1 (= 7 here) plus the
            // shared hist deques.
            prop_assert!(
                s.aux_keys <= 64 && s.aux_timestamps <= 512,
                "aux footprint exploded: {s}"
            );
        }
    }
}
