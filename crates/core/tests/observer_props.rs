//! Observation must be behavior-neutral:
//!
//! > A checker stepped through `step_observed` (with any observer)
//! > produces exactly the reports of an identical checker stepped through
//! > plain `step`, and the emitted event stream is consistent with those
//! > reports.
//!
//! Reuses the constraint-template family and random-history generator of
//! `equivalence_props.rs`, with the collecting observer standing in for
//! "any observer" (it exercises every event variant and clones reports,
//! which is as invasive as an observer can get).

use std::sync::Arc;

use proptest::prelude::*;
use rtic_core::observe::{step_all, CollectingObserver};
use rtic_core::{Checker, IncrementalChecker, NaiveChecker, StepEvent, WindowedChecker};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("q", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("r", Schema::of(&[("x", Sort::Str), ("y", Sort::Str)]))
            .unwrap(),
    )
}

fn interval_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (0u64..4).prop_map(|b| format!("[0,{b}]")),
        (1u64..4).prop_map(|a| format!("[{a},*]")),
        (1u64..4, 0u64..3).prop_map(|(a, d)| format!("[{a},{}]", a + d)),
    ]
}

/// A representative slice of the template family: each temporal operator,
/// negation, and an aggregate.
const TEMPLATES: &[&str] = &[
    "p(x) && once{i} q(x)",
    "p(x) && !once{i} q(x)",
    "q(x) since{i} p(x)",
    "p(x) && hist{i} q(x)",
    "q(x) && prev{i} p(x)",
    "once{i} (q(x) since{j} p(x))",
    "r(x, y) && !once{i} q(x)",
    "p(x) && count y . (r(x, y)) >= 2",
];

fn constraint() -> impl Strategy<Value = Constraint> {
    (0..TEMPLATES.len(), interval_text(), interval_text()).prop_map(|(t, i, j)| {
        let body = TEMPLATES[t].replace("{i}", &i).replace("{j}", &j);
        parse_constraint(&format!("deny obs_c: {body}"))
            .unwrap_or_else(|e| panic!("template failed to parse: {body}: {e}"))
    })
}

#[derive(Clone, Debug)]
struct Step {
    gap: u64,
    changes: Vec<(u8, bool, u8, u8)>,
}

fn step() -> impl Strategy<Value = Step> {
    let change = (0u8..3, any::<bool>(), 0u8..2, 0u8..2);
    (1u64..4, proptest::collection::vec(change, 0..4))
        .prop_map(|(gap, changes)| Step { gap, changes })
}

fn transitions(steps: &[Step]) -> Vec<Transition> {
    const DOM: [&str; 2] = ["a", "b"];
    let mut t = 0u64;
    steps
        .iter()
        .map(|s| {
            t += s.gap;
            let mut u = Update::new();
            for &(rel, ins, x, y) in &s.changes {
                let (name, tup) = match rel {
                    0 => ("p", tuple![DOM[x as usize]]),
                    1 => ("q", tuple![DOM[x as usize]]),
                    _ => ("r", tuple![DOM[x as usize], DOM[y as usize]]),
                };
                if ins {
                    u.insert(name, tup);
                } else {
                    u.delete(name, tup);
                }
            }
            Transition::new(t, u)
        })
        .collect()
}

proptest! {
    #[test]
    fn observed_checkers_match_plain_ones(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..12),
    ) {
        let cat = catalog();
        let ts = transitions(&steps);
        // Three backends observed, three identical twins unobserved.
        let mut observed: Vec<Box<dyn Checker>> = vec![
            Box::new(IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap()),
            Box::new(NaiveChecker::new(c.clone(), Arc::clone(&cat)).unwrap()),
            Box::new(WindowedChecker::new(c.clone(), Arc::clone(&cat)).unwrap()),
        ];
        let mut inc = IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut naive = NaiveChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut win = WindowedChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut obs = CollectingObserver::default();
        for tr in &ts {
            let reports = step_all(&mut observed, tr.time, &tr.update, &mut obs).unwrap();
            let a = inc.step(tr.time, &tr.update).unwrap();
            let b = naive.step(tr.time, &tr.update).unwrap();
            let w = win.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(&reports[0], &a, "observation changed incremental on `{}` at {}", c, tr.time);
            prop_assert_eq!(&reports[1], &b, "observation changed naive on `{}` at {}", c, tr.time);
            prop_assert_eq!(&reports[2], &w, "observation changed windowed on `{}` at {}", c, tr.time);
        }
        // Event-stream consistency: one step pair per transition, one eval
        // per checker per transition, violation events match violating
        // reports, and step totals equal the sum of eval counts.
        let step_starts = obs.events.iter().filter(|e| e.kind() == "step_start").count();
        let step_ends = obs.events.iter().filter(|e| e.kind() == "step").count();
        prop_assert_eq!(step_starts, ts.len());
        prop_assert_eq!(step_ends, ts.len());
        let evals = obs.events.iter().filter(|e| e.kind() == "eval").count();
        prop_assert_eq!(evals, ts.len() * 3);
        let eval_violations: usize = obs
            .events
            .iter()
            .filter_map(|e| match e {
                StepEvent::ConstraintEval { violations, .. } => Some(*violations),
                _ => None,
            })
            .sum();
        let step_violations: usize = obs
            .events
            .iter()
            .filter_map(|e| match e {
                StepEvent::StepEnd { violations, .. } => Some(*violations),
                _ => None,
            })
            .sum();
        prop_assert_eq!(eval_violations, step_violations);
        let violation_events = obs.events.iter().filter(|e| e.kind() == "violation").count();
        let violating_evals = obs
            .events
            .iter()
            .filter(|e| matches!(e, StepEvent::ConstraintEval { violations, .. } if *violations > 0))
            .count();
        prop_assert_eq!(violation_events, violating_evals);
    }
}
