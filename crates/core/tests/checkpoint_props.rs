//! Property: checkpointing at *any* position of *any* history for *any*
//! constraint template and restoring yields a checker whose subsequent
//! reports are identical to an uninterrupted run's.

use std::sync::Arc;

use proptest::prelude::*;
use rtic_core::checkpoint::{restore, save};
use rtic_core::{Checker, EncodingOptions, IncrementalChecker};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("q", Schema::of(&[("x", Sort::Str)]))
            .unwrap(),
    )
}

const TEMPLATES: &[&str] = &[
    "p(x) && once{i} q(x)",
    "q(x) since{i} p(x)",
    "p(x) && hist{i} q(x)",
    "q(x) && prev{i} p(x)",
    "once{i} (q(x) since{j} p(x))",
    "p(x) && hist{i} q(x) && !once{j} q(x)",
];

fn interval_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (0u64..4).prop_map(|b| format!("[0,{b}]")),
        (1u64..4).prop_map(|a| format!("[{a},*]")),
        (1u64..3, 0u64..3).prop_map(|(a, d)| format!("[{a},{}]", a + d)),
    ]
}

fn constraint() -> impl Strategy<Value = Constraint> {
    (0..TEMPLATES.len(), interval_text(), interval_text()).prop_map(|(t, i, j)| {
        let body = TEMPLATES[t].replace("{i}", &i).replace("{j}", &j);
        parse_constraint(&format!("deny c: {body}")).expect("template parses")
    })
}

fn transitions() -> impl Strategy<Value = Vec<Transition>> {
    let change = (0u8..2, any::<bool>(), 0u8..2);
    proptest::collection::vec((1u64..3, proptest::collection::vec(change, 0..3)), 2..16).prop_map(
        |steps| {
            const DOM: [&str; 2] = ["a", "b"];
            let mut t = 0u64;
            steps
                .into_iter()
                .map(|(gap, changes)| {
                    t += gap;
                    let mut u = Update::new();
                    for (rel, ins, x) in changes {
                        let name = if rel == 0 { "p" } else { "q" };
                        let tup = tuple![DOM[x as usize]];
                        if ins {
                            u.insert(name, tup);
                        } else {
                            u.delete(name, tup);
                        }
                    }
                    Transition::new(t, u)
                })
                .collect()
        },
    )
}

proptest! {
    #[test]
    fn restore_resumes_identically(
        c in constraint(),
        ts in transitions(),
        cut_frac in 0.0f64..1.0,
        ablate in any::<bool>(),
    ) {
        let cat = catalog();
        let options = EncodingOptions { disable_stamp_specialization: ablate, ..Default::default() };
        let cut = ((ts.len() as f64) * cut_frac) as usize;
        // Uninterrupted run.
        let mut reference =
            IncrementalChecker::with_options(c.clone(), Arc::clone(&cat), options).unwrap();
        let mut expected = Vec::new();
        for tr in &ts {
            expected.push(reference.step(tr.time, &tr.update).unwrap());
        }
        // Interrupted run.
        let mut head =
            IncrementalChecker::with_options(c.clone(), Arc::clone(&cat), options).unwrap();
        let mut got = Vec::new();
        for tr in &ts[..cut] {
            got.push(head.step(tr.time, &tr.update).unwrap());
        }
        let text = save(&head);
        let mut resumed = restore(c.clone(), Arc::clone(&cat), options, &text)
            .unwrap_or_else(|e| panic!("restore failed for `{c}`: {e}\n{text}"));
        for tr in &ts[cut..] {
            got.push(resumed.step(tr.time, &tr.update).unwrap());
        }
        prop_assert_eq!(got, expected, "constraint `{}` cut at {}", c, cut);
        // And the space accounting survives the round trip.
        prop_assert_eq!(resumed.space().aux_keys > 0, reference.space().aux_keys > 0);
    }
}
