//! Property: [`ConstraintSet::apply_batch`] — any partition of a stream
//! into micro-batches, with the columnar kernels on or off — produces
//! step reports byte-identical to stepping the same set one line at a
//! time, over random fleets and random streams (including pure ticks).
//!
//! This is the semantic contract of batched ingestion: batching and
//! vectorization amortize work around and inside the steps, but are
//! never visible in reports, violations, or the shared database.

use std::sync::Arc;

use proptest::prelude::*;
use rtic_core::{ConstraintSet, EncodingOptions, NopObserver, Parallelism};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

const RELATIONS: [&str; 4] = ["p", "q", "r", "s"];

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    for rel in RELATIONS {
        cat.declare(rel, Schema::of(&[("x", Sort::Str)]))
            .expect("distinct names");
    }
    Arc::new(cat)
}

/// Body templates; `{a}`/`{b}` are relation names, `{i}`/`{j}` intervals.
/// The mix covers the monotone-probe shapes (`!once` with an unbounded
/// window) alongside bounded windows and `since`, so the vectorized
/// partition cache and its fallbacks both run under the property.
const TEMPLATES: &[&str] = &[
    "{a}(x) && once{i} {b}(x)",
    "{b}(x) since{i} {a}(x)",
    "{a}(x) && hist{i} {b}(x)",
    "{a}(x) && !once {b}(x)",
    "once[1,*] {a}(x) && {a}(x) && !once{i} {b}(x)",
];

fn interval_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (0u64..4).prop_map(|b| format!("[0,{b}]")),
        (1u64..4).prop_map(|a| format!("[{a},*]")),
    ]
}

fn fleet() -> impl Strategy<Value = Vec<Constraint>> {
    proptest::collection::vec(
        (
            0..TEMPLATES.len(),
            0..RELATIONS.len(),
            0..RELATIONS.len(),
            interval_text(),
        ),
        1..4,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(n, (t, a, b, i))| {
                let body = TEMPLATES[t]
                    .replace("{a}", RELATIONS[a])
                    .replace("{b}", RELATIONS[b])
                    .replace("{i}", &i);
                parse_constraint(&format!("deny c{n}: {body}")).expect("template parses")
            })
            .collect()
    })
}

/// Random streams with pure ticks (empty change lists), same-step
/// insert+delete pairs, and churn over a tiny domain — the inputs that
/// stress the vectorized delta bookkeeping hardest.
fn transitions() -> impl Strategy<Value = Vec<Transition>> {
    let change = (0..RELATIONS.len(), any::<bool>(), 0u8..2);
    proptest::collection::vec((1u64..3, proptest::collection::vec(change, 0..4)), 2..20).prop_map(
        |steps| {
            const DOM: [&str; 2] = ["a", "b"];
            let mut t = 0u64;
            steps
                .into_iter()
                .map(|(gap, changes)| {
                    t += gap;
                    let mut u = Update::new();
                    for (rel, ins, x) in changes {
                        let tup = tuple![DOM[x as usize]];
                        if ins {
                            u.insert(RELATIONS[rel], tup);
                        } else {
                            u.delete(RELATIONS[rel], tup);
                        }
                    }
                    Transition::new(t, u)
                })
                .collect()
        },
    )
}

proptest! {
    #[test]
    fn batched_ingestion_matches_line_at_a_time(
        constraints in fleet(),
        ts in transitions(),
        batch in 1usize..7,
        vectorize in any::<bool>(),
    ) {
        let cat = catalog();
        let mut line_at_a_time =
            ConstraintSet::new(constraints.iter().cloned(), Arc::clone(&cat))
                .map_err(|(c, e)| format!("`{c}`: {e}"))
                .unwrap();
        let mut batched = ConstraintSet::with_options(
            constraints.iter().cloned(),
            Arc::clone(&cat),
            EncodingOptions { vectorize, ..Default::default() },
        )
        .map_err(|(c, e)| format!("`{c}`: {e}"))
        .unwrap()
        .with_parallelism(Parallelism::Sequential);

        let expected: Vec<_> = ts
            .iter()
            .map(|tr| {
                line_at_a_time
                    .step(tr.time, &tr.update)
                    .expect("monotone stream")
            })
            .collect();

        let lines: Vec<_> = ts.iter().map(|tr| (tr.time, tr.update.clone())).collect();
        let mut got = Vec::with_capacity(lines.len());
        for chunk in lines.chunks(batch) {
            got.extend(
                batched
                    .apply_batch(chunk, &mut NopObserver)
                    .expect("monotone stream"),
            );
        }

        prop_assert_eq!(&got, &expected, "batch={} vectorize={}", batch, vectorize);
        // Byte-for-byte: the rendered reports agree, not just the values.
        for (g, e) in got.iter().zip(&expected) {
            let render = |reports: &[rtic_core::StepReport]| {
                reports.iter().map(ToString::to_string).collect::<Vec<_>>()
            };
            prop_assert_eq!(render(g), render(e));
        }
        prop_assert_eq!(
            batched.database().total_tuples(),
            line_at_a_time.database().total_tuples()
        );
    }
}
