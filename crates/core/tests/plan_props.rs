//! The plan layer's correctness property:
//!
//! > Executing a compiled evaluation plan is **byte-for-byte identical**
//! > to interpreting the formula it was lowered from — same reports, same
//! > `Display` text — on every history.
//!
//! Planned execution is the default in every checker, so this pins the
//! plan lowering (conjunct order, join shapes, projection maps, the
//! bound-vs-generating temporal decision) against the interpreting
//! evaluator, which stays the semantics-defining reference.

use std::sync::Arc;

use proptest::prelude::*;
use rtic_core::{Checker, EncodingOptions, IncrementalChecker, NaiveChecker};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("q", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("r", Schema::of(&[("x", Sort::Str), ("y", Sort::Str)]))
            .unwrap(),
    )
}

/// Interval text with all four shapes.
fn interval_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()), // omitted = [0,*]
        (0u64..4).prop_map(|b| format!("[0,{b}]")),
        (1u64..4).prop_map(|a| format!("[{a},*]")),
        (1u64..4, 0u64..3).prop_map(|(a, d)| format!("[{a},{}]", a + d)),
        (0u64..4).prop_map(|k| format!("[{k},{k}]")),
    ]
}

/// Constraint templates biased toward the shapes the plan lowering has to
/// get right: multi-conjunct reorderings, negated probes, comparisons,
/// disjunction, quantifiers, counting, and every temporal operator both
/// bound (probe) and generating (join).
const TEMPLATES: &[&str] = &[
    "p(x) && once{i} q(x)",
    "p(x) && !once{i} q(x)",
    "once{i} q(x) && p(x)",
    "q(x) since{i} p(x)",
    "p(x) since{i} (p(x) && q(x))",
    "p(x) && hist{i} q(x)",
    "q(x) && prev{i} p(x)",
    "once{i} once{j} p(x)",
    "r(x, y) && !once{i} q(x)",
    "exists y . r(x, y) && once{i} p(x)",
    "once{i} (p(x) && q(x))",
    "(p(x) since{i} q(x)) && !prev{j} p(x)",
    "q(x) && hist{i} p(x) && !p(x)",
    "(once{i} q(x)) since{j} p(x)",
    "p(x) || q(x)",
    "once{i} (q(x) since{j} p(x))",
    "r(x, y) && r(y, z) && once{i} q(x)",
    "(r(x, y) since{i} r(x, y)) && p(x)",
    "p(x) && !(exists z . r(x, z))",
    "r(x, y) && x != y",
    "r(x, y) && x = y && once{i} p(x)",
    "p(x) && count y . (r(x, y)) >= 2",
    "p(x) && count y . (r(x, y)) = 0",
    "p(x) && count y . (r(x, y) && once{i} q(y)) >= 1",
    "(count y . (r(x, y)) >= 1) since{i} p(x)",
];

fn constraint() -> impl Strategy<Value = Constraint> {
    (0..TEMPLATES.len(), interval_text(), interval_text()).prop_map(|(t, i, j)| {
        let body = TEMPLATES[t].replace("{i}", &i).replace("{j}", &j);
        parse_constraint(&format!("deny plan_c: {body}"))
            .unwrap_or_else(|e| panic!("template failed to parse: {body}: {e}"))
    })
}

/// One random step: time gap 1–3, a few inserts/deletes over a 2-value
/// domain (collisions force real join work).
#[derive(Clone, Debug)]
struct Step {
    gap: u64,
    changes: Vec<(u8, bool, u8, u8)>, // (relation, insert?, value x, value y)
}

fn step() -> impl Strategy<Value = Step> {
    let change = (0u8..3, any::<bool>(), 0u8..2, 0u8..2);
    (1u64..4, proptest::collection::vec(change, 0..4))
        .prop_map(|(gap, changes)| Step { gap, changes })
}

fn transitions(steps: &[Step]) -> Vec<Transition> {
    const DOM: [&str; 2] = ["a", "b"];
    let mut t = 0u64;
    steps
        .iter()
        .map(|s| {
            t += s.gap;
            let mut u = Update::new();
            for &(rel, ins, x, y) in &s.changes {
                let (name, tup) = match rel {
                    0 => ("p", tuple![DOM[x as usize]]),
                    1 => ("q", tuple![DOM[x as usize]]),
                    _ => ("r", tuple![DOM[x as usize], DOM[y as usize]]),
                };
                if ins {
                    u.insert(name, tup);
                } else {
                    u.delete(name, tup);
                }
            }
            Transition::new(t, u)
        })
        .collect()
}

proptest! {
    // Case count honors PROPTEST_CASES (default 256).

    #[test]
    fn planned_naive_matches_interpreted_byte_for_byte(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..14),
    ) {
        let cat = catalog();
        let ts = transitions(&steps);
        let mut planned = NaiveChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut interp = NaiveChecker::new_interpreted(c.clone(), Arc::clone(&cat)).unwrap();
        for tr in &ts {
            let a = planned.step(tr.time, &tr.update).unwrap();
            let b = interp.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(&a, &b, "plan diverged on `{}` at {}", c, tr.time);
            prop_assert_eq!(
                a.to_string(), b.to_string(),
                "plan changed the report text of `{}` at {}", c, tr.time
            );
        }
    }

    #[test]
    fn planned_incremental_matches_interpreted_byte_for_byte(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..14),
    ) {
        let cat = catalog();
        let ts = transitions(&steps);
        let mut planned = IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut interp = IncrementalChecker::with_options(
            c.clone(),
            Arc::clone(&cat),
            EncodingOptions { interpret_eval: true, ..Default::default() },
        )
        .unwrap();
        for tr in &ts {
            let a = planned.step(tr.time, &tr.update).unwrap();
            let b = interp.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(&a, &b, "plan diverged on `{}` at {}", c, tr.time);
            prop_assert_eq!(
                a.to_string(), b.to_string(),
                "plan changed the report text of `{}` at {}", c, tr.time
            );
        }
    }

    /// Turning the plan-node profiler on must be invisible in the
    /// reports: same verdicts, same witnesses, same `Display` text — the
    /// profiler only ever *reads* the execution it annotates.
    #[test]
    fn profiling_leaves_reports_byte_identical(
        c in constraint(),
        steps in proptest::collection::vec(step(), 1..14),
    ) {
        let cat = catalog();
        let ts = transitions(&steps);
        let mut plain = IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap();
        let mut profiled = IncrementalChecker::with_options(
            c.clone(),
            Arc::clone(&cat),
            EncodingOptions { profile_plans: true, ..Default::default() },
        )
        .unwrap();
        for tr in &ts {
            let a = plain.step(tr.time, &tr.update).unwrap();
            let b = profiled.step(tr.time, &tr.update).unwrap();
            prop_assert_eq!(&a, &b, "profiler changed `{}` at {}", c, tr.time);
            prop_assert_eq!(
                a.to_string(), b.to_string(),
                "profiler changed the report text of `{}` at {}", c, tr.time
            );
        }
        // And the profile it produced is well-formed: one row per plan
        // node, ids in pre-order, and the body root runs at most once per
        // step (quiescent steps can be absorbed without re-evaluation).
        let profile = profiled.plan_profile().expect("profiling was enabled");
        prop_assert!(!profile.nodes.is_empty());
        for (i, row) in profile.nodes.iter().enumerate() {
            prop_assert_eq!(row.desc.id, i, "profile rows are pre-order ids");
        }
        let root_calls: u64 = profile
            .nodes
            .iter()
            .filter(|r| r.desc.depth == 0 && r.desc.path == "body")
            .map(|r| r.counts.calls)
            .sum();
        prop_assert!(
            root_calls <= ts.len() as u64,
            "body root runs at most once per step ({} calls over {} steps)",
            root_calls, ts.len()
        );
    }
}
