//! Horizon-boundary audit for `WindowedChecker` pruning.
//!
//! The checker keeps states with age ≤ h (h = the compiled horizon) by
//! dropping those with timestamp < time − h. Two edges are easy to get
//! wrong by one:
//!
//! * a state at age **exactly h** must be retained — `once[a,h]` can still
//!   have a witness there;
//! * a `prev`-predecessor sitting **exactly at the cutoff** must be
//!   retained — a nested `once[0,a] prev[lo,b] q` evaluated at the oldest
//!   in-window state reaches back exactly a + b ticks.
//!
//! The regression tests pin both edges; the differential sweep checks
//! pruned evaluation against the full-history `NaiveChecker` over gappy
//! pseudo-random streams whose alignments repeatedly land on the cutoff.

use std::sync::Arc;

use rtic_core::{Checker, NaiveChecker, WindowedChecker};
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::TimePoint;

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::new()
            .with("p", Schema::of(&[("x", Sort::Str)]))
            .unwrap()
            .with("q", Schema::of(&[("x", Sort::Str)]))
            .unwrap(),
    )
}

fn pair(src: &str) -> (WindowedChecker, NaiveChecker) {
    let c = parse_constraint(src).unwrap();
    (
        WindowedChecker::new(c.clone(), catalog()).unwrap(),
        NaiveChecker::new(c, catalog()).unwrap(),
    )
}

#[test]
fn witness_at_age_exactly_horizon_is_kept() {
    // once[2,4] q: horizon 4. A q-witness from t=0 is at age exactly 4
    // when evaluated at t=4 — the oldest state the window may keep.
    let (mut w, mut n) = pair("deny d: p(x) && once[2,4] q(x)");
    let steps = [
        (0u64, Update::new().with_insert("q", tuple!["a"])),
        (1, Update::new().with_delete("q", tuple!["a"])),
        (2, Update::new().with_insert("p", tuple!["a"])),
        (3, Update::new()),
        (4, Update::new()),
        (5, Update::new()),
    ];
    for (t, u) in steps {
        let rw = w.step(TimePoint(t), &u).unwrap();
        let rn = n.step(TimePoint(t), &u).unwrap();
        assert_eq!(rw, rn, "diverged from naive at t={t}");
        if t == 4 {
            assert_eq!(
                rw.violation_count(),
                1,
                "witness at age exactly h=4 must still be visible"
            );
        }
        if t == 5 {
            assert!(rw.ok(), "witness aged past the horizon");
        }
    }
    // The test only bites if pruning actually ran.
    assert!(
        w.space().stored_states < n.space().stored_states,
        "windowed checker never pruned — boundary not exercised"
    );
}

#[test]
fn prev_predecessor_exactly_at_cutoff_is_kept() {
    // once[0,2] prev[1,2] q: horizon 2 + 2 = 4. Evaluated at t=4, the
    // once-window reaches the state at t=2, whose prev-predecessor is the
    // state at t=0 — timestamp exactly equal to the cutoff 4 − 4 = 0. An
    // off-by-one dropping it would erase the violation.
    let (mut w, mut n) = pair("deny d: p(x) && once[0,2] prev[1,2] q(x)");
    let steps = [
        (0u64, Update::new().with_insert("q", tuple!["a"])),
        (2, Update::new().with_insert("p", tuple!["a"])),
        (4, Update::new()),
    ];
    for (t, u) in steps {
        let rw = w.step(TimePoint(t), &u).unwrap();
        let rn = n.step(TimePoint(t), &u).unwrap();
        assert_eq!(rw, rn, "diverged from naive at t={t}");
        if t == 4 {
            assert_eq!(
                rw.violation_count(),
                1,
                "prev-predecessor at the exact cutoff must be retained"
            );
        }
    }
    assert_eq!(
        w.space().stored_states,
        3,
        "all three states are within the horizon at t=4"
    );
    // One more tick: t=0 crosses the cutoff and must now be pruned, and
    // both checkers must still agree.
    let rw = w.step(TimePoint(5), &Update::new()).unwrap();
    let rn = n.step(TimePoint(5), &Update::new()).unwrap();
    assert_eq!(rw, rn, "diverged from naive after the predecessor aged out");
    assert_eq!(w.space().stored_states, 3, "state at t=0 pruned, t=5 added");
}

/// Minimal deterministic LCG so the sweep needs no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

#[test]
fn pruned_evaluation_matches_naive_on_gappy_streams() {
    let formulas = [
        "deny d: p(x) && once[0,3] q(x)",
        "deny d: p(x) && once[2,4] q(x)",
        "deny d: p(x) && once[3,3] q(x)",
        "deny d: p(x) && hist[1,3] q(x)",
        "deny d: p(x) && !once[0,4] q(x)",
        "deny d: p(x) && once[0,2] prev[1,2] q(x)",
        "deny d: p(x) && prev[1,3] once[0,2] q(x)",
        "deny d: p(x) && once[0,2] once[1,2] q(x)",
        "deny d: p(x) && once[0,3] (q(x) && hist[0,2] q(x))",
        "deny d: p(x) && (q(x) since[0,3] p(x))",
    ];
    let domain = ["a", "b"];
    for (fi, src) in formulas.iter().enumerate() {
        let (mut w, mut n) = pair(src);
        let mut rng = Lcg(0x9E3779B97F4A7C15 ^ (fi as u64));
        let mut t = 0u64;
        let mut pruned_once = false;
        for step in 0..120 {
            // Gaps of 1..=3 make window edges land on and around stored
            // timestamps in all alignments.
            t += 1 + rng.next(3);
            let mut u = Update::new();
            for _ in 0..rng.next(3) {
                let x = domain[rng.next(2) as usize];
                let rel = if rng.next(2) == 0 { "p" } else { "q" };
                if rng.next(3) == 0 {
                    u.delete(rel, tuple![x]);
                } else {
                    u.insert(rel, tuple![x]);
                }
            }
            let rw = w.step(TimePoint(t), &u).unwrap();
            let rn = n.step(TimePoint(t), &u).unwrap();
            assert_eq!(rw, rn, "{src}: diverged from naive at step {step} (t={t})");
            pruned_once |= w.space().stored_states < n.space().stored_states;
        }
        assert!(
            pruned_once,
            "{src}: pruning never engaged — sweep is vacuous"
        );
    }
}
