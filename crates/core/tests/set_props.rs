//! Property: a [`ConstraintSet`] — with relevance dispatch always on and
//! any worker budget — produces step reports identical to stepping one
//! independent [`IncrementalChecker`] per constraint, over random fleets
//! and random streams.
//!
//! This is the semantic contract of the parallel fleet engine: dispatch
//! and parallelism are performance features, never visible in reports.

use std::sync::Arc;

use proptest::prelude::*;
use rtic_core::{Checker, ConstraintSet, IncrementalChecker, Parallelism};
use rtic_history::Transition;
use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
use rtic_temporal::parser::parse_constraint;
use rtic_temporal::Constraint;

/// Four unary relations so fleets overlap only partially — the mix keeps
/// some constraints quiescent on most steps, exercising both dispatch
/// outcomes.
const RELATIONS: [&str; 4] = ["p", "q", "r", "s"];

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    for rel in RELATIONS {
        cat.declare(rel, Schema::of(&[("x", Sort::Str)]))
            .expect("distinct names");
    }
    Arc::new(cat)
}

/// Body templates; `{a}`/`{b}` are relation names, `{i}`/`{j}` intervals.
const TEMPLATES: &[&str] = &[
    "{a}(x) && once{i} {b}(x)",
    "{b}(x) since{i} {a}(x)",
    "{a}(x) && hist{i} {b}(x)",
    "{b}(x) && prev{i} {a}(x)",
    "{a}(x) && !once{i} {b}(x)",
    "{a}(x) && hist{i} {b}(x) && !once{j} {b}(x)",
];

fn interval_text() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (0u64..4).prop_map(|b| format!("[0,{b}]")),
        (1u64..4).prop_map(|a| format!("[{a},*]")),
        (1u64..3, 0u64..3).prop_map(|(a, d)| format!("[{a},{}]", a + d)),
    ]
}

fn fleet() -> impl Strategy<Value = Vec<Constraint>> {
    proptest::collection::vec(
        (
            0..TEMPLATES.len(),
            0..RELATIONS.len(),
            0..RELATIONS.len(),
            interval_text(),
            interval_text(),
        ),
        1..5,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(n, (t, a, b, i, j))| {
                let body = TEMPLATES[t]
                    .replace("{a}", RELATIONS[a])
                    .replace("{b}", RELATIONS[b])
                    .replace("{i}", &i)
                    .replace("{j}", &j);
                parse_constraint(&format!("deny c{n}: {body}")).expect("template parses")
            })
            .collect()
    })
}

fn transitions() -> impl Strategy<Value = Vec<Transition>> {
    let change = (0..RELATIONS.len(), any::<bool>(), 0u8..2);
    proptest::collection::vec((1u64..3, proptest::collection::vec(change, 0..3)), 2..18).prop_map(
        |steps| {
            const DOM: [&str; 2] = ["a", "b"];
            let mut t = 0u64;
            steps
                .into_iter()
                .map(|(gap, changes)| {
                    t += gap;
                    let mut u = Update::new();
                    for (rel, ins, x) in changes {
                        let tup = tuple![DOM[x as usize]];
                        if ins {
                            u.insert(RELATIONS[rel], tup);
                        } else {
                            u.delete(RELATIONS[rel], tup);
                        }
                    }
                    Transition::new(t, u)
                })
                .collect()
        },
    )
}

fn parallelism() -> impl Strategy<Value = Parallelism> {
    prop_oneof![
        Just(Parallelism::Sequential),
        Just(Parallelism::N(2)),
        Just(Parallelism::N(3)),
        Just(Parallelism::N(8)),
        Just(Parallelism::Auto),
    ]
}

proptest! {
    #[test]
    fn fleet_matches_independent_checkers(
        constraints in fleet(),
        ts in transitions(),
        par in parallelism(),
    ) {
        let cat = catalog();
        let mut singles: Vec<IncrementalChecker> = constraints
            .iter()
            .map(|c| {
                IncrementalChecker::new(c.clone(), Arc::clone(&cat))
                    .unwrap_or_else(|e| panic!("`{c}` does not compile: {e}"))
            })
            .collect();
        let mut set = ConstraintSet::new(constraints.iter().cloned(), Arc::clone(&cat))
            .map_err(|(c, e)| format!("`{c}`: {e}"))
            .unwrap()
            .with_parallelism(par);
        for tr in &ts {
            let expected: Vec<_> = singles
                .iter_mut()
                .map(|s| s.step(tr.time, &tr.update).expect("monotone stream"))
                .collect();
            let got = set.step(tr.time, &tr.update).expect("monotone stream");
            prop_assert_eq!(
                &got,
                &expected,
                "fleet diverged at t={} under {:?}",
                tr.time,
                par
            );
        }
        // The set's shared database matches any single checker's count.
        prop_assert_eq!(
            set.database().total_tuples(),
            singles
                .first()
                .map(|s| s.database().total_tuples())
                .unwrap_or(0)
        );
    }
}
