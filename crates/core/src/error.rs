//! Error types for constraint compilation.

use std::error::Error;
use std::fmt;

use rtic_temporal::safety::SafetyError;
use rtic_temporal::typecheck::TypeError;

/// A constraint failed to compile into a checkable form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// Sort checking against the catalog failed.
    Type(TypeError),
    /// The denial body is not safe-range (or violates an
    /// encoding-specific restriction).
    Safety(SafetyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type(e) => write!(f, "type error: {e}"),
            CompileError::Safety(e) => write!(f, "safety error: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Type(e) => Some(e),
            CompileError::Safety(e) => Some(e),
        }
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> CompileError {
        CompileError::Type(e)
    }
}

impl From<SafetyError> for CompileError {
    fn from(e: SafetyError) -> CompileError {
        CompileError::Safety(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_inner_errors() {
        let e = CompileError::Safety(SafetyError::NotNormalized);
        assert!(e.to_string().contains("safety error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
