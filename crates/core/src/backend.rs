//! The canonical enumeration of checker backends.
//!
//! Every surface that names backends — the CLI's `--checker` flag, the
//! experiment tables in `rtic-bench`, and the differential-testing oracle
//! in `rtic-oracle` — used to carry its own copy of the
//! `incremental|naive|windowed|active` list, and the copies drifted. This
//! module is the single source of truth: parsing, display names, and the
//! ordered list all come from [`BackendId`].
//!
//! Construction stays with the callers (the `active` backend lives in a
//! downstream crate), but names and enumeration are shared.

use std::fmt;
use std::str::FromStr;

/// A per-constraint checker implementation, by name.
///
/// The order of [`BackendId::ALL`] is the canonical presentation order
/// (CLI help, experiment table columns, oracle backend lists).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BackendId {
    /// The paper's bounded history encoding ([`crate::IncrementalChecker`]).
    Incremental,
    /// Full-history re-evaluation ([`crate::NaiveChecker`]), the
    /// semantics-defining reference.
    Naive,
    /// Horizon-window re-evaluation ([`crate::WindowedChecker`]).
    Windowed,
    /// The trigger-based realization (`rtic-active`'s `ActiveChecker`).
    Active,
}

impl BackendId {
    /// Every backend, in canonical presentation order.
    pub const ALL: [BackendId; 4] = [
        BackendId::Incremental,
        BackendId::Naive,
        BackendId::Windowed,
        BackendId::Active,
    ];

    /// The backend's flag/report name.
    pub fn name(self) -> &'static str {
        match self {
            BackendId::Incremental => "incremental",
            BackendId::Naive => "naive",
            BackendId::Windowed => "windowed",
            BackendId::Active => "active",
        }
    }

    /// Parses a flag value; `None` for unknown names.
    pub fn parse(s: &str) -> Option<BackendId> {
        BackendId::ALL.into_iter().find(|b| b.name() == s)
    }

    /// The `a|b|c` listing for usage strings and error messages.
    pub fn flag_help() -> String {
        let names: Vec<&str> = BackendId::ALL.iter().map(|b| b.name()).collect();
        names.join("|")
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendId {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendId, String> {
        BackendId::parse(s).ok_or_else(|| {
            format!(
                "unknown checker `{s}` (expected {})",
                BackendId::flag_help()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_backend() {
        for b in BackendId::ALL {
            assert_eq!(BackendId::parse(b.name()), Some(b));
            assert_eq!(b.name().parse::<BackendId>(), Ok(b));
        }
        assert_eq!(BackendId::parse("nope"), None);
    }

    #[test]
    fn flag_help_lists_all_in_order() {
        assert_eq!(BackendId::flag_help(), "incremental|naive|windowed|active");
    }

    #[test]
    fn unknown_name_error_lists_choices() {
        let err = "hybrid".parse::<BackendId>().unwrap_err();
        assert!(err.contains("incremental|naive|windowed|active"));
    }
}
