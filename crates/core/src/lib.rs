//! # rtic-core — bounded history encoding for real-time integrity constraints
//!
//! The primary contribution of *Real-Time Integrity Constraints* (Chomicki,
//! PODS 1992): checking Past Metric Temporal Logic constraints over a
//! database history **incrementally**, storing only the current state plus
//! auxiliary relations whose size is bounded by the constraint's metric
//! bounds and the active domain — independent of history length.
//!
//! Three interchangeable [`Checker`] implementations:
//!
//! * [`IncrementalChecker`] — the paper's bounded history encoding.
//! * [`NaiveChecker`] — stores the full history, re-evaluates from scratch
//!   (the semantics-defining baseline).
//! * [`WindowedChecker`] — stores only the formula's lookback horizon and
//!   evaluates naively over the window (the intermediate baseline).
//!
//! All three produce identical [`StepReport`]s on identical input — this is
//! property-tested — and expose [`SpaceStats`] so the paper's space and
//! time claims can be measured (see `rtic-bench`).
//!
//! ```
//! use rtic_core::{Checker, IncrementalChecker};
//! use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic_temporal::parser::parse_constraint;
//! use rtic_temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new()
//!         .with("reserved", Schema::of(&[("p", Sort::Str)]))
//!         .unwrap()
//!         .with("confirmed", Schema::of(&[("p", Sort::Str)]))
//!         .unwrap(),
//! );
//! let c = parse_constraint(
//!     "deny unconfirmed: once[2,*] reserved(p) && reserved(p) && !once confirmed(p)",
//! )
//! .unwrap();
//! let mut checker = IncrementalChecker::new(c, catalog).unwrap();
//! checker
//!     .step(TimePoint(0), &Update::new().with_insert("reserved", tuple!["ann"]))
//!     .unwrap();
//! let report = checker.step(TimePoint(2), &Update::new()).unwrap();
//! assert_eq!(report.violation_count(), 1); // two ticks passed, never confirmed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod backend;
mod binding;
mod checker;
pub mod checkpoint;
mod compile;
pub mod encode;
mod error;
pub mod eval;
pub mod explain;
mod incremental;
mod monitor;
pub mod naive;
pub mod observe;
pub mod plan;
mod report;
mod set;
mod shard;
mod windowed;

pub use backend::BackendId;
pub use binding::{Bindings, Scratch};
pub use checker::Checker;
pub use compile::{CompiledConstraint, ShardKey};
pub use error::CompileError;
pub use incremental::{EncodingOptions, IncrementalChecker, NodeStat};
pub use monitor::QueryMonitor;
pub use naive::NaiveChecker;
pub use observe::{NopObserver, StepEvent, StepObserver};
pub use plan::{
    EvalPlans, NodeCounters, NodeDesc, NodePlans, Plan, PlanProfile, PlanStats, ProfiledNode,
    RuntimePlanStats,
};
pub use report::{SpaceStats, StepReport};
pub use set::{ConstraintSet, DispatchStats, FleetHealth, Parallelism};
pub use shard::{ShardStats, DEFAULT_EVICT_AFTER};
pub use windowed::WindowedChecker;
