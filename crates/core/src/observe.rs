//! Step-boundary observation hooks.
//!
//! Production monitoring needs visibility into per-step latency,
//! per-constraint violation rates, and the bounded-space trajectory that is
//! the paper's central claim — without taxing the hot path when nobody is
//! watching. This module provides exactly the hook surface; the concrete
//! observers (metrics registry, structured trace writer, space sampler)
//! live in the `rtic-obs` crate.
//!
//! The design is zero-cost-when-disabled: the plain [`Checker::step`] path
//! is untouched, and instrumentation only exists on the separate
//! [`Checker::step_observed`] entry point. Passing [`NopObserver`] there
//! compiles down to the timing reads plus empty calls; not calling it at
//! all costs nothing.
//!
//! ```
//! use rtic_core::observe::{CollectingObserver, StepEvent};
//! use rtic_core::{Checker, IncrementalChecker};
//! use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic_temporal::parser::parse_constraint;
//! use rtic_temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new().with("p", Schema::of(&[("x", Sort::Str)])).unwrap(),
//! );
//! let c = parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap();
//! let mut checker = IncrementalChecker::new(c, catalog).unwrap();
//! let checker: &mut dyn Checker = &mut checker;
//! let mut obs = CollectingObserver::default();
//! checker
//!     .step_observed(
//!         TimePoint(1),
//!         &Update::new().with_insert("p", tuple!["a"]),
//!         &mut obs,
//!     )
//!     .unwrap();
//! assert!(matches!(obs.events[0], StepEvent::StepStart { .. }));
//! assert!(matches!(obs.events.last(), Some(StepEvent::StepEnd { .. })));
//! ```

use std::time::Instant;

use rtic_history::HistoryError;
use rtic_relation::{Symbol, Update};
use rtic_temporal::TimePoint;

use crate::checker::Checker;
use crate::report::{SpaceStats, StepReport};

/// One observable event at a step boundary.
///
/// Events are delivered in a fixed order per logical step:
/// `StepStart`, then per constraint `ConstraintEval` (and `Violation` when
/// witnesses were found), then `StepEnd`. `CheckpointSave`/
/// `CheckpointRestore` bracket persistence, and `SpaceSample` is emitted by
/// drivers on their own schedule (e.g. every N steps).
#[derive(Clone, Debug)]
pub enum StepEvent<'a> {
    /// A logical step (one transition) is about to be processed.
    StepStart {
        /// Checker implementation name (the run's backend).
        checker: &'static str,
        /// Timestamp of the incoming transition.
        time: TimePoint,
        /// Tuples inserted + deleted by the update.
        tuples: usize,
    },
    /// One constraint was evaluated against the new state.
    ConstraintEval {
        /// Checker implementation name.
        checker: &'static str,
        /// The constraint that was evaluated.
        constraint: Symbol,
        /// Timestamp of the new state.
        time: TimePoint,
        /// Violation witnesses found.
        violations: usize,
        /// Wall-clock time of this constraint's step, in nanoseconds.
        latency_ns: u64,
    },
    /// A constraint reported violation witnesses at this state.
    Violation {
        /// Checker implementation name.
        checker: &'static str,
        /// The full report, including the witness assignments.
        report: &'a StepReport,
    },
    /// The logical step finished.
    StepEnd {
        /// Checker implementation name (the run's backend).
        checker: &'static str,
        /// Timestamp of the new state.
        time: TimePoint,
        /// Violation witnesses across all constraints of the step.
        violations: usize,
        /// Wall-clock time of the whole logical step, in nanoseconds.
        latency_ns: u64,
    },
    /// A checkpoint was serialized.
    CheckpointSave {
        /// The checkpointed constraint.
        constraint: Symbol,
        /// Size of the serialized text.
        bytes: usize,
    },
    /// A checkpoint was restored.
    CheckpointRestore {
        /// The restored constraint.
        constraint: Symbol,
        /// Size of the serialized text.
        bytes: usize,
    },
    /// A constraint engine panicked mid-step and was quarantined: it
    /// stops producing reports while the rest of the fleet keeps
    /// checking (degraded mode). Emitted once, at the failing step.
    ConstraintQuarantined {
        /// Checker implementation name.
        checker: &'static str,
        /// The constraint whose engine panicked.
        constraint: Symbol,
        /// Timestamp of the step during which the panic happened.
        time: TimePoint,
        /// The rendered panic payload.
        detail: String,
    },
    /// A corrupt or unreadable checkpoint candidate was rejected during
    /// recovery and the next rotation entry was tried.
    CheckpointFallback {
        /// Path of the rejected candidate.
        path: String,
        /// Why it was rejected (checksum mismatch, truncation, ...).
        detail: String,
    },
    /// A malformed history line was skipped under a lenient bad-line
    /// policy (it would have aborted the run under the strict default).
    BadLine {
        /// 1-based line number in the history stream.
        line: usize,
        /// The parse error.
        detail: String,
    },
    /// A reading of a checker's compiled-plan statistics (plan node
    /// counts, cached index shapes, scratch high-water marks). Emitted by
    /// drivers once per run, after stepping, for checkers running the
    /// planned executor.
    PlanStatsSample {
        /// Checker implementation name.
        checker: &'static str,
        /// The constraint whose checker was sampled.
        constraint: Symbol,
        /// The plan statistics.
        stats: crate::plan::RuntimePlanStats,
    },
    /// A reading of a checker's per-plan-node execution profile (wall
    /// time, cardinalities, memo-cache hits). Emitted by drivers once per
    /// run, after stepping, for checkers built with
    /// `EncodingOptions::profile_plans`.
    PlanProfileSample {
        /// Checker implementation name.
        checker: &'static str,
        /// The constraint whose checker was profiled.
        constraint: Symbol,
        /// The accumulated profile.
        profile: &'a crate::plan::PlanProfile,
    },
    /// A scheduled reading of a checker's space footprint.
    SpaceSample {
        /// Checker implementation name.
        checker: &'static str,
        /// The constraint whose checker was sampled.
        constraint: Symbol,
        /// Timestamp of the state at which the sample was taken.
        time: TimePoint,
        /// 0-based index of the step after which the sample was taken.
        step_index: u64,
        /// The footprint.
        stats: SpaceStats,
    },
    /// A reading of a resident server's ingest-plane gauges (`rtic
    /// serve`): bounded-queue occupancy, backpressure sheds, client
    /// connections, and checkpoint freshness. Emitted by the serve
    /// driver after each processed command and at drain, so metrics
    /// snapshots and the Prometheus exposition carry the live queue
    /// picture alongside the checker counters.
    ServeSample {
        /// Updates currently waiting in the bounded ingest queue.
        queue_depth: usize,
        /// The queue's configured bound.
        queue_capacity: usize,
        /// High-water mark of the queue depth over the run.
        queue_peak: usize,
        /// Updates rejected with `BUSY` because the queue was full.
        shed: u64,
        /// Currently connected clients.
        connections: usize,
        /// Slow or stalled clients disconnected after the write timeout.
        disconnected: u64,
        /// Milliseconds since the last durable checkpoint, if any was
        /// written.
        last_checkpoint_age_ms: Option<u64>,
        /// Total graceful-drain duration in milliseconds, once drained.
        drain_ms: Option<u64>,
    },
    /// Progress of a statistical model-checking run (`rtic smc`): one
    /// event per completed sample, carrying the running worst-case bound
    /// and which constraints the sample violated. Emitted by the SMC
    /// harness in `rtic-smc`, so metrics snapshots and traces show the
    /// sampling trajectory live.
    SmcSample {
        /// The scenario being sampled.
        scenario: Symbol,
        /// 0-based index of the completed sample.
        sample: u64,
        /// The current worst-case sample bound (Okamoto, or the fixed
        /// sample count when adaptive stopping is off).
        bound: u64,
        /// Names of the constraints this sample violated at least once.
        violated_constraints: Vec<Symbol>,
    },
    /// A micro-batch of history lines was ingested as one unit
    /// ([`crate::ConstraintSet::apply_batch`], `rtic check --batch`,
    /// serve-side micro-batching). Emitted once per flushed batch, after
    /// the per-line events, so metrics can track realized batch sizes.
    BatchIngest {
        /// History lines (transitions) in the batch.
        lines: usize,
        /// Tuples inserted + deleted across the batch's updates.
        tuples: usize,
    },
    /// A scheduled reading of a sharded constraint's shard-lifecycle
    /// counters (emitted alongside its `SpaceSample` when the entity-key
    /// sharded data plane is enabled).
    ShardSample {
        /// Checker implementation name.
        checker: &'static str,
        /// The sharded constraint.
        constraint: Symbol,
        /// Timestamp of the state at which the sample was taken.
        time: TimePoint,
        /// 0-based index of the step after which the sample was taken.
        step_index: u64,
        /// The lifecycle counters.
        stats: crate::shard::ShardStats,
    },
}

impl StepEvent<'_> {
    /// Short machine-readable event name (used by the trace writer).
    pub fn kind(&self) -> &'static str {
        match self {
            StepEvent::StepStart { .. } => "step_start",
            StepEvent::ConstraintEval { .. } => "eval",
            StepEvent::Violation { .. } => "violation",
            StepEvent::StepEnd { .. } => "step",
            StepEvent::CheckpointSave { .. } => "checkpoint_save",
            StepEvent::CheckpointRestore { .. } => "checkpoint_restore",
            StepEvent::ConstraintQuarantined { .. } => "quarantine",
            StepEvent::CheckpointFallback { .. } => "checkpoint_fallback",
            StepEvent::BadLine { .. } => "bad_line",
            StepEvent::PlanStatsSample { .. } => "plan_stats",
            StepEvent::PlanProfileSample { .. } => "plan_profile",
            StepEvent::SpaceSample { .. } => "space_sample",
            StepEvent::ServeSample { .. } => "serve_sample",
            StepEvent::SmcSample { .. } => "smc_sample",
            StepEvent::BatchIngest { .. } => "batch_ingest",
            StepEvent::ShardSample { .. } => "shard_sample",
        }
    }
}

/// A sink for [`StepEvent`]s.
///
/// Observers must be behavior-neutral: they see borrowed reports and
/// cannot influence checking (property-tested in
/// `tests/observer_props.rs`).
pub trait StepObserver {
    /// Receives one event.
    fn observe(&mut self, event: &StepEvent<'_>);
}

/// The disabled observer: every hook is an empty inlinable call.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopObserver;

impl StepObserver for NopObserver {
    #[inline(always)]
    fn observe(&mut self, _event: &StepEvent<'_>) {}
}

/// An observer that owns copies of every event it sees — for tests and for
/// ad-hoc inspection. Violation reports are cloned into owned form.
#[derive(Clone, Debug, Default)]
pub struct CollectingObserver {
    /// The events, in delivery order (with `'static` owned reports).
    pub events: Vec<StepEvent<'static>>,
}

impl StepObserver for CollectingObserver {
    fn observe(&mut self, event: &StepEvent<'_>) {
        // Re-own the one borrowed variant so the copy is 'static.
        let owned: StepEvent<'static> = match event {
            StepEvent::Violation { checker, report } => {
                let leaked: &'static StepReport = Box::leak(Box::new((*report).clone()));
                StepEvent::Violation {
                    checker,
                    report: leaked,
                }
            }
            StepEvent::StepStart {
                checker,
                time,
                tuples,
            } => StepEvent::StepStart {
                checker,
                time: *time,
                tuples: *tuples,
            },
            StepEvent::ConstraintEval {
                checker,
                constraint,
                time,
                violations,
                latency_ns,
            } => StepEvent::ConstraintEval {
                checker,
                constraint: *constraint,
                time: *time,
                violations: *violations,
                latency_ns: *latency_ns,
            },
            StepEvent::StepEnd {
                checker,
                time,
                violations,
                latency_ns,
            } => StepEvent::StepEnd {
                checker,
                time: *time,
                violations: *violations,
                latency_ns: *latency_ns,
            },
            StepEvent::CheckpointSave { constraint, bytes } => StepEvent::CheckpointSave {
                constraint: *constraint,
                bytes: *bytes,
            },
            StepEvent::CheckpointRestore { constraint, bytes } => StepEvent::CheckpointRestore {
                constraint: *constraint,
                bytes: *bytes,
            },
            StepEvent::ConstraintQuarantined {
                checker,
                constraint,
                time,
                detail,
            } => StepEvent::ConstraintQuarantined {
                checker,
                constraint: *constraint,
                time: *time,
                detail: detail.clone(),
            },
            StepEvent::CheckpointFallback { path, detail } => StepEvent::CheckpointFallback {
                path: path.clone(),
                detail: detail.clone(),
            },
            StepEvent::BadLine { line, detail } => StepEvent::BadLine {
                line: *line,
                detail: detail.clone(),
            },
            StepEvent::PlanStatsSample {
                checker,
                constraint,
                stats,
            } => StepEvent::PlanStatsSample {
                checker,
                constraint: *constraint,
                stats: *stats,
            },
            StepEvent::PlanProfileSample {
                checker,
                constraint,
                profile,
            } => {
                // Re-own the borrowed profile so the copy is 'static.
                let leaked: &'static crate::plan::PlanProfile =
                    Box::leak(Box::new((*profile).clone()));
                StepEvent::PlanProfileSample {
                    checker,
                    constraint: *constraint,
                    profile: leaked,
                }
            }
            StepEvent::SpaceSample {
                checker,
                constraint,
                time,
                step_index,
                stats,
            } => StepEvent::SpaceSample {
                checker,
                constraint: *constraint,
                time: *time,
                step_index: *step_index,
                stats: *stats,
            },
            StepEvent::ServeSample {
                queue_depth,
                queue_capacity,
                queue_peak,
                shed,
                connections,
                disconnected,
                last_checkpoint_age_ms,
                drain_ms,
            } => StepEvent::ServeSample {
                queue_depth: *queue_depth,
                queue_capacity: *queue_capacity,
                queue_peak: *queue_peak,
                shed: *shed,
                connections: *connections,
                disconnected: *disconnected,
                last_checkpoint_age_ms: *last_checkpoint_age_ms,
                drain_ms: *drain_ms,
            },
            StepEvent::SmcSample {
                scenario,
                sample,
                bound,
                violated_constraints,
            } => StepEvent::SmcSample {
                scenario: *scenario,
                sample: *sample,
                bound: *bound,
                violated_constraints: violated_constraints.clone(),
            },
            StepEvent::BatchIngest { lines, tuples } => StepEvent::BatchIngest {
                lines: *lines,
                tuples: *tuples,
            },
            StepEvent::ShardSample {
                checker,
                constraint,
                time,
                step_index,
                stats,
            } => StepEvent::ShardSample {
                checker,
                constraint: *constraint,
                time: *time,
                step_index: *step_index,
                stats: *stats,
            },
        };
        self.events.push(owned);
    }
}

/// Steps several checkers (one per constraint, sharing a backend) through
/// one transition as a single logical step, emitting one
/// `StepStart`/`StepEnd` pair plus per-constraint events.
///
/// This is what the CLI and the experiment harness drive; a single checker
/// can use the equivalent [`Checker::step_observed`].
pub fn step_all(
    checkers: &mut [Box<dyn Checker>],
    time: TimePoint,
    update: &Update,
    obs: &mut dyn StepObserver,
) -> Result<Vec<StepReport>, HistoryError> {
    let label = checkers.first().map_or("none", |c| c.name());
    obs.observe(&StepEvent::StepStart {
        checker: label,
        time,
        tuples: update.len(),
    });
    let step_start = Instant::now();
    let mut reports = Vec::with_capacity(checkers.len());
    let mut total_violations = 0usize;
    for checker in checkers.iter_mut() {
        let eval_start = Instant::now();
        let report = checker.step(time, update)?;
        let latency_ns = eval_start.elapsed().as_nanos() as u64;
        total_violations += report.violation_count();
        obs.observe(&StepEvent::ConstraintEval {
            checker: checker.name(),
            constraint: report.constraint,
            time,
            violations: report.violation_count(),
            latency_ns,
        });
        if !report.ok() {
            obs.observe(&StepEvent::Violation {
                checker: checker.name(),
                report: &report,
            });
        }
        reports.push(report);
    }
    obs.observe(&StepEvent::StepEnd {
        checker: label,
        time,
        violations: total_violations,
        latency_ns: step_start.elapsed().as_nanos() as u64,
    });
    Ok(reports)
}

/// Emits one [`StepEvent::SpaceSample`] per checker (drivers call this on
/// their sampling schedule, e.g. every N transitions).
pub fn sample_space(
    checkers: &[Box<dyn Checker>],
    time: TimePoint,
    step_index: u64,
    obs: &mut dyn StepObserver,
) {
    for checker in checkers {
        obs.observe(&StepEvent::SpaceSample {
            checker: checker.name(),
            constraint: checker.constraint().name,
            time,
            step_index,
            stats: checker.space(),
        });
    }
}

/// Emits one [`StepEvent::PlanStatsSample`] per checker that reports plan
/// statistics ([`Checker::plan_stats`]). Drivers call this once per run,
/// after stepping, so the scratch high-water marks cover the whole run.
pub fn sample_plan_stats(checkers: &[Box<dyn Checker>], obs: &mut dyn StepObserver) {
    for checker in checkers {
        if let Some(stats) = checker.plan_stats() {
            obs.observe(&StepEvent::PlanStatsSample {
                checker: checker.name(),
                constraint: checker.constraint().name,
                stats,
            });
        }
    }
}

/// Emits one [`StepEvent::PlanProfileSample`] per checker that carries a
/// profile ([`Checker::plan_profile`]). Drivers call this once per run,
/// after stepping, so the counters cover the whole run.
pub fn sample_plan_profiles(checkers: &[Box<dyn Checker>], obs: &mut dyn StepObserver) {
    for checker in checkers {
        if let Some(profile) = checker.plan_profile() {
            obs.observe(&StepEvent::PlanProfileSample {
                checker: checker.name(),
                constraint: checker.constraint().name,
                profile: &profile,
            });
        }
    }
}

/// Emits one [`StepEvent::SpaceSample`] for a single checker and returns
/// the stats that were read, so callers polling space anyway don't walk
/// the aux structures twice.
pub fn sample_space_one(
    checker: &dyn Checker,
    time: TimePoint,
    step_index: u64,
    obs: &mut dyn StepObserver,
) -> SpaceStats {
    let stats = checker.space();
    obs.observe(&StepEvent::SpaceSample {
        checker: checker.name(),
        constraint: checker.constraint().name,
        time,
        step_index,
        stats,
    });
    stats
}

impl dyn Checker + '_ {
    /// [`Checker::step`] with observation: emits `StepStart`,
    /// `ConstraintEval` (+ `Violation` when witnesses were found) and
    /// `StepEnd` around the step. On error, events after `StepStart` are
    /// withheld — the step never completed.
    pub fn step_observed(
        &mut self,
        time: TimePoint,
        update: &Update,
        obs: &mut dyn StepObserver,
    ) -> Result<StepReport, HistoryError> {
        obs.observe(&StepEvent::StepStart {
            checker: self.name(),
            time,
            tuples: update.len(),
        });
        let start = Instant::now();
        let report = self.step(time, update)?;
        let latency_ns = start.elapsed().as_nanos() as u64;
        obs.observe(&StepEvent::ConstraintEval {
            checker: self.name(),
            constraint: report.constraint,
            time,
            violations: report.violation_count(),
            latency_ns,
        });
        if !report.ok() {
            obs.observe(&StepEvent::Violation {
                checker: self.name(),
                report: &report,
            });
        }
        obs.observe(&StepEvent::StepEnd {
            checker: self.name(),
            time,
            violations: report.violation_count(),
            latency_ns,
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IncrementalChecker;
    use rtic_relation::{tuple, Catalog, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;
    use std::sync::Arc;

    fn checker() -> IncrementalChecker {
        let catalog = Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        IncrementalChecker::new(
            parse_constraint("deny d: p(x) && hist[0,1] p(x)").unwrap(),
            catalog,
        )
        .unwrap()
    }

    #[test]
    fn step_observed_brackets_the_step() {
        let mut c = checker();
        let dyn_c: &mut dyn Checker = &mut c;
        let mut obs = CollectingObserver::default();
        dyn_c
            .step_observed(
                TimePoint(1),
                &Update::new().with_insert("p", tuple!["a"]),
                &mut obs,
            )
            .unwrap();
        let r = dyn_c
            .step_observed(TimePoint(2), &Update::new(), &mut obs)
            .unwrap();
        assert_eq!(r.violation_count(), 1);
        let kinds: Vec<&str> = obs.events.iter().map(StepEvent::kind).collect();
        // hist over the empty prefix is vacuously true, so the insert at
        // t=1 already violates; both steps emit the full event quartet.
        assert_eq!(
            kinds,
            vec![
                "step_start",
                "eval",
                "violation",
                "step",
                "step_start",
                "eval",
                "violation",
                "step"
            ]
        );
        let StepEvent::StepStart { tuples, .. } = obs.events[0] else {
            panic!("first event must be step_start");
        };
        assert_eq!(tuples, 1);
    }

    #[test]
    fn step_observed_matches_plain_step() {
        let mut observed = checker();
        let mut plain = checker();
        let updates = [
            Update::new().with_insert("p", tuple!["a"]),
            Update::new(),
            Update::new().with_delete("p", tuple!["a"]),
        ];
        for (t, u) in updates.iter().enumerate() {
            let dyn_c: &mut dyn Checker = &mut observed;
            let a = dyn_c
                .step_observed(TimePoint(t as u64), u, &mut NopObserver)
                .unwrap();
            let b = plain.step(TimePoint(t as u64), u).unwrap();
            assert_eq!(a, b, "observation changed the verdict at t={t}");
        }
    }

    #[test]
    fn step_all_emits_one_step_per_transition() {
        let mut checkers: Vec<Box<dyn Checker>> = vec![Box::new(checker()), Box::new(checker())];
        let mut obs = CollectingObserver::default();
        step_all(
            &mut checkers,
            TimePoint(1),
            &Update::new().with_insert("p", tuple!["a"]),
            &mut obs,
        )
        .unwrap();
        step_all(&mut checkers, TimePoint(2), &Update::new(), &mut obs).unwrap();
        let steps = obs.events.iter().filter(|e| e.kind() == "step").count();
        assert_eq!(steps, 2, "one step event per transition, not per checker");
        let evals = obs.events.iter().filter(|e| e.kind() == "eval").count();
        assert_eq!(evals, 4, "one eval event per checker per transition");
    }

    #[test]
    fn sample_space_reports_per_checker() {
        let mut checkers: Vec<Box<dyn Checker>> = vec![Box::new(checker())];
        step_all(
            &mut checkers,
            TimePoint(1),
            &Update::new(),
            &mut NopObserver,
        )
        .unwrap();
        let mut obs = CollectingObserver::default();
        sample_space(&checkers, TimePoint(1), 0, &mut obs);
        assert_eq!(obs.events.len(), 1);
        assert!(matches!(obs.events[0], StepEvent::SpaceSample { .. }));
    }

    #[test]
    fn failed_step_withholds_completion_events() {
        let mut c = checker();
        let dyn_c: &mut dyn Checker = &mut c;
        let mut obs = CollectingObserver::default();
        dyn_c
            .step_observed(TimePoint(5), &Update::new(), &mut obs)
            .unwrap();
        // Non-monotonic time: the step fails after StepStart.
        assert!(dyn_c
            .step_observed(TimePoint(5), &Update::new(), &mut obs)
            .is_err());
        let kinds: Vec<&str> = obs.events.iter().map(StepEvent::kind).collect();
        assert_eq!(kinds, vec!["step_start", "eval", "step", "step_start"]);
    }
}
