//! Bounded history encoding: the per-subformula auxiliary state.
//!
//! For every temporal subformula the incremental checker keeps a small
//! amount of state, updated at each transition from (a) the previous state
//! of the encoding and (b) the operand extensions at the *new* state only.
//! No past database state is ever consulted — this is the paper's central
//! construction, and the size of the state per live key is bounded by the
//! subformula's metric bound, independent of history length:
//!
//! * `once[a,b] g` / `f since[a,b] g` — a set of timestamps per key
//!   ([`Stamps`]), specialised to a single timestamp when `a = 0` (keep the
//!   latest) or `b = ∞` (keep the earliest), and a pruned sorted deque
//!   (≤ `b + 1` entries on an integer clock) otherwise.
//! * `hist[a,b] g`, `b` finite — per key, the maximal *runs* of consecutive
//!   states on which `g` held, pruned to the last `b` ticks, plus one shared
//!   deque of recent state timestamps.
//! * `hist[a,∞] g` — per key, the end of its unbroken *prefix* run (frozen
//!   when the run breaks), plus a bounded window of recent state times to
//!   locate the newest state older than `a`.
//! * `prev[a,b] g` — the operand's extension at the previous state and that
//!   state's timestamp.

use std::collections::{HashMap, VecDeque};

use rtic_relation::Tuple;
use rtic_temporal::ast::Var;
use rtic_temporal::time::{Duration, Interval, TimePoint, UpperBound};

use crate::binding::Bindings;

/// Timestamp storage for one key of a `once`/`since` node.
///
/// The paper's bound: on an integer clock, a window of span `b` holds at
/// most `b + 1` distinct timestamps; with `a = 0` only the newest witness
/// matters, with `b = ∞` only the oldest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stamps {
    /// `a = 0`: the latest satisfaction/anchor time is the best witness.
    Latest(TimePoint),
    /// `b = ∞`, `a > 0`: the earliest time is the best witness.
    Earliest(TimePoint),
    /// General `[a, b]`: all times in the last `b` ticks, sorted ascending.
    Many(VecDeque<TimePoint>),
}

/// Which [`Stamps`] representation an interval calls for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StampPolicy {
    /// Keep only the latest timestamp.
    Latest,
    /// Keep only the earliest timestamp.
    Earliest,
    /// Keep the pruned deque.
    Many,
}

impl StampPolicy {
    /// Selects the specialisation for `interval` (the T6 ablation can force
    /// [`StampPolicy::Many`] instead).
    pub fn for_interval(interval: &Interval) -> StampPolicy {
        if interval.lo().0 == 0 {
            StampPolicy::Latest
        } else if !interval.is_bounded() {
            StampPolicy::Earliest
        } else {
            StampPolicy::Many
        }
    }
}

impl Stamps {
    fn new(policy: StampPolicy, t: TimePoint) -> Stamps {
        match policy {
            StampPolicy::Latest => Stamps::Latest(t),
            StampPolicy::Earliest => Stamps::Earliest(t),
            StampPolicy::Many => Stamps::Many(VecDeque::from([t])),
        }
    }

    /// Records a new (strictly newest) satisfaction time.
    fn add(&mut self, t: TimePoint) {
        match self {
            Stamps::Latest(cur) => *cur = t,
            Stamps::Earliest(_) => {} // the earliest can only be the first
            Stamps::Many(dq) => {
                debug_assert!(dq.back().is_none_or(|&b| b < t));
                dq.push_back(t);
            }
        }
    }

    /// Drops timestamps strictly before `cutoff`; returns whether any
    /// remain.
    fn prune(&mut self, cutoff: TimePoint) -> bool {
        match self {
            Stamps::Latest(t) => *t >= cutoff,
            Stamps::Earliest(_) => true, // only used when b = ∞: no cutoff
            Stamps::Many(dq) => {
                while dq.front().is_some_and(|&t| t < cutoff) {
                    dq.pop_front();
                }
                !dq.is_empty()
            }
        }
    }

    /// Whether any stored timestamp lies in `[w_lo, w_hi]`.
    fn any_in(&self, w_lo: TimePoint, w_hi: TimePoint) -> bool {
        match self {
            Stamps::Latest(t) | Stamps::Earliest(t) => *t >= w_lo && *t <= w_hi,
            Stamps::Many(dq) => {
                // dq is sorted ascending; find the first ≥ w_lo.
                let idx = dq.partition_point(|&t| t < w_lo);
                dq.get(idx).is_some_and(|&t| t <= w_hi)
            }
        }
    }

    /// Number of timestamps stored (space accounting).
    pub fn len(&self) -> usize {
        match self {
            Stamps::Latest(_) | Stamps::Earliest(_) => 1,
            Stamps::Many(dq) => dq.len(),
        }
    }

    /// Whether no timestamps are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Auxiliary state of a `once[I] g` or `f since[I] g` node.
#[derive(Clone, Debug)]
pub struct WindowState {
    interval: Interval,
    policy: StampPolicy,
    vars: Vec<Var>,
    stamps: HashMap<Tuple, Stamps>,
}

impl WindowState {
    /// Fresh state for a node with sorted free variables `vars`.
    pub fn new(interval: Interval, vars: Vec<Var>, policy: StampPolicy) -> WindowState {
        WindowState {
            interval,
            policy,
            vars,
            stamps: HashMap::new(),
        }
    }

    /// The node's sorted free variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Current keys as a binding set (the `since` update evaluates the
    /// maintained formula `f` over exactly these candidates).
    pub fn keys(&self) -> Bindings {
        Bindings::from_rows(self.vars.clone(), self.stamps.keys().cloned())
    }

    /// `since` only: drops every key not in `survivors` (keys where the
    /// maintained formula `f` failed at the new state lose all anchors).
    pub fn retain_keys(&mut self, survivors: &Bindings) {
        debug_assert_eq!(survivors.vars(), self.vars.as_slice());
        self.stamps.retain(|k, _| survivors.contains(k));
    }

    /// Whether re-recording an unchanged satisfaction set is observationally
    /// a no-op, so maintenance may skip [`WindowState::add_and_prune`] when
    /// the extension is provably identical to the previous step's.
    ///
    /// Holds exactly when the upper bound is infinite (no pruning ever
    /// removes a key, so every key of an unchanged set is already stored)
    /// and the stamp policy is a one-timestamp specialisation: `Earliest`
    /// never rewrites, and `Latest` only arises with `lo = 0`, where any
    /// stored stamp satisfies the `[0, ∞)` window regardless of its value.
    /// The general deque (`Many`, including the T6 ablation) must keep
    /// recording — its timestamp count is observable in space statistics.
    pub fn absorb_is_noop(&self) -> bool {
        !self.interval.is_bounded() && self.policy != StampPolicy::Many
    }

    /// Records the keys satisfying the anchor formula at the new state
    /// `t_now`, then prunes timestamps that have left every future window.
    pub fn add_and_prune(&mut self, sat_now: &Bindings, t_now: TimePoint) {
        debug_assert_eq!(sat_now.vars(), self.vars.as_slice());
        for row in sat_now.rows() {
            match self.stamps.get_mut(row) {
                Some(s) => s.add(t_now),
                None => {
                    self.stamps
                        .insert(row.clone(), Stamps::new(self.policy, t_now));
                }
            }
        }
        if let UpperBound::Finite(b) = self.interval.hi() {
            let cutoff = t_now.minus(b).unwrap_or(TimePoint(0));
            self.stamps.retain(|_, s| s.prune(cutoff));
        }
    }

    /// Whether [`WindowState::satisfied`] is monotone in `t_now` for a
    /// window that only ever *gains* stamps (i.e. a `once` node — `since`
    /// windows drop keys via [`WindowState::retain_keys`] and must not rely
    /// on this): with an infinite upper bound no stamp is ever pruned and
    /// the admissible window `[0, t − lo]` only widens, so a key that
    /// satisfies the window at some state satisfies it at every later one.
    pub fn probe_monotone(&self) -> bool {
        !self.interval.is_bounded()
    }

    /// O(1) membership probe: whether `key` has a witness whose age lies in
    /// the interval at `t_now`. Consistent with [`WindowState::extension`].
    pub fn satisfied(&self, key: &Tuple, t_now: TimePoint) -> bool {
        match self.interval.window_at(t_now) {
            None => false,
            Some((w_lo, w_hi)) => self.stamps.get(key).is_some_and(|s| s.any_in(w_lo, w_hi)),
        }
    }

    /// The node's extension at `t_now`: keys with a witness whose age lies
    /// in the interval.
    pub fn extension(&self, t_now: TimePoint) -> Bindings {
        match self.interval.window_at(t_now) {
            None => Bindings::none(self.vars.iter().copied()),
            Some((w_lo, w_hi)) => Bindings::from_rows(
                self.vars.clone(),
                self.stamps
                    .iter()
                    .filter(|(_, s)| s.any_in(w_lo, w_hi))
                    .map(|(k, _)| k.clone()),
            ),
        }
    }

    /// `(keys, timestamps)` stored — the quantities bounded by the paper.
    pub fn space(&self) -> (usize, usize) {
        (
            self.stamps.len(),
            self.stamps.values().map(Stamps::len).sum(),
        )
    }

    /// Dumps every entry as `(key, ascending timestamps)` in deterministic
    /// (key) order — the checkpoint codec's view of the state.
    pub fn dump(&self) -> Vec<(Tuple, Vec<TimePoint>)> {
        let mut out: Vec<(Tuple, Vec<TimePoint>)> = self
            .stamps
            .iter()
            .map(|(k, s)| {
                let ts = match s {
                    Stamps::Latest(t) | Stamps::Earliest(t) => vec![*t],
                    Stamps::Many(dq) => dq.iter().copied().collect(),
                };
                (k.clone(), ts)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Restores one dumped entry. Timestamps must be ascending; under the
    /// one-timestamp policies only the policy-relevant stamp is kept.
    pub fn restore_entry(&mut self, key: Tuple, stamps: &[TimePoint]) {
        assert!(!stamps.is_empty(), "dumped entries are non-empty");
        assert!(stamps.windows(2).all(|w| w[0] < w[1]), "stamps must ascend");
        let s = match self.policy {
            StampPolicy::Latest => Stamps::Latest(*stamps.last().expect("non-empty")),
            StampPolicy::Earliest => Stamps::Earliest(stamps[0]),
            StampPolicy::Many => Stamps::Many(stamps.iter().copied().collect()),
        };
        self.stamps.insert(key, s);
    }
}

/// Auxiliary state of a `prev[I] g` node: the operand extension at the
/// previous state.
#[derive(Clone, Debug)]
pub struct PrevState {
    interval: Interval,
    vars: Vec<Var>,
    prev_sat: Option<(TimePoint, Bindings)>,
}

impl PrevState {
    /// Fresh state.
    pub fn new(interval: Interval, vars: Vec<Var>) -> PrevState {
        PrevState {
            interval,
            vars,
            prev_sat: None,
        }
    }

    /// The node's sorted free variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Computes the extension at `t_now` **from the stored previous state**
    /// and then replaces it with `sat_now` (the operand's extension at the
    /// new state).
    pub fn step(&mut self, sat_now: Bindings, t_now: TimePoint) -> Bindings {
        let ext = match &self.prev_sat {
            Some((t_prev, sat)) if self.interval.contains(t_now.age_of(*t_prev)) => sat.clone(),
            _ => Bindings::none(self.vars.iter().copied()),
        };
        self.prev_sat = Some((t_now, sat_now));
        ext
    }

    /// `(keys, timestamps)` stored.
    pub fn space(&self) -> (usize, usize) {
        match &self.prev_sat {
            Some((_, sat)) => (sat.len(), 1),
            None => (0, 0),
        }
    }

    /// Dumps the stored previous-state extension, if any.
    pub fn dump(&self) -> Option<(TimePoint, Vec<Tuple>)> {
        self.prev_sat
            .as_ref()
            .map(|(t, sat)| (*t, sat.sorted_rows().into_iter().cloned().collect()))
    }

    /// Restores a dumped previous-state extension.
    pub fn restore(&mut self, t: TimePoint, rows: Vec<Tuple>) {
        self.prev_sat = Some((t, Bindings::from_rows(self.vars.clone(), rows)));
    }
}

/// Auxiliary state of a `hist[a,b] g` node with finite `b`.
#[derive(Clone, Debug)]
pub struct HistFiniteState {
    interval: Interval,
    bound: Duration,
    vars: Vec<Var>,
    /// Per key: maximal runs `(start, end)` of consecutive states on which
    /// the operand held, sorted, pruned to ends within the last `bound`.
    runs: HashMap<Tuple, VecDeque<(TimePoint, TimePoint)>>,
    /// Timestamps of all states in the last `bound` ticks.
    state_times: VecDeque<TimePoint>,
}

impl HistFiniteState {
    /// Fresh state; `interval.hi()` must be finite.
    pub fn new(interval: Interval, vars: Vec<Var>) -> HistFiniteState {
        let bound = interval
            .hi()
            .finite()
            .expect("HistFiniteState requires a finite bound");
        HistFiniteState {
            interval,
            bound,
            vars,
            runs: HashMap::new(),
            state_times: VecDeque::new(),
        }
    }

    /// The node's sorted free variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Advances to the new state: `sat_now` is the operand's extension,
    /// `prev_time` the previous state's timestamp (`None` at state 0).
    pub fn step(&mut self, sat_now: &Bindings, t_now: TimePoint, prev_time: Option<TimePoint>) {
        debug_assert_eq!(sat_now.vars(), self.vars.as_slice());
        for row in sat_now.rows() {
            let runs = self.runs.entry(row.clone()).or_default();
            match (runs.back_mut(), prev_time) {
                (Some(last), Some(pt)) if last.1 == pt => last.1 = t_now,
                _ => runs.push_back((t_now, t_now)),
            }
        }
        self.state_times.push_back(t_now);
        let cutoff = t_now.minus(self.bound).unwrap_or(TimePoint(0));
        while self.state_times.front().is_some_and(|&t| t < cutoff) {
            self.state_times.pop_front();
        }
        self.runs.retain(|_, runs| {
            while runs.front().is_some_and(|&(_, end)| end < cutoff) {
                runs.pop_front();
            }
            !runs.is_empty()
        });
    }

    /// Whether the node holds for `key` at `t_now`: every state whose age
    /// lies in the interval is covered by one of the key's runs. Vacuously
    /// true when the window contains no state.
    pub fn holds(&self, key: &Tuple, t_now: TimePoint) -> bool {
        let Some((w_lo, w_hi)) = self.interval.window_at(t_now) else {
            return true; // no admissible age exists at all
        };
        let empty = VecDeque::new();
        let runs = self.runs.get(key).unwrap_or(&empty);
        let mut run_idx = 0;
        let start = self.state_times.partition_point(|&t| t < w_lo);
        for i in start..self.state_times.len() {
            let tau = self.state_times[i];
            if tau > w_hi {
                break;
            }
            // Advance past runs ending before tau; check coverage.
            while run_idx < runs.len() && runs[run_idx].1 < tau {
                run_idx += 1;
            }
            match runs.get(run_idx) {
                Some(&(s, e)) if s <= tau && tau <= e => {}
                _ => return false,
            }
        }
        true
    }

    /// `(keys, timestamps)` stored: run endpoints count as two timestamps;
    /// the shared state-time deque is reported too.
    pub fn space(&self) -> (usize, usize) {
        let run_stamps: usize = self.runs.values().map(|r| 2 * r.len()).sum();
        (self.runs.len(), run_stamps + self.state_times.len())
    }

    /// Dumps `(key, runs)` entries in deterministic order plus the recent
    /// state times.
    #[allow(clippy::type_complexity)] // the checkpoint codec's exact shape
    pub fn dump(&self) -> (Vec<(Tuple, Vec<(TimePoint, TimePoint)>)>, Vec<TimePoint>) {
        let mut entries: Vec<(Tuple, Vec<(TimePoint, TimePoint)>)> = self
            .runs
            .iter()
            .map(|(k, r)| (k.clone(), r.iter().copied().collect()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        (entries, self.state_times.iter().copied().collect())
    }

    /// Restores a dumped state.
    pub fn restore(
        &mut self,
        entries: Vec<(Tuple, Vec<(TimePoint, TimePoint)>)>,
        state_times: Vec<TimePoint>,
    ) {
        self.runs = entries
            .into_iter()
            .map(|(k, r)| (k, r.into_iter().collect()))
            .collect();
        self.state_times = state_times.into_iter().collect();
    }
}

/// Auxiliary state of a `hist[a,∞] g` node.
#[derive(Clone, Debug)]
pub struct HistInfState {
    lo: Duration,
    vars: Vec<Var>,
    started: bool,
    /// End of each key's prefix run (the run beginning at state 0). Frozen
    /// when the run breaks; pruned once it can no longer satisfy a query.
    prefix_end: HashMap<Tuple, TimePoint>,
    /// Keys whose prefix run is still growing.
    active: std::collections::BTreeSet<Tuple>,
    /// State times newer than `t_now − lo` (bounded by `lo + 1`).
    recent_times: VecDeque<TimePoint>,
    /// The newest state time ≤ `t_now − lo`, if any.
    latest_older: Option<TimePoint>,
}

impl HistInfState {
    /// Fresh state; `interval.hi()` must be infinite.
    pub fn new(interval: Interval, vars: Vec<Var>) -> HistInfState {
        assert!(
            !interval.is_bounded(),
            "HistInfState requires an unbounded interval"
        );
        HistInfState {
            lo: interval.lo(),
            vars,
            started: false,
            prefix_end: HashMap::new(),
            active: std::collections::BTreeSet::new(),
            recent_times: VecDeque::new(),
            latest_older: None,
        }
    }

    /// The node's sorted free variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Advances to the new state.
    pub fn step(&mut self, sat_now: &Bindings, t_now: TimePoint) {
        debug_assert_eq!(sat_now.vars(), self.vars.as_slice());
        if !self.started {
            self.started = true;
            for row in sat_now.rows() {
                self.prefix_end.insert(row.clone(), t_now);
                self.active.insert(row.clone());
            }
        } else {
            let mut broken = Vec::new();
            for key in &self.active {
                if sat_now.contains(key) {
                    self.prefix_end.insert(key.clone(), t_now);
                } else {
                    broken.push(key.clone());
                }
            }
            for key in broken {
                self.active.remove(&key); // prefix_end stays frozen
            }
        }
        // Slide the `lo` window over state times.
        self.recent_times.push_back(t_now);
        let threshold = t_now.minus(self.lo);
        while self
            .recent_times
            .front()
            .is_some_and(|&t| threshold.is_some_and(|th| t <= th))
        {
            let t = self.recent_times.pop_front().expect("front checked");
            self.latest_older = Some(self.latest_older.map_or(t, |m| m.max(t)));
        }
        // Frozen entries that already fail against the (nondecreasing)
        // query point are dead.
        if let Some(m) = self.latest_older {
            let active = &self.active;
            self.prefix_end
                .retain(|k, &mut e| e >= m || active.contains(k));
        }
    }

    /// Whether the node holds for `key` at the current state.
    pub fn holds(&self, key: &Tuple) -> bool {
        match self.latest_older {
            None => true, // no state is old enough: vacuous
            Some(m) => self.prefix_end.get(key).is_some_and(|&e| e >= m),
        }
    }

    /// `(keys, timestamps)` stored.
    pub fn space(&self) -> (usize, usize) {
        (
            self.prefix_end.len(),
            self.prefix_end.len() + self.recent_times.len(),
        )
    }

    /// Dumps `(key, prefix end, still-active)` entries in deterministic
    /// order plus the window bookkeeping.
    pub fn dump(&self) -> HistInfDump {
        let mut entries: Vec<(Tuple, TimePoint, bool)> = self
            .prefix_end
            .iter()
            .map(|(k, e)| (k.clone(), *e, self.active.contains(k)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        HistInfDump {
            started: self.started,
            entries,
            recent_times: self.recent_times.iter().copied().collect(),
            latest_older: self.latest_older,
        }
    }

    /// Restores a dumped state.
    pub fn restore(&mut self, dump: HistInfDump) {
        self.started = dump.started;
        self.prefix_end.clear();
        self.active.clear();
        for (k, e, active) in dump.entries {
            if active {
                self.active.insert(k.clone());
            }
            self.prefix_end.insert(k, e);
        }
        self.recent_times = dump.recent_times.into_iter().collect();
        self.latest_older = dump.latest_older;
    }
}

/// The checkpointable content of a [`HistInfState`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistInfDump {
    /// Whether state 0 has been processed.
    pub started: bool,
    /// `(key, prefix end, still-active)`.
    pub entries: Vec<(Tuple, TimePoint, bool)>,
    /// State times newer than `t − lo`.
    pub recent_times: Vec<TimePoint>,
    /// Newest state time ≤ `t − lo`.
    pub latest_older: Option<TimePoint>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::tuple;
    use rtic_temporal::var;

    fn key(s: &str) -> Tuple {
        tuple![s]
    }

    fn sat(vars: &[Var], keys: &[&str]) -> Bindings {
        Bindings::from_rows(vars.to_vec(), keys.iter().map(|k| key(k)))
    }

    fn v() -> Vec<Var> {
        vec![var("encx")]
    }

    // ---- Stamps ---------------------------------------------------------

    #[test]
    fn stamp_policy_selection() {
        assert_eq!(
            StampPolicy::for_interval(&Interval::up_to(5)),
            StampPolicy::Latest
        );
        assert_eq!(
            StampPolicy::for_interval(&Interval::all()),
            StampPolicy::Latest
        );
        assert_eq!(
            StampPolicy::for_interval(&Interval::at_least(2)),
            StampPolicy::Earliest
        );
        assert_eq!(
            StampPolicy::for_interval(&Interval::bounded(1, 4).unwrap()),
            StampPolicy::Many
        );
    }

    #[test]
    fn many_stamps_prune_and_query() {
        let mut s = Stamps::new(StampPolicy::Many, TimePoint(1));
        s.add(TimePoint(3));
        s.add(TimePoint(7));
        assert!(s.any_in(TimePoint(2), TimePoint(3)));
        assert!(!s.any_in(TimePoint(4), TimePoint(6)));
        assert!(s.prune(TimePoint(4)));
        assert_eq!(s.len(), 1);
        assert!(!s.prune(TimePoint(8)), "everything pruned");
    }

    // ---- once -----------------------------------------------------------

    #[test]
    fn once_latest_window() {
        // once[0,2]: satisfied while age of latest witness ≤ 2.
        let i = Interval::up_to(2);
        let mut w = WindowState::new(i, v(), StampPolicy::for_interval(&i));
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(10));
        assert_eq!(w.extension(TimePoint(10)).len(), 1);
        w.add_and_prune(&sat(&v(), &[]), TimePoint(12));
        assert_eq!(w.extension(TimePoint(12)).len(), 1, "age 2 still in window");
        w.add_and_prune(&sat(&v(), &[]), TimePoint(13));
        assert!(w.extension(TimePoint(13)).is_empty(), "age 3 out of window");
        let (keys, _) = w.space();
        assert_eq!(keys, 0, "expired key pruned");
    }

    #[test]
    fn once_lower_bound_delays_visibility() {
        // once[2,4]: a witness only counts when its age reaches 2.
        let i = Interval::bounded(2, 4).unwrap();
        let mut w = WindowState::new(i, v(), StampPolicy::for_interval(&i));
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(10));
        assert!(w.extension(TimePoint(10)).is_empty(), "age 0 < 2");
        w.add_and_prune(&sat(&v(), &[]), TimePoint(12));
        assert_eq!(w.extension(TimePoint(12)).len(), 1, "age 2");
        w.add_and_prune(&sat(&v(), &[]), TimePoint(15));
        assert!(w.extension(TimePoint(15)).is_empty(), "age 5 > 4");
    }

    #[test]
    fn once_earliest_for_unbounded() {
        // once[3,*]: earliest witness decides.
        let i = Interval::at_least(3);
        let mut w = WindowState::new(i, v(), StampPolicy::for_interval(&i));
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(5));
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(7)); // later witness ignored
        assert!(w.extension(TimePoint(7)).is_empty());
        assert_eq!(w.extension(TimePoint(8)).len(), 1, "age of earliest = 3");
        let (_, stamps) = w.space();
        assert_eq!(stamps, 1, "one timestamp per key");
    }

    #[test]
    fn once_general_deque_bounded() {
        let i = Interval::bounded(1, 3).unwrap();
        let mut w = WindowState::new(i, v(), StampPolicy::for_interval(&i));
        for t in 1..=50u64 {
            w.add_and_prune(&sat(&v(), &["a"]), TimePoint(t));
            let (_, stamps) = w.space();
            assert!(stamps <= 4, "≤ b+1 stamps per key (got {stamps})");
        }
        assert_eq!(w.extension(TimePoint(50)).len(), 1);
    }

    // ---- since (via WindowState with retain) ----------------------------

    #[test]
    fn since_anchor_cleared_when_f_fails() {
        let i = Interval::all();
        let mut w = WindowState::new(i, v(), StampPolicy::for_interval(&i));
        // t=1: g holds for "a" -> anchor.
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(1));
        assert_eq!(w.extension(TimePoint(1)).len(), 1);
        // t=2: f holds (retain), no new anchor.
        w.retain_keys(&sat(&v(), &["a"]));
        w.add_and_prune(&sat(&v(), &[]), TimePoint(2));
        assert_eq!(w.extension(TimePoint(2)).len(), 1);
        // t=3: f fails -> all anchors die; no new anchor.
        w.retain_keys(&sat(&v(), &[]));
        w.add_and_prune(&sat(&v(), &[]), TimePoint(3));
        assert!(w.extension(TimePoint(3)).is_empty());
    }

    #[test]
    fn since_new_anchor_survives_f_failure() {
        // A key failing f but satisfying g at the same state anchors afresh.
        let i = Interval::all();
        let mut w = WindowState::new(i, v(), StampPolicy::for_interval(&i));
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(1));
        w.retain_keys(&sat(&v(), &[])); // f fails
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(2)); // but g holds again
        assert_eq!(w.extension(TimePoint(2)).len(), 1);
    }

    // ---- prev -----------------------------------------------------------

    #[test]
    fn prev_respects_age_gate() {
        let mut p = PrevState::new(Interval::bounded(1, 2).unwrap(), v());
        assert!(
            p.step(sat(&v(), &["a"]), TimePoint(5)).is_empty(),
            "no previous state"
        );
        // gap 2: admissible.
        let ext = p.step(sat(&v(), &["b"]), TimePoint(7));
        assert_eq!(ext.len(), 1);
        assert!(ext.contains(&key("a")));
        // gap 4: previous state too old.
        assert!(p.step(sat(&v(), &[]), TimePoint(11)).is_empty());
    }

    // ---- hist, finite ----------------------------------------------------

    #[test]
    fn hist_finite_requires_full_coverage() {
        let i = Interval::up_to(3);
        let mut h = HistFiniteState::new(i, v());
        h.step(&sat(&v(), &["a"]), TimePoint(1), None);
        assert!(h.holds(&key("a"), TimePoint(1)));
        h.step(&sat(&v(), &["a"]), TimePoint(2), Some(TimePoint(1)));
        assert!(h.holds(&key("a"), TimePoint(2)));
        // Miss a state.
        h.step(&sat(&v(), &[]), TimePoint(3), Some(TimePoint(2)));
        assert!(!h.holds(&key("a"), TimePoint(3)));
        // The gap ages out after bound ticks.
        h.step(&sat(&v(), &["a"]), TimePoint(5), Some(TimePoint(3)));
        h.step(&sat(&v(), &["a"]), TimePoint(7), Some(TimePoint(5)));
        assert!(
            h.holds(&key("a"), TimePoint(7)),
            "gap at t=3 now older than 3 ticks"
        );
    }

    #[test]
    fn hist_finite_vacuous_on_empty_window() {
        let i = Interval::bounded(3, 5).unwrap();
        let mut h = HistFiniteState::new(i, v());
        h.step(&sat(&v(), &[]), TimePoint(1), None);
        // At t=1 no state has age in [3,5]: vacuously true even for unseen keys.
        assert!(h.holds(&key("zzz"), TimePoint(1)));
        // At t=4 the state at t=1 enters the window: unseen key fails.
        h.step(&sat(&v(), &[]), TimePoint(4), Some(TimePoint(1)));
        assert!(!h.holds(&key("zzz"), TimePoint(4)));
    }

    #[test]
    fn hist_finite_never_seen_key_fails_nonempty_window() {
        let i = Interval::up_to(10);
        let mut h = HistFiniteState::new(i, v());
        h.step(&sat(&v(), &["a"]), TimePoint(1), None);
        assert!(!h.holds(&key("b"), TimePoint(1)));
    }

    #[test]
    fn hist_finite_space_is_window_bounded() {
        let i = Interval::up_to(4);
        let mut h = HistFiniteState::new(i, v());
        let mut prev = None;
        for t in 1..=100u64 {
            // Alternate satisfaction to maximize run count.
            let s = if t % 2 == 0 {
                sat(&v(), &["a"])
            } else {
                sat(&v(), &[])
            };
            h.step(&s, TimePoint(t), prev);
            prev = Some(TimePoint(t));
            let (_, stamps) = h.space();
            assert!(
                stamps <= 2 * 5 + 5,
                "runs+times bounded by window (got {stamps})"
            );
        }
    }

    #[test]
    fn huge_timestamps_do_not_overflow() {
        // Times near u64::MAX exercise the saturating window arithmetic.
        let base = u64::MAX - 10;
        let i = Interval::bounded(1, 3).unwrap();
        let mut w = WindowState::new(i, v(), StampPolicy::for_interval(&i));
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(base));
        assert!(w.extension(TimePoint(base)).is_empty(), "age 0 < lo");
        assert_eq!(w.extension(TimePoint(base + 2)).len(), 1);
        let mut h = HistFiniteState::new(Interval::up_to(2), v());
        h.step(&sat(&v(), &["a"]), TimePoint(base), None);
        h.step(
            &sat(&v(), &["a"]),
            TimePoint(base + 2),
            Some(TimePoint(base)),
        );
        assert!(h.holds(&key("a"), TimePoint(base + 2)));
    }

    #[test]
    fn early_clock_times_clip_at_origin() {
        // Windows reaching before t=0 clip rather than underflow.
        let i = Interval::bounded(0, 100).unwrap();
        let mut w = WindowState::new(i, v(), StampPolicy::Many);
        w.add_and_prune(&sat(&v(), &["a"]), TimePoint(1));
        assert_eq!(w.extension(TimePoint(2)).len(), 1);
        let mut h = HistInfState::new(Interval::at_least(5), v());
        h.step(&sat(&v(), &["a"]), TimePoint(2));
        assert!(h.holds(&key("a")), "window empty this early");
    }

    // ---- hist, unbounded --------------------------------------------------

    #[test]
    fn hist_inf_prefix_semantics() {
        let i = Interval::at_least(0);
        let mut h = HistInfState::new(i, v());
        h.step(&sat(&v(), &["a", "b"]), TimePoint(1));
        assert!(h.holds(&key("a")));
        h.step(&sat(&v(), &["a"]), TimePoint(2));
        assert!(h.holds(&key("a")));
        assert!(!h.holds(&key("b")), "b broke its prefix");
        assert!(!h.holds(&key("c")), "never satisfied");
        // b can never recover.
        h.step(&sat(&v(), &["a", "b"]), TimePoint(3));
        assert!(!h.holds(&key("b")));
        assert!(h.holds(&key("a")));
    }

    #[test]
    fn hist_inf_lower_bound_excludes_recent_states() {
        // hist[2,*]: the last 2 ticks don't count.
        let i = Interval::at_least(2);
        let mut h = HistInfState::new(i, v());
        h.step(&sat(&v(), &["a"]), TimePoint(1));
        assert!(h.holds(&key("a")), "window empty at t=1");
        assert!(h.holds(&key("z")), "vacuous for everyone");
        // a fails at t=2, but at t=2 the window is still empty (1 > 2-2=0).
        h.step(&sat(&v(), &[]), TimePoint(2));
        assert!(h.holds(&key("a")));
        // At t=3 the state at t=1 (age 2) enters the window; a held there.
        h.step(&sat(&v(), &[]), TimePoint(3));
        assert!(h.holds(&key("a")), "prefix covers state@1");
        assert!(!h.holds(&key("z")));
        // At t=4 the state at t=2 (where a failed) enters the window.
        h.step(&sat(&v(), &[]), TimePoint(4));
        assert!(!h.holds(&key("a")));
    }

    #[test]
    fn hist_inf_space_prunes_dead_keys() {
        let i = Interval::at_least(0);
        let mut h = HistInfState::new(i, v());
        h.step(&sat(&v(), &["a", "b", "c"]), TimePoint(1));
        h.step(&sat(&v(), &[]), TimePoint(2)); // everyone breaks
        h.step(&sat(&v(), &[]), TimePoint(3));
        let (keys, _) = h.space();
        assert_eq!(keys, 0, "frozen entries below the query point are pruned");
    }
}
