//! The common checker interface.

use rtic_history::{HistoryError, Transition};
use rtic_relation::Update;
use rtic_temporal::{Constraint, TimePoint};

use crate::plan::{PlanProfile, RuntimePlanStats};
use crate::report::{SpaceStats, StepReport};

/// An online integrity-constraint checker: consumes one transition at a
/// time and reports violations at each state.
///
/// All three implementations ([`crate::IncrementalChecker`],
/// [`crate::NaiveChecker`], [`crate::WindowedChecker`]) produce *identical
/// reports* on identical input (property-tested); they differ in what they
/// store and how long a step takes — exactly the axes the paper's
/// evaluation compares.
pub trait Checker {
    /// The constraint being checked.
    fn constraint(&self) -> &Constraint;

    /// Processes one transition and reports violations at the new state.
    fn step(&mut self, time: TimePoint, update: &Update) -> Result<StepReport, HistoryError>;

    /// What the checker currently retains.
    fn space(&self) -> SpaceStats;

    /// A short implementation name for experiment tables.
    fn name(&self) -> &'static str;

    /// Statistics of the compiled evaluation plans this checker executes
    /// (node counts, cached index shapes, scratch high-water marks), or
    /// `None` when the checker runs the interpreting evaluator instead.
    fn plan_stats(&self) -> Option<RuntimePlanStats> {
        None
    }

    /// The accumulated per-plan-node execution profile (wall time,
    /// cardinalities, memo-cache hit rates), or `None` when the checker
    /// was not built with profiling enabled (see
    /// `EncodingOptions::profile_plans`). Profiling never changes reports.
    fn plan_profile(&self) -> Option<PlanProfile> {
        None
    }

    /// Downcasting support (e.g. the CLI checkpoints the concrete
    /// [`crate::IncrementalChecker`] behind a `Box<dyn Checker>`).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Convenience: run a whole transition sequence, collecting reports.
    fn run(
        &mut self,
        transitions: impl IntoIterator<Item = Transition>,
    ) -> Result<Vec<StepReport>, HistoryError>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        for t in transitions {
            out.push(self.step(t.time, &t.update)?);
        }
        Ok(out)
    }
}
