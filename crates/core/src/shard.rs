//! Entity-key sharded evaluation of one constraint.
//!
//! When compile-time analysis finds a [`ShardKey`] — a variable every atom
//! of the body shares — the constraint never joins across key values, so
//! its evaluation decomposes into one independent monitor per key: a
//! per-entity constraint over millions of entities is really millions of
//! tiny checkers. A [`ShardedEngine`] realizes that decomposition: it
//! routes each transition's tuples to per-key sub-databases, advances one
//! [`NodeEngine`] per *live* key (so auxiliary windows, memo scratch, and
//! cache stamps are all shard-local), and merges the per-shard violation
//! sets back in ascending key order — a result byte-identical to the
//! unsharded engine's (asserted continuously by the differential oracle's
//! `fleet-sharded` backend).
//!
//! # The phantom engine
//!
//! Keys the stream has never mentioned must still *age*: temporal state
//! carries time-only bookkeeping (recent state timestamps, `prev`
//! cursors, `hist` prefix anchors) that advances on every transition even
//! when no tuple for the key arrives. Materializing every possible key is
//! exactly what sharding is meant to avoid, so the engine keeps one
//! **phantom** shard: an engine stepped on every transition against a
//! permanently empty database. Because that bookkeeping depends only on
//! the timestamp sequence — which every shard sees in full — the phantom
//! is state-identical to any never-touched shard, and a fresh key's shard
//! is created by cloning it. The same argument drives **eviction**: once
//! a shard's sub-database is empty, its auxiliary state holds no keys,
//! and its last report was clean, its entire state coincides with the
//! phantom's, so the shard can be dropped and recreated from the phantom
//! later without observable difference. A configurable idle horizon
//! delays the drop to avoid create/evict churn on flapping keys.

use std::collections::BTreeMap;
use std::time::Instant;

use rtic_relation::{Database, Update, Value};
use rtic_temporal::TimePoint;

use crate::binding::Bindings;
use crate::compile::ShardKey;
use crate::incremental::NodeEngine;

/// Default idle horizon: a shard whose state has matched the phantom's
/// for this many consecutive steps is evicted.
pub const DEFAULT_EVICT_AFTER: u32 = 16;

/// Shard-lifecycle counters for one sharded constraint (per run; they
/// restart at zero on resume, unlike dispatch stats).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Shards currently materialized.
    pub live: usize,
    /// Shards created since the run (or resume) began.
    pub created: u64,
    /// Idle shards evicted back into the phantom.
    pub evicted: u64,
    /// High-water mark of live shards.
    pub peak: usize,
}

/// One key's monitor: its restriction of the database plus a full
/// [`NodeEngine`] over it.
#[derive(Clone, Debug)]
pub(crate) struct Shard {
    pub(crate) db: Database,
    pub(crate) engine: NodeEngine,
    /// Whether this step's transition routed tuples here.
    touched: bool,
    /// This step's violations, set by [`Shard::eval`].
    violations: Option<Bindings>,
    latency_ns: u64,
    /// Consecutive steps the eviction gate has held.
    idle: u32,
}

impl Shard {
    fn new(engine: NodeEngine) -> Shard {
        let db = Database::new(std::sync::Arc::clone(&engine.compiled.catalog));
        Shard {
            db,
            engine,
            touched: false,
            violations: None,
            latency_ns: 0,
            idle: 0,
        }
    }

    /// Advances this shard one transition. Untouched shards try the
    /// quiescent fast path first (their sub-database did not change);
    /// everything else runs the full evaluation against the shard-local
    /// database — shard-local cache stamps make the memo scratch
    /// shard-local too.
    pub(crate) fn eval(&mut self, time: TimePoint) {
        let start = Instant::now();
        let fast = if self.touched {
            None
        } else {
            self.engine.advance_time(time)
        };
        let violations = match fast {
            Some(v) => v,
            None => {
                self.engine.advance(&self.db, time);
                self.engine.violations(&self.db, time)
            }
        };
        self.violations = Some(violations);
        self.latency_ns = start.elapsed().as_nanos() as u64;
    }
}

/// A constraint stepped as independent per-key shards (see the module
/// docs for the soundness argument).
#[derive(Clone, Debug)]
pub(crate) struct ShardedEngine {
    key: ShardKey,
    phantom: Shard,
    shards: BTreeMap<Value, Shard>,
    evict_after: u32,
    created: u64,
    evicted: u64,
    peak: usize,
}

impl ShardedEngine {
    /// Wraps a **fresh** (never stepped) engine whose compiled constraint
    /// has a shard key.
    pub(crate) fn new(engine: NodeEngine) -> ShardedEngine {
        let key = engine
            .compiled
            .shard_key
            .clone()
            .expect("sharded engines require a compile-time shard key");
        ShardedEngine {
            key,
            phantom: Shard::new(engine),
            shards: BTreeMap::new(),
            evict_after: DEFAULT_EVICT_AFTER,
            created: 0,
            evicted: 0,
            peak: 0,
        }
    }

    /// The compile-time key this engine partitions on.
    pub(crate) fn key(&self) -> &ShardKey {
        &self.key
    }

    /// Sets the idle-eviction horizon (steps of phantom-equivalence
    /// before a shard is dropped).
    pub(crate) fn set_evict_after(&mut self, horizon: u32) {
        self.evict_after = horizon.max(1);
    }

    /// Lifecycle counters.
    pub(crate) fn stats(&self) -> ShardStats {
        ShardStats {
            live: self.shards.len(),
            created: self.created,
            evicted: self.evicted,
            peak: self.peak,
        }
    }

    /// Summed auxiliary footprint of the live shards.
    pub(crate) fn aux_space(&self) -> (usize, usize) {
        let mut keys = 0;
        let mut stamps = 0;
        for s in self.shards.values() {
            let (k, t) = s.engine.aux_space();
            keys += k;
            stamps += t;
        }
        (keys, stamps)
    }

    /// Routes one transition's tuples into per-key sub-updates and
    /// applies them, creating shards (from the phantom) for keys whose
    /// sub-update actually inserts something — deletes against an
    /// unmaterialized key are no-ops under set semantics, exactly as they
    /// are against the phantom's empty database. Must run after the
    /// update was validated against the shared database and before
    /// [`ShardedEngine::jobs`].
    pub(crate) fn begin_step(&mut self, update: &Update) {
        let mut subs: BTreeMap<Value, Update> = BTreeMap::new();
        for (rel, tuples) in update.inserts() {
            if let Some(&col) = self.key.columns.get(&rel) {
                for t in tuples {
                    subs.entry(t.values()[col])
                        .or_default()
                        .insert(rel, t.clone());
                }
            }
        }
        for (rel, tuples) in update.deletes() {
            if let Some(&col) = self.key.columns.get(&rel) {
                for t in tuples {
                    subs.entry(t.values()[col])
                        .or_default()
                        .delete(rel, t.clone());
                }
            }
        }
        for (key, sub) in subs {
            let shard = match self.shards.get_mut(&key) {
                Some(s) => s,
                None => {
                    if sub.inserts().next().is_none() {
                        continue; // delete-only: nothing to materialize
                    }
                    self.created += 1;
                    self.shards.entry(key).or_insert_with(|| {
                        // The phantom clone inherits all time bookkeeping;
                        // its cloned database gets a fresh cache-stamp id,
                        // so no memo entry ever crosses shards.
                        self.phantom.clone()
                    })
                }
            };
            shard
                .db
                .apply(&sub)
                .expect("sub-update was validated by the shared database");
            shard.touched = true;
        }
        self.peak = self.peak.max(self.shards.len());
    }

    /// The step's independent work items — the phantom plus every live
    /// shard — for the caller to distribute over its worker pool.
    pub(crate) fn jobs(&mut self) -> impl Iterator<Item = &mut Shard> {
        std::iter::once(&mut self.phantom).chain(self.shards.values_mut())
    }

    /// Merges the per-shard violation sets in ascending key order and
    /// runs the eviction pass. Returns the merged violations plus the
    /// summed per-shard evaluation time. Every job from
    /// [`ShardedEngine::jobs`] must have been evaluated first.
    pub(crate) fn finish_step(&mut self) -> (Bindings, u64) {
        let mut latency = self.phantom.latency_ns;
        let mut merged = self
            .phantom
            .violations
            .take()
            .expect("phantom evaluated this step");
        debug_assert!(merged.is_empty(), "the phantom's database is empty");
        self.phantom.touched = false;
        let mut evict: Vec<Value> = Vec::new();
        for (key, shard) in self.shards.iter_mut() {
            let violations = shard
                .violations
                .take()
                .expect("every live shard evaluated this step");
            latency += shard.latency_ns;
            // Eviction gate: empty sub-database, no keyed auxiliary
            // state, clean report — the shard's remaining state is the
            // time-only bookkeeping the phantom shares, so dropping it
            // is unobservable.
            let phantom_equivalent = violations.is_empty()
                && shard.db.total_tuples() == 0
                && shard.engine.aux_space().0 == 0;
            merged.union_in_place(&violations);
            shard.touched = false;
            if phantom_equivalent {
                shard.idle += 1;
                if shard.idle >= self.evict_after {
                    evict.push(*key);
                }
            } else {
                shard.idle = 0;
            }
        }
        for key in evict {
            self.shards.remove(&key);
            self.evicted += 1;
        }
        (merged, latency)
    }

    // ——— checkpoint plumbing (see `crate::checkpoint`) ———

    /// The phantom's engine, for checkpoint serialization.
    pub(crate) fn phantom_engine(&self) -> &NodeEngine {
        &self.phantom.engine
    }

    /// Live shards in ascending key order, for checkpoint serialization.
    pub(crate) fn live_shards(&self) -> impl Iterator<Item = (&Value, &NodeEngine)> {
        self.shards.iter().map(|(k, s)| (k, &s.engine))
    }

    /// The phantom's engine, mutably, for checkpoint restore.
    pub(crate) fn phantom_engine_mut(&mut self) -> &mut NodeEngine {
        &mut self.phantom.engine
    }

    /// Materializes (from the phantom) and returns the shard for `key`
    /// during checkpoint restore.
    pub(crate) fn restore_shard(&mut self, key: Value) -> &mut Shard {
        self.shards
            .entry(key)
            .or_insert_with(|| self.phantom.clone())
    }

    /// Rebuilds every shard's sub-database from the restored shared
    /// database by partitioning on the key columns. Fails when a tuple's
    /// key has no checkpointed shard — live data always lives in a live
    /// shard (the eviction gate requires an empty sub-database).
    pub(crate) fn attach_partition(&mut self, db: &Database) -> Result<(), String> {
        for (&rel, &col) in &self.key.columns {
            let relation = db.relation(rel).map_err(|e| e.to_string())?;
            for tuple in relation.iter() {
                let key = tuple.values()[col];
                let shard = self.shards.get_mut(&key).ok_or_else(|| {
                    format!(
                        "tuple {tuple:?} of `{rel}` belongs to shard `{}`, \
                         which the checkpoint does not list",
                        key.to_literal()
                    )
                })?;
                shard
                    .db
                    .relation_mut(rel)
                    .map_err(|e| e.to_string())?
                    .insert(tuple.clone())
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }

    /// Sets the resume cursor on the phantom and every restored shard.
    pub(crate) fn set_last_time(&mut self, t: Option<TimePoint>) {
        self.phantom.engine.last_time = t;
        for s in self.shards.values_mut() {
            s.engine.last_time = t;
        }
    }
}
