//! Checking several constraints over one shared database state.
//!
//! A deployment rarely has a single constraint; a [`ConstraintSet`] applies
//! each transition **once** to one shared database and advances every
//! constraint's auxiliary engine against it, instead of paying for one
//! database copy per constraint as separate [`IncrementalChecker`]s would.
//!
//! Two scaling levers on top of that, both semantics-preserving:
//!
//! * **Relevance dispatch** — each compiled constraint knows which
//!   relations its body reads; an update touching none of them is a pure
//!   clock tick for that constraint, and when the engine's shape allows it
//!   ([`NodeEngine`]'s quiescent fast path) the tick is absorbed into the
//!   auxiliary state without re-running denial-body evaluation.
//! * **Parallel stepping** — engines that do need full evaluation are
//!   independent given the shared (immutable during the step) database, so
//!   they can fan out over scoped worker threads ([`Parallelism`]). Reports
//!   are always returned in constraint insertion order and are
//!   byte-identical to the sequential path.
//!
//! ```
//! use rtic_core::{ConstraintSet, Parallelism};
//! use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic_temporal::parser::parse_constraint;
//! use rtic_temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new()
//!         .with("job", Schema::of(&[("id", Sort::Int)]))
//!         .unwrap(),
//! );
//! let mut set = ConstraintSet::new(
//!     vec![
//!         parse_constraint("deny slow: job(j) && once[3,*] job(j)").unwrap(),
//!         parse_constraint("deny busy: job(j) && count k . (job(k)) > 1").unwrap(),
//!     ],
//!     catalog,
//! )
//! .unwrap()
//! .with_parallelism(Parallelism::N(2));
//! let reports = set
//!     .step(TimePoint(1), &Update::new().with_insert("job", tuple![7]))
//!     .unwrap();
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.ok()));
//! assert_eq!(set.space().stored_states, 1); // one shared state copy
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use rtic_history::HistoryError;
use rtic_relation::{Catalog, Database, Symbol, Update};
use rtic_temporal::{Constraint, TimePoint};

use crate::compile::CompiledConstraint;
use crate::error::CompileError;
use crate::incremental::{EncodingOptions, NodeEngine};
use crate::observe::{NopObserver, StepEvent, StepObserver};
use crate::report::{SpaceStats, StepReport};
use crate::shard::{Shard, ShardStats, ShardedEngine};

/// Worker budget for the full-evaluation phase of [`ConstraintSet::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// Everything on the calling thread.
    #[default]
    Sequential,
    /// At most this many scoped worker threads (`0` and `1` both mean
    /// sequential). Threads are spawned per step and joined before the
    /// step returns; no pool outlives a call.
    N(usize),
    /// One worker per available core.
    Auto,
}

impl Parallelism {
    /// Number of workers to actually use for `jobs` independent engines.
    fn workers(self, jobs: usize) -> usize {
        let cap = match self {
            Parallelism::Sequential => 1,
            Parallelism::N(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        cap.min(jobs).max(1)
    }
}

/// Best-effort rendering of a caught panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Running tallies of relevance-dispatch outcomes, summed over all steps
/// and engines (each engine contributes one tally per step).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DispatchStats {
    /// Full-path engine-steps where the update touched one of the
    /// constraint's relations.
    pub affected: u64,
    /// Engine-steps absorbed by the quiescent fast path: no operand or
    /// denial-body re-evaluation, only auxiliary window maintenance.
    pub skipped: u64,
    /// Engine-steps that were quiescent but still took the full path
    /// (ineligible shape, first step, or a prior violation to re-check).
    pub quiescent_full: u64,
    /// Engine-steps skipped because the constraint's engine had panicked
    /// earlier and is quarantined — the fleet is running degraded. Not
    /// part of [`DispatchStats::total`], since nothing was evaluated.
    pub quarantined: u64,
}

impl DispatchStats {
    /// Total engine-steps tallied.
    pub fn total(&self) -> u64 {
        self.affected + self.skipped + self.quiescent_full
    }
}

/// A fleet's health summary: engines still reporting vs. quarantined
/// after a mid-step panic ([`ConstraintSet::health`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FleetHealth {
    /// Engines still producing reports.
    pub healthy: usize,
    /// Engines quarantined after a panic; the fleet runs degraded.
    pub quarantined: usize,
}

impl FleetHealth {
    /// Whether any engine is quarantined.
    pub fn is_degraded(&self) -> bool {
        self.quarantined > 0
    }
}

/// A set of constraints checked together over one database.
#[derive(Clone, Debug)]
pub struct ConstraintSet {
    db: Database,
    engines: Vec<NodeEngine>,
    /// Entity-key sharded data plane, one slot per constraint: `Some`
    /// when sharding is enabled and the constraint has a compile-time
    /// [`crate::ShardKey`]. A sharded constraint steps through its
    /// [`ShardedEngine`] instead of its (then dormant) `engines` entry.
    shards: Vec<Option<ShardedEngine>>,
    last_time: Option<TimePoint>,
    steps: usize,
    parallelism: Parallelism,
    dispatch: DispatchStats,
    /// Per-engine quarantine reason; `Some` once the engine panicked.
    quarantined: Vec<Option<String>>,
    /// Fault injection: 1-based transition number at which each engine
    /// should panic (test/chaos tooling via [`ConstraintSet::arm_panic`]).
    armed_panics: Vec<Option<u64>>,
}

/// One unit of work for the full-evaluation phase: a whole unsharded
/// engine, or a single shard of a sharded one.
enum Job<'a> {
    Engine {
        inject: bool,
        engine: &'a mut NodeEngine,
    },
    Shard(&'a mut Shard),
}

/// Mutable view of a [`ConstraintSet`] for checkpoint restore.
pub(crate) struct RestoreParts<'a> {
    pub(crate) db: &'a mut Database,
    pub(crate) engines: &'a mut [NodeEngine],
    pub(crate) shards: &'a mut [Option<ShardedEngine>],
    pub(crate) steps: &'a mut usize,
    pub(crate) last_time: &'a mut Option<TimePoint>,
    pub(crate) dispatch: &'a mut DispatchStats,
}

impl ConstraintSet {
    /// Compiles every constraint against `catalog`. Fails on the first
    /// constraint that does not compile (the error names it via the
    /// returned pair).
    pub fn new(
        constraints: impl IntoIterator<Item = Constraint>,
        catalog: Arc<Catalog>,
    ) -> Result<ConstraintSet, (Constraint, CompileError)> {
        Self::with_options(constraints, catalog, EncodingOptions::default())
    }

    /// [`ConstraintSet::new`] with explicit [`EncodingOptions`] applied to
    /// every engine (e.g. `profile_plans` for fleet-wide profiling).
    pub fn with_options(
        constraints: impl IntoIterator<Item = Constraint>,
        catalog: Arc<Catalog>,
        options: EncodingOptions,
    ) -> Result<ConstraintSet, (Constraint, CompileError)> {
        let mut engines = Vec::new();
        for c in constraints {
            match CompiledConstraint::compile(c.clone(), Arc::clone(&catalog)) {
                Ok(compiled) => engines.push(NodeEngine::new(compiled, options)),
                Err(e) => return Err((c, e)),
            }
        }
        let db = Database::new(catalog);
        let n = engines.len();
        Ok(ConstraintSet {
            db,
            engines,
            shards: vec![None; n],
            last_time: None,
            steps: 0,
            parallelism: Parallelism::Sequential,
            dispatch: DispatchStats::default(),
            quarantined: vec![None; n],
            armed_panics: vec![None; n],
        })
    }

    /// Enables (or disables) the entity-key sharded data plane (builder
    /// form). Constraints whose compiled body has a [`crate::ShardKey`]
    /// then step as independent per-key shards; the rest are unaffected.
    /// Reports are byte-identical either way. Must be configured before
    /// the first step.
    pub fn with_sharding(mut self, enabled: bool) -> ConstraintSet {
        self.set_sharding(enabled);
        self
    }

    /// Enables or disables sharding; see [`ConstraintSet::with_sharding`].
    pub fn set_sharding(&mut self, enabled: bool) {
        assert_eq!(self.steps, 0, "sharding must be configured before stepping");
        self.shards = self
            .engines
            .iter()
            .map(|e| {
                (enabled && e.compiled.shard_key.is_some()).then(|| ShardedEngine::new(e.clone()))
            })
            .collect();
    }

    /// Sets the idle-shard eviction horizon on every sharded constraint.
    pub fn set_shard_eviction(&mut self, horizon: u32) {
        for s in self.shards.iter_mut().flatten() {
            s.set_evict_after(horizon);
        }
    }

    /// Number of constraints currently running sharded.
    pub fn sharded_constraints(&self) -> usize {
        self.shards.iter().flatten().count()
    }

    /// Per-constraint shard-lifecycle counters, in insertion order
    /// (sharded constraints only).
    pub fn shard_stats(&self) -> Vec<(Symbol, ShardStats)> {
        self.engines
            .iter()
            .zip(&self.shards)
            .filter_map(|(e, s)| s.as_ref().map(|s| (e.compiled.constraint.name, s.stats())))
            .collect()
    }

    /// Sets the worker budget (builder form).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> ConstraintSet {
        self.parallelism = parallelism;
        self
    }

    /// Sets the worker budget.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The configured worker budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Relevance-dispatch tallies accumulated so far.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.dispatch
    }

    /// Number of constraints in the set.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.engines.iter().map(|e| &e.compiled.constraint)
    }

    /// The compiled constraints, in insertion order.
    pub fn compiled(&self) -> impl Iterator<Item = &CompiledConstraint> {
        self.engines.iter().map(|e| &e.compiled)
    }

    /// The shared current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of transitions processed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Timestamp of the last processed transition, if any. This is the
    /// replay cursor a resumed run skips up to (inclusive).
    pub fn last_time(&self) -> Option<TimePoint> {
        self.last_time
    }

    /// Quarantined constraints with their panic reasons, in insertion
    /// order. A non-empty result means the fleet is running degraded:
    /// these constraints stopped producing reports at the step recorded
    /// in their reason, while the rest of the fleet kept checking.
    pub fn quarantined(&self) -> Vec<(Symbol, &str)> {
        self.engines
            .iter()
            .zip(&self.quarantined)
            .filter_map(|(e, q)| {
                q.as_deref()
                    .map(|reason| (e.compiled.constraint.name, reason))
            })
            .collect()
    }

    /// The fleet's health summary: how many engines are still reporting
    /// and how many are quarantined. Resident drivers (`rtic serve`)
    /// surface a degraded fleet as `DEGRADED` status responses.
    pub fn health(&self) -> FleetHealth {
        let quarantined = self.quarantined.iter().filter(|q| q.is_some()).count();
        FleetHealth {
            healthy: self.engines.len() - quarantined,
            quarantined,
        }
    }

    /// Quiescence hook: absorbs a pure clock tick at `time` — exactly
    /// [`ConstraintSet::step_observed`] with an empty update, so
    /// gain-free constraints advance without evaluation and the rest
    /// evaluate against the unchanged state. Drivers draining a resident
    /// fleet use this to settle the clock before the final checkpoint.
    pub fn tick(
        &mut self,
        time: TimePoint,
        obs: &mut dyn StepObserver,
    ) -> Result<Vec<StepReport>, HistoryError> {
        self.step_observed(time, &Update::new(), obs)
    }

    /// Fault injection: make the engine for `constraint` panic while
    /// processing its `nth` transition (1-based, counted from now).
    /// Returns `false` if no such constraint is in the set. This is the
    /// hook the failpoint facility uses to exercise quarantine; it is
    /// deliberately explicit — nothing panics unless armed.
    pub fn arm_panic(&mut self, constraint: &str, nth: u64) -> bool {
        let mut found = false;
        for (engine, armed) in self.engines.iter().zip(self.armed_panics.iter_mut()) {
            if engine.compiled.constraint.name.as_str() == constraint {
                *armed = Some(self.steps as u64 + nth.max(1));
                found = true;
            }
        }
        found
    }

    /// Engines in insertion order, paired with their sharded data plane
    /// (if any) and quarantine state (checkpointing reads these;
    /// quarantined engines are excluded from checkpoints because their
    /// mid-panic state is not trustworthy).
    pub(crate) fn engines_with_health(
        &self,
    ) -> impl Iterator<Item = (&NodeEngine, Option<&ShardedEngine>, bool)> {
        self.engines
            .iter()
            .zip(&self.shards)
            .zip(&self.quarantined)
            .map(|((e, s), q)| (e, s.as_ref(), q.is_some()))
    }

    /// Mutable parts for checkpoint restore: shared database, engines,
    /// shard planes, and the step/time/dispatch cursor slots.
    pub(crate) fn restore_parts(&mut self) -> RestoreParts<'_> {
        RestoreParts {
            db: &mut self.db,
            engines: &mut self.engines,
            shards: &mut self.shards,
            steps: &mut self.steps,
            last_time: &mut self.last_time,
            dispatch: &mut self.dispatch,
        }
    }

    /// Processes one transition; returns one report per constraint, in
    /// insertion order. Uses relevance dispatch and the configured
    /// [`Parallelism`]; both are report-for-report invisible.
    pub fn step(
        &mut self,
        time: TimePoint,
        update: &Update,
    ) -> Result<Vec<StepReport>, HistoryError> {
        self.step_observed(time, update, &mut NopObserver)
    }

    /// [`ConstraintSet::step`] with observation: one `StepStart`/`StepEnd`
    /// pair brackets the logical step, with one `ConstraintEval` (and
    /// `Violation` when witnesses were found) per constraint in insertion
    /// order — regardless of how many worker threads evaluated them.
    /// Worker results are fanned back into insertion-order slots before
    /// any per-constraint event is emitted, so observers never see
    /// scheduling order. On error, events after `StepStart` are withheld.
    pub fn step_observed(
        &mut self,
        time: TimePoint,
        update: &Update,
        obs: &mut dyn StepObserver,
    ) -> Result<Vec<StepReport>, HistoryError> {
        if let Some(last) = self.last_time {
            if time <= last {
                return Err(HistoryError::NonMonotonicTime { last, new: time });
            }
        }
        obs.observe(&StepEvent::StepStart {
            checker: "set",
            time,
            tuples: update.len(),
        });
        let step_start = Instant::now();
        self.db.apply(update)?;

        let n = self.engines.len();
        let mut slots: Vec<Option<(StepReport, u64)>> = (0..n).map(|_| None).collect();
        let (mut skipped, mut quiescent_full, mut affected) = (0u64, 0u64, 0u64);
        let mut quarantine_ticks = 0u64;
        let nth_step = self.steps as u64 + 1;

        // Dispatch phase: absorb quiescent ticks on the calling thread
        // (the fast path is cheap by construction); collect everything
        // else for full evaluation. Quarantined engines are skipped
        // entirely, and an engine armed to panic this step is forced onto
        // the full path so the panic surfaces inside `catch_unwind`.
        // Sharded constraints contribute one job per live shard (plus the
        // phantom), flattening into the same worker pool as the plain
        // engines; their per-shard advance_time fast path replaces the
        // constraint-level one.
        let mut panicked: Vec<(usize, String)> = Vec::new();
        let mut full: Vec<(usize, Job<'_>)> = Vec::new();
        for (idx, (engine, sharded)) in self
            .engines
            .iter_mut()
            .zip(self.shards.iter_mut())
            .enumerate()
        {
            if self.quarantined[idx].is_some() {
                quarantine_ticks += 1;
                continue;
            }
            let inject_panic = self.armed_panics[idx] == Some(nth_step);
            if let Some(sharded) = sharded {
                if engine.is_quiescent(update) {
                    quiescent_full += 1;
                } else {
                    affected += 1;
                }
                if inject_panic {
                    panicked.push((idx, "injected engine panic (failpoint)".to_string()));
                    continue;
                }
                sharded.begin_step(update);
                for shard in sharded.jobs() {
                    full.push((idx, Job::Shard(shard)));
                }
                continue;
            }
            if !inject_panic && engine.is_quiescent(update) {
                let eval_start = Instant::now();
                if let Some(violations) = engine.advance_time(time) {
                    skipped += 1;
                    let report = StepReport {
                        constraint: engine.compiled.constraint.name,
                        time,
                        violations,
                    };
                    slots[idx] = Some((report, eval_start.elapsed().as_nanos() as u64));
                    continue;
                }
                quiescent_full += 1;
            } else {
                affected += 1;
            }
            full.push((
                idx,
                Job::Engine {
                    inject: inject_panic,
                    engine,
                },
            ));
        }
        self.dispatch.skipped += skipped;
        self.dispatch.quiescent_full += quiescent_full;
        self.dispatch.affected += affected;
        self.dispatch.quarantined += quarantine_ticks;

        // Full-evaluation phase, fanned out over scoped workers when
        // configured. Chunks are static: determinism comes from scattering
        // results back by engine index, not from scheduling. Each job
        // runs inside `catch_unwind`, so one poisoned constraint cannot
        // take down the fleet — it is quarantined at fan-in instead (a
        // panicking shard quarantines its whole constraint).
        let workers = self.parallelism.workers(full.len());
        let db = &self.db;
        let eval_job = |job: &mut Job<'_>| -> Result<Option<(StepReport, u64)>, String> {
            match job {
                Job::Engine { inject, engine } => {
                    let eval_start = Instant::now();
                    let name = engine.compiled.constraint.name;
                    let inject = *inject;
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if inject {
                            panic!("injected engine panic (failpoint)");
                        }
                        engine.advance(db, time);
                        engine.violations(db, time)
                    }));
                    match outcome {
                        Ok(violations) => Ok(Some((
                            StepReport {
                                constraint: name,
                                time,
                                violations,
                            },
                            eval_start.elapsed().as_nanos() as u64,
                        ))),
                        Err(payload) => Err(panic_detail(payload.as_ref())),
                    }
                }
                Job::Shard(shard) => match catch_unwind(AssertUnwindSafe(|| shard.eval(time))) {
                    Ok(()) => Ok(None),
                    Err(payload) => Err(panic_detail(payload.as_ref())),
                },
            }
        };
        if workers <= 1 {
            for (idx, mut job) in full {
                match eval_job(&mut job) {
                    Ok(Some(done)) => slots[idx] = Some(done),
                    Ok(None) => {}
                    Err(detail) => panicked.push((idx, detail)),
                }
            }
        } else {
            let chunk_len = full.len().div_ceil(workers);
            let batches = std::thread::scope(|scope| {
                let handles: Vec<_> = full
                    .chunks_mut(chunk_len)
                    .map(|batch| {
                        scope.spawn(|| {
                            batch
                                .iter_mut()
                                .map(|(idx, job)| (*idx, eval_job(job)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
            });
            drop(full);
            for joined in batches {
                match joined {
                    Ok(batch) => {
                        for (idx, outcome) in batch {
                            match outcome {
                                Ok(Some(done)) => slots[idx] = Some(done),
                                Ok(None) => {}
                                Err(detail) => panicked.push((idx, detail)),
                            }
                        }
                    }
                    // A panic outside the per-engine catch (worker
                    // infrastructure, not constraint evaluation) is not
                    // quarantinable — propagate it.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        }
        for (idx, detail) in &panicked {
            self.quarantined[*idx] =
                Some(format!("panicked at step {nth_step} (t={time}): {detail}"));
        }

        // Fan-in: emit per-constraint events and assemble reports in
        // insertion order. Sharded constraints merge their per-shard
        // violation sets in ascending key order here, so reports are
        // byte-identical to the unsharded path. Newly quarantined
        // constraints emit a quarantine event in place of their report;
        // previously quarantined ones stay silent.
        let mut reports = Vec::with_capacity(n);
        let mut total_violations = 0usize;
        for (idx, slot) in slots.iter_mut().enumerate() {
            if let Some((_, detail)) = panicked.iter().find(|(p, _)| *p == idx) {
                obs.observe(&StepEvent::ConstraintQuarantined {
                    checker: "set",
                    constraint: self.engines[idx].compiled.constraint.name,
                    time,
                    detail: detail.clone(),
                });
                continue;
            }
            let slot = if let Some(sharded) = self.shards[idx].as_mut() {
                if self.quarantined[idx].is_some() {
                    continue;
                }
                let (violations, latency_ns) = sharded.finish_step();
                Some((
                    StepReport {
                        constraint: self.engines[idx].compiled.constraint.name,
                        time,
                        violations,
                    },
                    latency_ns,
                ))
            } else {
                debug_assert!(
                    slot.is_some() || self.quarantined[idx].is_some(),
                    "every healthy engine produces a report"
                );
                slot.take()
            };
            let Some((report, latency_ns)) = slot else {
                continue;
            };
            total_violations += report.violation_count();
            obs.observe(&StepEvent::ConstraintEval {
                checker: "set",
                constraint: report.constraint,
                time,
                violations: report.violation_count(),
                latency_ns,
            });
            if !report.ok() {
                obs.observe(&StepEvent::Violation {
                    checker: "set",
                    report: &report,
                });
            }
            reports.push(report);
        }
        obs.observe(&StepEvent::StepEnd {
            checker: "set",
            time,
            violations: total_violations,
            latency_ns: step_start.elapsed().as_nanos() as u64,
        });
        self.last_time = Some(time);
        self.steps += 1;
        Ok(reports)
    }

    /// Processes a micro-batch of transitions as one ingestion unit:
    /// every line steps in order through the normal (relevance-dispatched,
    /// possibly parallel) path, then a single
    /// [`StepEvent::BatchIngest`] records the realized batch size.
    ///
    /// Semantics are exactly those of calling
    /// [`ConstraintSet::step_observed`] per line — reports, violations,
    /// and auxiliary state are byte-identical, and time-advance effects
    /// (window expiry between lines) are preserved. What batching buys is
    /// amortization *around* the steps: drivers parse/buffer N lines,
    /// print N reports, and run their checkpoint ticker once per batch,
    /// while the vectorized kernels see back-to-back steps with warm
    /// memo entries.
    ///
    /// On error the batch stops at the failing line; earlier lines are
    /// fully applied (the same prefix semantics a line-at-a-time driver
    /// has), and no `BatchIngest` event is emitted.
    pub fn apply_batch(
        &mut self,
        batch: &[(TimePoint, Update)],
        obs: &mut dyn StepObserver,
    ) -> Result<Vec<Vec<StepReport>>, HistoryError> {
        let mut all = Vec::with_capacity(batch.len());
        let mut tuples = 0usize;
        for (time, update) in batch {
            tuples += update.len();
            all.push(self.step_observed(*time, update, obs)?);
        }
        if !batch.is_empty() {
            obs.observe(&StepEvent::BatchIngest {
                lines: batch.len(),
                tuples,
            });
        }
        Ok(all)
    }

    /// Emits one `SpaceSample` event per constraint (drivers call this on
    /// their sampling schedule). Samples carry each constraint's own aux
    /// footprint; the shared database tuples are attributed to every
    /// sample, mirroring what a per-constraint checker would report.
    pub fn sample_space(&self, step_index: u64, obs: &mut dyn StepObserver) {
        let Some(time) = self.last_time else {
            return;
        };
        for ((engine, sharded), quarantined) in
            self.engines.iter().zip(&self.shards).zip(&self.quarantined)
        {
            if quarantined.is_some() {
                // A quarantined engine's aux state froze mid-panic; its
                // numbers would be misleading.
                continue;
            }
            let (aux_keys, aux_timestamps) = match sharded {
                Some(s) => s.aux_space(),
                None => engine.aux_space(),
            };
            obs.observe(&StepEvent::SpaceSample {
                checker: "set",
                constraint: engine.compiled.constraint.name,
                time,
                step_index,
                stats: SpaceStats {
                    aux_keys,
                    aux_timestamps,
                    stored_states: 1,
                    stored_tuples: self.db.total_tuples(),
                },
            });
            if let Some(s) = sharded {
                obs.observe(&StepEvent::ShardSample {
                    checker: "set",
                    constraint: engine.compiled.constraint.name,
                    time,
                    step_index,
                    stats: s.stats(),
                });
            }
        }
    }

    /// [`ConstraintSet::step`] with one worker per core for this call,
    /// regardless of the configured [`Parallelism`].
    pub fn step_parallel(
        &mut self,
        time: TimePoint,
        update: &Update,
    ) -> Result<Vec<StepReport>, HistoryError> {
        let configured = self.parallelism;
        self.parallelism = Parallelism::Auto;
        let result = self.step(time, update);
        self.parallelism = configured;
        result
    }

    /// Aggregate space: the single shared state plus every engine's aux
    /// (summed across live shards for sharded constraints).
    pub fn space(&self) -> SpaceStats {
        let mut aux_keys = 0;
        let mut aux_timestamps = 0;
        for (e, s) in self.engines.iter().zip(&self.shards) {
            let (k, t) = match s {
                Some(s) => s.aux_space(),
                None => e.aux_space(),
            };
            aux_keys += k;
            aux_timestamps += t;
        }
        SpaceStats {
            aux_keys,
            aux_timestamps,
            stored_states: 1,
            stored_tuples: self.db.total_tuples(),
        }
    }

    /// Aggregate compiled-plan statistics across every engine: plan shape
    /// counts add up, the scratch high-water mark takes the fleet maximum.
    pub fn plan_stats(&self) -> crate::plan::RuntimePlanStats {
        let mut total = crate::plan::RuntimePlanStats::default();
        for e in &self.engines {
            total.absorb(crate::plan::RuntimePlanStats {
                plan: e.compiled.plans.stats(),
                scratch_high_water: e.scratch_high_water(),
            });
        }
        total
    }

    /// Emits one `PlanStatsSample` event per engine, mirroring
    /// [`ConstraintSet::sample_space`].
    pub fn sample_plan_stats(&self, obs: &mut dyn StepObserver) {
        for e in &self.engines {
            obs.observe(&StepEvent::PlanStatsSample {
                checker: "set",
                constraint: e.compiled.constraint.name,
                stats: crate::plan::RuntimePlanStats {
                    plan: e.compiled.plans.stats(),
                    scratch_high_water: e.scratch_high_water(),
                },
            });
        }
    }

    /// Per-constraint execution profiles, in insertion order — empty unless
    /// the set was built with `EncodingOptions::profile_plans`.
    pub fn plan_profiles(&self) -> Vec<(Symbol, crate::plan::PlanProfile)> {
        self.engines
            .iter()
            .filter_map(|e| e.plan_profile().map(|p| (e.compiled.constraint.name, p)))
            .collect()
    }

    /// Emits one `PlanProfileSample` event per profiled engine, mirroring
    /// [`ConstraintSet::sample_plan_stats`].
    pub fn sample_plan_profiles(&self, obs: &mut dyn StepObserver) {
        for e in &self.engines {
            if let Some(profile) = e.plan_profile() {
                obs.observe(&StepEvent::PlanProfileSample {
                    checker: "set",
                    constraint: e.compiled.constraint.name,
                    profile: &profile,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::CollectingObserver;
    use crate::{Checker, IncrementalChecker};
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("q", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        )
    }

    fn constraints() -> Vec<Constraint> {
        vec![
            parse_constraint("deny both: p(x) && q(x)").unwrap(),
            parse_constraint("deny lingering: p(x) && once[2,4] q(x)").unwrap(),
            parse_constraint("deny steady: p(x) && hist[0,1] p(x)").unwrap(),
        ]
    }

    fn updates(t: u64) -> Update {
        match t % 5 {
            0 => Update::new().with_insert("p", tuple!["a"]),
            1 => Update::new().with_insert("q", tuple!["a"]),
            2 => Update::new().with_delete("p", tuple!["a"]),
            3 => Update::new().with_delete("q", tuple!["a"]),
            _ => Update::new(),
        }
    }

    #[test]
    fn set_matches_independent_checkers() {
        let cat = catalog();
        let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        let mut singles: Vec<IncrementalChecker> = constraints()
            .into_iter()
            .map(|c| IncrementalChecker::new(c, Arc::clone(&cat)).unwrap())
            .collect();
        for t in 1..30u64 {
            let u = updates(t);
            let set_reports = set.step(TimePoint(t), &u).unwrap();
            for (i, single) in singles.iter_mut().enumerate() {
                let r = single.step(TimePoint(t), &u).unwrap();
                assert_eq!(set_reports[i], r, "constraint {i} diverged at {t}");
            }
        }
    }

    #[test]
    fn shared_state_is_stored_once() {
        let cat = catalog();
        let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        set.step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        assert_eq!(set.space().stored_states, 1);
        assert_eq!(set.space().stored_tuples, 1, "one copy of the shared db");
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn parallel_step_matches_sequential() {
        let cat = catalog();
        let mut seq = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        for workers in [2usize, 3, 8] {
            let mut par = ConstraintSet::new(constraints(), Arc::clone(&cat))
                .unwrap()
                .with_parallelism(Parallelism::N(workers));
            let mut seq2 = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
            for t in 1..40u64 {
                let u = match t % 4 {
                    0 => Update::new()
                        .with_insert("p", tuple!["a"])
                        .with_insert("q", tuple!["b"]),
                    1 => Update::new().with_insert("q", tuple!["a"]),
                    2 => Update::new().with_delete("p", tuple!["a"]),
                    _ => Update::new(),
                };
                let a = seq2.step(TimePoint(t), &u).unwrap();
                let b = par.step(TimePoint(t), &u).unwrap();
                assert_eq!(a, b, "parallelism {workers} diverged at {t}");
            }
            assert_eq!(seq2.space(), par.space());
        }
        // The legacy entry point still matches too.
        let mut legacy = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        for t in 1..10u64 {
            let u = updates(t);
            let a = seq.step(TimePoint(t), &u).unwrap();
            let b = legacy.step_parallel(TimePoint(t), &u).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn relevance_dispatch_partitions_engines() {
        let cat = catalog();
        // `deny qonly` only reads q; an update touching just p is
        // quiescent for it.
        let cs = vec![
            parse_constraint("deny ponly: p(x) && once[0,*] p(x)").unwrap(),
            parse_constraint("deny qonly: q(x) && once[0,*] q(x)").unwrap(),
        ];
        let mut set = ConstraintSet::new(cs, cat).unwrap();
        set.step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        let d = set.dispatch_stats();
        assert_eq!(d.affected, 1, "only the p-constraint is affected");
        // First step for the q-constraint: quiescent but no cache yet.
        assert_eq!(d.quiescent_full, 1);
        assert_eq!(d.skipped, 0);
        set.step(TimePoint(2), &Update::new().with_insert("p", tuple!["b"]))
            .unwrap();
        let d = set.dispatch_stats();
        assert_eq!(d.affected, 2);
        assert_eq!(d.skipped, 1, "q-constraint now fast-skips");
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn dispatch_and_parallelism_preserve_reports() {
        // A fleet where some constraints are quiescent most steps, stepped
        // at various worker counts, must match plain per-constraint
        // checkers byte for byte.
        let cat = catalog();
        let cs = vec![
            parse_constraint("deny a: p(x) && once[0,3] q(x)").unwrap(),
            parse_constraint("deny b: q(x) && !once[0,*] p(x)").unwrap(),
            parse_constraint("deny c: p(x) && hist[0,2] p(x)").unwrap(),
            parse_constraint("deny d: q(x) && once[1,4] q(x)").unwrap(),
        ];
        for par in [
            Parallelism::Sequential,
            Parallelism::N(2),
            Parallelism::Auto,
        ] {
            let mut set = ConstraintSet::new(cs.clone(), Arc::clone(&cat))
                .unwrap()
                .with_parallelism(par);
            let mut singles: Vec<IncrementalChecker> = cs
                .iter()
                .map(|c| IncrementalChecker::new(c.clone(), Arc::clone(&cat)).unwrap())
                .collect();
            for t in 1..60u64 {
                let u = match t % 7 {
                    0 => Update::new().with_insert("p", tuple!["a"]),
                    1 => Update::new().with_insert("q", tuple!["a"]),
                    3 => Update::new().with_delete("p", tuple!["a"]),
                    5 => Update::new().with_delete("q", tuple!["a"]),
                    _ => Update::new(), // quiescent for everyone
                };
                let rs = set.step(TimePoint(t), &u).unwrap();
                for (i, single) in singles.iter_mut().enumerate() {
                    let r = single.step(TimePoint(t), &u).unwrap();
                    assert_eq!(rs[i], r, "{par:?}: constraint {i} diverged at t={t}");
                }
            }
            assert!(
                set.dispatch_stats().skipped > 0,
                "{par:?}: fast path never engaged"
            );
        }
    }

    #[test]
    fn observed_events_are_insertion_ordered() {
        let cat = catalog();
        let mut obs_seq = CollectingObserver::default();
        let mut obs_par = CollectingObserver::default();
        let mut seq = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        let mut par = ConstraintSet::new(constraints(), Arc::clone(&cat))
            .unwrap()
            .with_parallelism(Parallelism::N(3));
        for t in 1..20u64 {
            let u = updates(t);
            seq.step_observed(TimePoint(t), &u, &mut obs_seq).unwrap();
            par.step_observed(TimePoint(t), &u, &mut obs_par).unwrap();
        }
        assert_eq!(obs_seq.events.len(), obs_par.events.len());
        for (a, b) in obs_seq.events.iter().zip(&obs_par.events) {
            assert_eq!(a.kind(), b.kind());
            if let (
                StepEvent::ConstraintEval {
                    constraint: ca,
                    violations: va,
                    time: ta,
                    ..
                },
                StepEvent::ConstraintEval {
                    constraint: cb,
                    violations: vb,
                    time: tb,
                    ..
                },
            ) = (a, b)
            {
                assert_eq!((ca, va, ta), (cb, vb, tb));
            }
        }
    }

    #[test]
    fn observed_step_failure_withholds_completion_events() {
        let mut set = ConstraintSet::new(constraints(), catalog()).unwrap();
        let mut obs = CollectingObserver::default();
        set.step_observed(TimePoint(5), &Update::new(), &mut obs)
            .unwrap();
        assert!(set
            .step_observed(TimePoint(5), &Update::new(), &mut obs)
            .is_err());
        let kinds: Vec<&str> = obs.events.iter().map(StepEvent::kind).collect();
        assert_eq!(
            kinds,
            vec!["step_start", "eval", "eval", "eval", "step"],
            "failed step emits nothing (monotonicity is checked before StepStart)"
        );
    }

    #[test]
    fn sample_space_emits_one_sample_per_constraint() {
        let mut set = ConstraintSet::new(constraints(), catalog()).unwrap();
        set.step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        let mut obs = CollectingObserver::default();
        set.sample_space(0, &mut obs);
        assert_eq!(obs.events.len(), 3);
        assert!(obs
            .events
            .iter()
            .all(|e| matches!(e, StepEvent::SpaceSample { .. })));
    }

    #[test]
    fn compile_error_names_the_constraint() {
        let bad = parse_constraint("deny nope: !p(x)").unwrap();
        let err = ConstraintSet::new(vec![bad.clone()], catalog()).unwrap_err();
        assert_eq!(err.0, bad);
    }

    #[test]
    fn monotonic_time_shared() {
        let mut set = ConstraintSet::new(constraints(), catalog()).unwrap();
        set.step(TimePoint(4), &Update::new()).unwrap();
        assert!(set.step(TimePoint(4), &Update::new()).is_err());
    }

    #[test]
    fn panicking_engine_is_quarantined_and_fleet_continues() {
        let cat = catalog();
        let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        let mut healthy = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        assert!(set.arm_panic("lingering", 2));
        assert!(!set.arm_panic("no_such_constraint", 1));
        let mut obs = CollectingObserver::default();

        let u1 = Update::new().with_insert("p", tuple!["a"]);
        let r1 = set.step_observed(TimePoint(1), &u1, &mut obs).unwrap();
        assert_eq!(r1.len(), 3, "before the panic all constraints report");
        healthy.step(TimePoint(1), &u1).unwrap();

        let u2 = Update::new().with_insert("q", tuple!["a"]);
        let r2 = set.step_observed(TimePoint(2), &u2, &mut obs).unwrap();
        let h2 = healthy.step(TimePoint(2), &u2).unwrap();
        assert_eq!(r2.len(), 2, "the panicked constraint drops out");
        assert_eq!(r2[0], h2[0], "constraint before the victim unaffected");
        assert_eq!(r2[1], h2[2], "constraint after the victim unaffected");
        let q = set.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0.as_str(), "lingering");
        assert!(
            q[0].1.contains("injected engine panic"),
            "reason: {}",
            q[0].1
        );
        assert_eq!(
            obs.events
                .iter()
                .filter(|e| e.kind() == "quarantine")
                .count(),
            1,
            "quarantine event emitted exactly once"
        );

        // Subsequent steps: fleet keeps matching an all-healthy run minus
        // the quarantined constraint, and the skip is tallied.
        for t in 3..10u64 {
            let u = updates(t);
            let r = set.step(TimePoint(t), &u).unwrap();
            let h = healthy.step(TimePoint(t), &u).unwrap();
            assert_eq!(r.len(), 2);
            assert_eq!(r[0], h[0]);
            assert_eq!(r[1], h[2]);
        }
        assert_eq!(set.dispatch_stats().quarantined, 7);
        assert_eq!(set.quarantined().len(), 1, "no double quarantine");
    }

    #[test]
    fn parallel_panic_is_quarantined_identically() {
        let cat = catalog();
        for par in [
            Parallelism::Sequential,
            Parallelism::N(3),
            Parallelism::Auto,
        ] {
            let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat))
                .unwrap()
                .with_parallelism(par);
            set.arm_panic("both", 1);
            let r = set
                .step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
                .unwrap();
            assert_eq!(r.len(), 2, "{par:?}: victim dropped");
            assert_eq!(set.quarantined().len(), 1, "{par:?}: quarantined");
            let r2 = set
                .step(TimePoint(2), &Update::new().with_insert("q", tuple!["a"]))
                .unwrap();
            assert_eq!(r2.len(), 2, "{par:?}: fleet keeps stepping");
        }
    }

    #[test]
    fn quarantine_reports_stay_insertion_ordered() {
        let cat = catalog();
        let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat))
            .unwrap()
            .with_parallelism(Parallelism::N(2));
        set.arm_panic("steady", 1);
        let mut obs = CollectingObserver::default();
        set.step_observed(
            TimePoint(1),
            &Update::new().with_insert("p", tuple!["a"]),
            &mut obs,
        )
        .unwrap();
        let kinds: Vec<&str> = obs.events.iter().map(StepEvent::kind).collect();
        // `steady` is the last constraint: its quarantine event arrives in
        // insertion order, after the healthy evals.
        assert_eq!(
            kinds,
            vec!["step_start", "eval", "eval", "quarantine", "step"]
        );
    }

    /// Multi-entity traffic: keys churn so shards get created, fall
    /// idle, and are evicted mid-run.
    fn entity_updates(t: u64) -> Update {
        match t % 6 {
            0 => Update::new()
                .with_insert("p", tuple!["a"])
                .with_insert("q", tuple!["b"]),
            1 => Update::new()
                .with_insert("q", tuple!["a"])
                .with_insert("p", tuple!["c"]),
            2 => Update::new()
                .with_delete("p", tuple!["a"])
                .with_delete("q", tuple!["b"]),
            3 => Update::new()
                .with_delete("q", tuple!["a"])
                .with_insert("q", tuple!["c"]),
            4 => Update::new()
                .with_delete("p", tuple!["c"])
                .with_delete("q", tuple!["c"]),
            _ => Update::new(),
        }
    }

    #[test]
    fn sharded_set_matches_unsharded_byte_for_byte() {
        let cat = catalog();
        for par in [Parallelism::Sequential, Parallelism::N(3)] {
            let mut plain = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
            let mut sharded = ConstraintSet::new(constraints(), Arc::clone(&cat))
                .unwrap()
                .with_sharding(true)
                .with_parallelism(par);
            // Small idle horizon so eviction actually happens mid-run.
            sharded.set_shard_eviction(2);
            assert_eq!(
                sharded.sharded_constraints(),
                3,
                "`x` is shared by every atom of every body"
            );
            for t in 1..80u64 {
                let u = entity_updates(t);
                let a = plain.step(TimePoint(t), &u).unwrap();
                let b = sharded.step(TimePoint(t), &u).unwrap();
                assert_eq!(a, b, "{par:?}: diverged at t={t}");
            }
            let stats = sharded.shard_stats();
            assert_eq!(stats.len(), 3);
            assert!(
                stats.iter().any(|(_, s)| s.created > 1),
                "keys materialized shards: {stats:?}"
            );
            assert!(
                stats.iter().any(|(_, s)| s.evicted > 0),
                "idle shards were evicted: {stats:?}"
            );
            assert!(stats.iter().all(|(_, s)| s.peak >= s.live));
        }
    }

    #[test]
    fn unshardable_constraints_run_unsharded_in_a_sharded_fleet() {
        let cat = Arc::new(
            Catalog::new()
                .with("edge", Schema::of(&[("x", Sort::Str), ("y", Sort::Str)]))
                .unwrap()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        );
        let cs = vec![
            // Key columns disagree between the two `edge` atoms — no key.
            parse_constraint("deny cross: edge(x, y) && edge(y, x)").unwrap(),
            parse_constraint("deny dup: p(x) && once[1,*] p(x)").unwrap(),
        ];
        let mut plain = ConstraintSet::new(cs.clone(), Arc::clone(&cat)).unwrap();
        let mut mixed = ConstraintSet::new(cs, Arc::clone(&cat))
            .unwrap()
            .with_sharding(true);
        assert_eq!(mixed.sharded_constraints(), 1);
        for t in 1..25u64 {
            let mut u = Update::new();
            match t % 4 {
                0 => {
                    u.insert("edge", tuple!["a", "b"]).insert("p", tuple!["a"]);
                }
                1 => {
                    u.insert("edge", tuple!["b", "a"]).delete("p", tuple!["a"]);
                }
                2 => {
                    u.delete("edge", tuple!["a", "b"]).insert("p", tuple!["b"]);
                }
                _ => {}
            }
            let a = plain.step(TimePoint(t), &u).unwrap();
            let b = mixed.step(TimePoint(t), &u).unwrap();
            assert_eq!(a, b, "diverged at t={t}");
        }
    }

    #[test]
    fn sharded_panic_quarantines_the_whole_constraint() {
        let cat = catalog();
        for par in [Parallelism::Sequential, Parallelism::N(2)] {
            let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat))
                .unwrap()
                .with_sharding(true)
                .with_parallelism(par);
            let mut healthy = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
            set.arm_panic("lingering", 2);
            for t in 1..12u64 {
                let u = entity_updates(t);
                let r = set.step(TimePoint(t), &u).unwrap();
                let h = healthy.step(TimePoint(t), &u).unwrap();
                if t == 1 {
                    assert_eq!(r, h, "{par:?}: all healthy before the panic");
                } else {
                    assert_eq!(r.len(), 2, "{par:?}: victim dropped at t={t}");
                    assert_eq!(r[0], h[0]);
                    assert_eq!(r[1], h[2]);
                }
            }
            let q = set.quarantined();
            assert_eq!(q.len(), 1, "{par:?}");
            assert!(q[0].1.contains("injected engine panic"), "{}", q[0].1);
        }
    }

    #[test]
    fn apply_batch_matches_line_at_a_time() {
        let cat = catalog();
        for (sharding, options) in [
            (false, EncodingOptions::default()),
            (
                true,
                EncodingOptions {
                    vectorize: true,
                    ..Default::default()
                },
            ),
        ] {
            let mut lined = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
            let mut batched = ConstraintSet::with_options(constraints(), Arc::clone(&cat), options)
                .unwrap()
                .with_sharding(sharding);
            let lines: Vec<(TimePoint, Update)> =
                (1..40u64).map(|t| (TimePoint(t), updates(t))).collect();
            let mut expected = Vec::new();
            for (t, u) in &lines {
                expected.push(lined.step(*t, u).unwrap());
            }
            let mut obs = CollectingObserver::default();
            let mut got = Vec::new();
            for chunk in lines.chunks(7) {
                got.extend(batched.apply_batch(chunk, &mut obs).unwrap());
            }
            assert_eq!(got, expected, "sharding={sharding}");
            assert_eq!(lined.space(), batched.space(), "sharding={sharding}");
            let ingests: Vec<(usize, usize)> = obs
                .events
                .iter()
                .filter_map(|e| match e {
                    StepEvent::BatchIngest { lines, tuples } => Some((*lines, *tuples)),
                    _ => None,
                })
                .collect();
            assert_eq!(ingests.len(), 6, "one batch_ingest per flushed chunk");
            assert_eq!(ingests[0].0, 7);
            assert_eq!(ingests.last().unwrap().0, 4, "trailing partial batch");
        }
    }

    #[test]
    fn apply_batch_stops_at_the_failing_line_with_prefix_applied() {
        let mut set = ConstraintSet::new(constraints(), catalog()).unwrap();
        let lines = vec![
            (TimePoint(1), Update::new().with_insert("p", tuple!["a"])),
            (TimePoint(2), Update::new().with_insert("q", tuple!["a"])),
            (TimePoint(2), Update::new()), // non-monotonic: fails
            (TimePoint(3), Update::new()),
        ];
        let mut obs = CollectingObserver::default();
        assert!(set.apply_batch(&lines, &mut obs).is_err());
        assert_eq!(set.steps(), 2, "prefix before the bad line is applied");
        assert_eq!(set.last_time(), Some(TimePoint(2)));
        assert!(
            !obs.events.iter().any(|e| e.kind() == "batch_ingest"),
            "no ingest event for a failed batch"
        );
        // The set remains usable afterwards.
        assert_eq!(set.step(TimePoint(3), &Update::new()).unwrap().len(), 3);
    }

    #[test]
    fn sample_space_adds_shard_samples_for_sharded_constraints() {
        let mut set = ConstraintSet::new(constraints(), catalog())
            .unwrap()
            .with_sharding(true);
        set.step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        let mut obs = CollectingObserver::default();
        set.sample_space(0, &mut obs);
        let kinds: Vec<&str> = obs.events.iter().map(StepEvent::kind).collect();
        assert_eq!(
            kinds,
            vec![
                "space_sample",
                "shard_sample",
                "space_sample",
                "shard_sample",
                "space_sample",
                "shard_sample",
            ]
        );
        let live: Vec<usize> = obs
            .events
            .iter()
            .filter_map(|e| match e {
                StepEvent::ShardSample { stats, .. } => Some(stats.live),
                _ => None,
            })
            .collect();
        assert_eq!(live, vec![1, 1, 1], "one shard per constraint for key `a`");
    }
}
