//! Checking several constraints over one shared database state.
//!
//! A deployment rarely has a single constraint; a [`ConstraintSet`] applies
//! each transition **once** to one shared database and advances every
//! constraint's auxiliary engine against it, instead of paying for one
//! database copy per constraint as separate [`IncrementalChecker`]s would.
//!
//! ```
//! use rtic_core::ConstraintSet;
//! use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic_temporal::parser::parse_constraint;
//! use rtic_temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new()
//!         .with("job", Schema::of(&[("id", Sort::Int)]))
//!         .unwrap(),
//! );
//! let mut set = ConstraintSet::new(
//!     vec![
//!         parse_constraint("deny slow: job(j) && once[3,*] job(j)").unwrap(),
//!         parse_constraint("deny busy: job(j) && count k . (job(k)) > 1").unwrap(),
//!     ],
//!     catalog,
//! )
//! .unwrap();
//! let reports = set
//!     .step(TimePoint(1), &Update::new().with_insert("job", tuple![7]))
//!     .unwrap();
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.ok()));
//! assert_eq!(set.space().stored_states, 1); // one shared state copy
//! ```

use std::sync::Arc;

use rtic_history::HistoryError;
use rtic_relation::{Catalog, Database, Update};
use rtic_temporal::{Constraint, TimePoint};

use crate::compile::CompiledConstraint;
use crate::error::CompileError;
use crate::incremental::{EncodingOptions, NodeEngine};
use crate::report::{SpaceStats, StepReport};

/// A set of constraints checked together over one database.
#[derive(Clone, Debug)]
pub struct ConstraintSet {
    db: Database,
    engines: Vec<NodeEngine>,
    last_time: Option<TimePoint>,
    steps: usize,
}

impl ConstraintSet {
    /// Compiles every constraint against `catalog`. Fails on the first
    /// constraint that does not compile (the error names it via the
    /// returned pair).
    pub fn new(
        constraints: impl IntoIterator<Item = Constraint>,
        catalog: Arc<Catalog>,
    ) -> Result<ConstraintSet, (Constraint, CompileError)> {
        let mut engines = Vec::new();
        for c in constraints {
            match CompiledConstraint::compile(c.clone(), Arc::clone(&catalog)) {
                Ok(compiled) => engines.push(NodeEngine::new(compiled, EncodingOptions::default())),
                Err(e) => return Err((c, e)),
            }
        }
        let db = Database::new(catalog);
        Ok(ConstraintSet {
            db,
            engines,
            last_time: None,
            steps: 0,
        })
    }

    /// Number of constraints in the set.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.engines.iter().map(|e| &e.compiled.constraint)
    }

    /// The shared current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of transitions processed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Processes one transition; returns one report per constraint, in
    /// insertion order.
    pub fn step(
        &mut self,
        time: TimePoint,
        update: &Update,
    ) -> Result<Vec<StepReport>, HistoryError> {
        if let Some(last) = self.last_time {
            if time <= last {
                return Err(HistoryError::NonMonotonicTime { last, new: time });
            }
        }
        self.db.apply(update)?;
        let mut reports = Vec::with_capacity(self.engines.len());
        for engine in &mut self.engines {
            engine.advance(&self.db, time);
            let violations = engine.violations(&self.db, time);
            reports.push(StepReport {
                constraint: engine.compiled.constraint.name,
                time,
                violations,
            });
        }
        self.last_time = Some(time);
        self.steps += 1;
        Ok(reports)
    }

    /// [`ConstraintSet::step`], advancing the constraints' engines on
    /// scoped worker threads (one per constraint, capped by the engine
    /// count). Constraints are independent given the shared (immutable
    /// during the step) database, so this is a pure fan-out; reports are
    /// identical to the sequential path and returned in insertion order.
    ///
    /// Worth it when constraints are many or individually expensive — for a
    /// handful of cheap constraints the spawn overhead dominates.
    pub fn step_parallel(
        &mut self,
        time: TimePoint,
        update: &Update,
    ) -> Result<Vec<StepReport>, HistoryError> {
        if let Some(last) = self.last_time {
            if time <= last {
                return Err(HistoryError::NonMonotonicTime { last, new: time });
            }
        }
        self.db.apply(update)?;
        let db = &self.db;
        let reports = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .engines
                .iter_mut()
                .map(|engine| {
                    scope.spawn(move || {
                        engine.advance(db, time);
                        StepReport {
                            constraint: engine.compiled.constraint.name,
                            time,
                            violations: engine.violations(db, time),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine thread panicked"))
                .collect::<Vec<_>>()
        });
        self.last_time = Some(time);
        self.steps += 1;
        Ok(reports)
    }

    /// Aggregate space: the single shared state plus every engine's aux.
    pub fn space(&self) -> SpaceStats {
        let mut aux_keys = 0;
        let mut aux_timestamps = 0;
        for e in &self.engines {
            let (k, t) = e.aux_space();
            aux_keys += k;
            aux_timestamps += t;
        }
        SpaceStats {
            aux_keys,
            aux_timestamps,
            stored_states: 1,
            stored_tuples: self.db.total_tuples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Checker, IncrementalChecker};
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("q", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        )
    }

    fn constraints() -> Vec<Constraint> {
        vec![
            parse_constraint("deny both: p(x) && q(x)").unwrap(),
            parse_constraint("deny lingering: p(x) && once[2,4] q(x)").unwrap(),
            parse_constraint("deny steady: p(x) && hist[0,1] p(x)").unwrap(),
        ]
    }

    #[test]
    fn set_matches_independent_checkers() {
        let cat = catalog();
        let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        let mut singles: Vec<IncrementalChecker> = constraints()
            .into_iter()
            .map(|c| IncrementalChecker::new(c, Arc::clone(&cat)).unwrap())
            .collect();
        for t in 1..30u64 {
            let u = match t % 5 {
                0 => Update::new().with_insert("p", tuple!["a"]),
                1 => Update::new().with_insert("q", tuple!["a"]),
                2 => Update::new().with_delete("p", tuple!["a"]),
                3 => Update::new().with_delete("q", tuple!["a"]),
                _ => Update::new(),
            };
            let set_reports = set.step(TimePoint(t), &u).unwrap();
            for (i, single) in singles.iter_mut().enumerate() {
                let r = single.step(TimePoint(t), &u).unwrap();
                assert_eq!(set_reports[i], r, "constraint {i} diverged at {t}");
            }
        }
    }

    #[test]
    fn shared_state_is_stored_once() {
        let cat = catalog();
        let mut set = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        set.step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
            .unwrap();
        assert_eq!(set.space().stored_states, 1);
        assert_eq!(set.space().stored_tuples, 1, "one copy of the shared db");
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn parallel_step_matches_sequential() {
        let cat = catalog();
        let mut seq = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        let mut par = ConstraintSet::new(constraints(), Arc::clone(&cat)).unwrap();
        for t in 1..40u64 {
            let u = match t % 4 {
                0 => Update::new()
                    .with_insert("p", tuple!["a"])
                    .with_insert("q", tuple!["b"]),
                1 => Update::new().with_insert("q", tuple!["a"]),
                2 => Update::new().with_delete("p", tuple!["a"]),
                _ => Update::new(),
            };
            let a = seq.step(TimePoint(t), &u).unwrap();
            let b = par.step_parallel(TimePoint(t), &u).unwrap();
            assert_eq!(a, b, "parallel step diverged at {t}");
        }
        assert_eq!(seq.space(), par.space());
    }

    #[test]
    fn compile_error_names_the_constraint() {
        let bad = parse_constraint("deny nope: !p(x)").unwrap();
        let err = ConstraintSet::new(vec![bad.clone()], catalog()).unwrap_err();
        assert_eq!(err.0, bad);
    }

    #[test]
    fn monotonic_time_shared() {
        let mut set = ConstraintSet::new(constraints(), catalog()).unwrap();
        set.step(TimePoint(4), &Update::new()).unwrap();
        assert!(set.step(TimePoint(4), &Update::new()).is_err());
    }
}
