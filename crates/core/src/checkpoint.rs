//! Checkpoint / restore of an [`IncrementalChecker`].
//!
//! A real-time checker must survive restarts without replaying the whole
//! history — and the bounded encoding makes that cheap: the checkpoint is
//! exactly the current state plus the (bounded) auxiliary relations. This
//! module serializes both to a line-oriented text format and restores a
//! checker that continues *identically* to one that never stopped
//! (property-tested in `tests/checkpoint_props.rs`).
//!
//! Format sketch:
//!
//! ```text
//! rtic-checkpoint v1
//! constraint unconfirmed
//! body reserved(p, f) && …
//! time 42
//! steps 37
//! rel reserved
//! | "ann", 17
//! endrel
//! node 0 once
//! 3 9 | "ann", 17
//! endnode
//! ```
//!
//! Each aux entry line is `«numbers» | «value literals»`: the numeric
//! prefix (timestamps, flags) never contains strings, so splitting on the
//! first `|` is unambiguous.
//!
//! ```
//! use rtic_core::checkpoint::{restore, save};
//! use rtic_core::{Checker, EncodingOptions, IncrementalChecker};
//! use rtic_relation::{tuple, Catalog, Schema, Sort, Update};
//! use rtic_temporal::parser::parse_constraint;
//! use rtic_temporal::TimePoint;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(
//!     Catalog::new().with("p", Schema::of(&[("x", Sort::Str)])).unwrap(),
//! );
//! let c = parse_constraint("deny d: p(x) && once[2,*] p(x)").unwrap();
//! let mut checker = IncrementalChecker::new(c.clone(), Arc::clone(&catalog)).unwrap();
//! checker
//!     .step(TimePoint(1), &Update::new().with_insert("p", tuple!["a"]))
//!     .unwrap();
//! let snapshot = save(&checker); // plain text, a few lines
//! drop(checker); // "crash"
//! let mut resumed =
//!     restore(c, catalog, EncodingOptions::default(), &snapshot).unwrap();
//! let report = resumed.step(TimePoint(3), &Update::new()).unwrap();
//! assert_eq!(report.violation_count(), 1); // p(a) is now 2 old — as if never stopped
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use rtic_relation::{Catalog, Database, Symbol, Tuple, Value};
use rtic_temporal::{Constraint, TimePoint};

use crate::checker::Checker as _;
use crate::encode::HistInfDump;
use crate::error::CompileError;
use crate::incremental::{EncodingOptions, IncrementalChecker, NodeEngine, NodeState};
use crate::set::{ConstraintSet, DispatchStats};
use crate::shard::ShardedEngine;

/// A checkpoint failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckpointError {
    /// The text is not a well-formed checkpoint.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The checkpoint does not belong to the given constraint/catalog.
    Mismatch {
        /// What differed.
        message: String,
    },
    /// The constraint failed to compile against the catalog.
    Compile(CompileError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Format { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
            CheckpointError::Mismatch { message } => {
                write!(f, "checkpoint mismatch: {message}")
            }
            CheckpointError::Compile(e) => write!(f, "checkpoint constraint: {e}"),
        }
    }
}

impl Error for CheckpointError {}

impl From<CompileError> for CheckpointError {
    fn from(e: CompileError) -> CheckpointError {
        CheckpointError::Compile(e)
    }
}

fn write_values(out: &mut String, t: &Tuple) {
    out.push_str("| ");
    for (i, v) in t.values().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_literal());
    }
    out.push('\n');
}

/// Serializes the checker's full state.
pub fn save(checker: &IncrementalChecker) -> String {
    save_parts(
        checker.database(),
        checker.engine(),
        checker.steps(),
        SectionExtras::default(),
    )
}

/// Fleet-level state a section optionally carries beyond the engine's
/// own: the set's dispatch tallies (identical in every section, restored
/// so counters keep matching engine-steps across resume) and, for a
/// sharded constraint, its phantom and live shards.
#[derive(Clone, Copy, Default)]
struct SectionExtras<'a> {
    dispatch: Option<DispatchStats>,
    sharded: Option<&'a ShardedEngine>,
}

/// Serializes a fleet: one `(constraint, v1 section)` per **healthy**
/// constraint, in insertion order. Each section carries the full shared
/// database, so any one section alone restores a standalone checker and
/// the whole list restores the set ([`restore_set`]). Quarantined
/// engines are excluded — their mid-panic state is not trustworthy — so
/// resuming such a checkpoint with the full constraint file fails with a
/// missing-section error for the quarantined constraint. Sharded
/// constraints serialize per-shard sections: the phantom plus only the
/// **live** shards, so resume rematerializes exactly the live ones.
pub fn save_set(set: &ConstraintSet) -> Vec<(Symbol, String)> {
    let dispatch = set.dispatch_stats();
    set.engines_with_health()
        .filter(|(_, _, quarantined)| !quarantined)
        .map(|(engine, sharded, _)| {
            (
                engine.compiled.constraint.name,
                save_parts(
                    set.database(),
                    engine,
                    set.steps(),
                    SectionExtras {
                        dispatch: Some(dispatch),
                        sharded,
                    },
                ),
            )
        })
        .collect()
}

/// One `rtic-checkpoint v1` section for an engine over `db`.
fn save_parts(
    db: &Database,
    engine: &NodeEngine,
    steps: usize,
    extras: SectionExtras<'_>,
) -> String {
    let mut out = String::new();
    out.push_str("rtic-checkpoint v1\n");
    let _ = writeln!(out, "constraint {}", engine.compiled.constraint.name);
    let _ = writeln!(out, "body {}", engine.compiled.body);
    let last_time = match extras.sharded {
        Some(s) => s.phantom_engine().last_time,
        None => engine.last_time,
    };
    match last_time {
        Some(t) => {
            let _ = writeln!(out, "time {}", t.0);
        }
        None => out.push_str("time none\n"),
    }
    let _ = writeln!(out, "steps {steps}");
    if let Some(d) = extras.dispatch {
        let _ = writeln!(
            out,
            "dispatch {} {} {} {}",
            d.affected, d.skipped, d.quiescent_full, d.quarantined
        );
    }
    // Current database state.
    for name in db.catalog().names() {
        let rel = db.relation(name).expect("catalogued");
        if rel.is_empty() {
            continue;
        }
        let _ = writeln!(out, "rel {name}");
        for t in rel.iter() {
            write_values(&mut out, t);
        }
        out.push_str("endrel\n");
    }
    match extras.sharded {
        None => write_nodes(&mut out, engine),
        Some(sharded) => {
            // The sharded data plane replaces the (dormant) main
            // engine's node blocks: the phantom's state plus one block
            // per live shard. Sub-databases are not serialized — they
            // are rebuilt at restore by partitioning the shared
            // database on the key columns.
            let _ = writeln!(out, "shardkey {}", sharded.key().var);
            out.push_str("phantom\n");
            write_nodes(&mut out, sharded.phantom_engine());
            out.push_str("endphantom\n");
            for (key, shard_engine) in sharded.live_shards() {
                let _ = writeln!(out, "shard {}", key.to_literal());
                write_nodes(&mut out, shard_engine);
                out.push_str("endshard\n");
            }
        }
    }
    out
}

/// The `node <idx> <kind> … endnode` blocks for an engine's auxiliary
/// states.
fn write_nodes(out: &mut String, engine: &NodeEngine) {
    for (idx, state) in engine.states.iter().enumerate() {
        match state {
            NodeState::Prev(p) => {
                let _ = writeln!(out, "node {idx} prev");
                if let Some((t, rows)) = p.dump() {
                    let _ = writeln!(out, "time {}", t.0);
                    for r in rows {
                        write_values(out, &r);
                    }
                }
            }
            NodeState::Once(w) | NodeState::Since(w) => {
                let kind = if matches!(state, NodeState::Once(_)) {
                    "once"
                } else {
                    "since"
                };
                let _ = writeln!(out, "node {idx} {kind}");
                for (key, stamps) in w.dump() {
                    for (i, s) in stamps.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        let _ = write!(out, "{}", s.0);
                    }
                    out.push(' ');
                    write_values(out, &key);
                }
            }
            NodeState::HistFinite(h) => {
                let _ = writeln!(out, "node {idx} histf");
                let (entries, times) = h.dump();
                out.push_str("times");
                for t in &times {
                    let _ = write!(out, " {}", t.0);
                }
                out.push('\n');
                for (key, runs) in entries {
                    for (i, (s, e)) in runs.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        let _ = write!(out, "{} {}", s.0, e.0);
                    }
                    out.push(' ');
                    write_values(out, &key);
                }
            }
            NodeState::HistInf(h) => {
                let _ = writeln!(out, "node {idx} histi");
                let dump = h.dump();
                let _ = writeln!(out, "started {}", dump.started);
                match dump.latest_older {
                    Some(t) => {
                        let _ = writeln!(out, "older {}", t.0);
                    }
                    None => out.push_str("older none\n"),
                }
                out.push_str("recent");
                for t in &dump.recent_times {
                    let _ = write!(out, " {}", t.0);
                }
                out.push('\n');
                for (key, end, active) in dump.entries {
                    let _ = write!(out, "{} {} ", end.0, u8::from(active));
                    write_values(out, &key);
                }
            }
        }
        out.push_str("endnode\n");
    }
}

struct Reader<'s> {
    lines: Vec<(usize, &'s str)>,
    pos: usize,
}

impl<'s> Reader<'s> {
    fn new(text: &'s str) -> Reader<'s> {
        Reader {
            lines: text
                .lines()
                .enumerate()
                .map(|(i, l)| (i + 1, l.trim()))
                .filter(|(_, l)| !l.is_empty())
                .collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&'s str> {
        self.lines.get(self.pos).map(|(_, l)| *l)
    }

    fn next(&mut self) -> Option<(usize, &'s str)> {
        let l = self.lines.get(self.pos).copied();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn line_no(&self) -> usize {
        self.lines
            .get(self.pos.saturating_sub(1))
            .or_else(|| self.lines.last())
            .map(|(n, _)| *n)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> CheckpointError {
        CheckpointError::Format {
            line: self.line_no(),
            message: message.into(),
        }
    }

    fn expect_kv(&mut self, key: &str) -> Result<String, CheckpointError> {
        match self.next() {
            Some((_, l)) if l.starts_with(key) && l[key.len()..].starts_with(' ') => {
                Ok(l[key.len() + 1..].to_string())
            }
            Some((_, l)) => Err(self.err(format!("expected `{key} …`, found `{l}`"))),
            None => Err(self.err(format!("expected `{key} …`, found end of checkpoint"))),
        }
    }
}

fn parse_entry_line(line: &str) -> Result<(Vec<u64>, Tuple), String> {
    let (nums, vals) = line
        .split_once('|')
        .ok_or_else(|| "entry line missing `|`".to_string())?;
    let numbers: Result<Vec<u64>, _> = nums.split_whitespace().map(str::parse::<u64>).collect();
    let numbers = numbers.map_err(|e| format!("bad number: {e}"))?;
    let values = Value::parse_literals(vals)?;
    Ok((numbers, Tuple::new(values)))
}

fn parse_times(text: &str) -> Result<Vec<TimePoint>, String> {
    text.split_whitespace()
        .map(|w| {
            w.parse::<u64>()
                .map(TimePoint)
                .map_err(|e| format!("bad time: {e}"))
        })
        .collect()
}

/// Restores a checker from checkpoint text. The same `constraint`,
/// `catalog` and `options` the original was built with must be supplied;
/// the constraint's compiled body is verified against the checkpoint.
pub fn restore(
    constraint: Constraint,
    catalog: Arc<Catalog>,
    options: EncodingOptions,
    text: &str,
) -> Result<IncrementalChecker, CheckpointError> {
    let mut checker = IncrementalChecker::with_options(constraint, catalog, options)?;
    let (db, engine, steps_slot) = checker.parts_mut();
    restore_section(
        db,
        engine,
        None,
        steps_slot,
        &mut DispatchStats::default(),
        text,
        RelMode::Apply,
    )?;
    Ok(checker)
}

/// Restores a whole fleet from the sections of a multi-section
/// checkpoint (see [`save_set`]). Sections are matched to constraints by
/// name; the shared database is applied from the first constraint's
/// section and *verified* tuple-for-tuple against every other section,
/// so sections from divergent runs cannot be silently mixed. The
/// restored set's step/time cursor is checked for consistency across
/// sections.
pub fn restore_set(
    constraints: impl IntoIterator<Item = Constraint>,
    catalog: Arc<Catalog>,
    sections: &[String],
) -> Result<ConstraintSet, CheckpointError> {
    restore_set_with_options(constraints, catalog, EncodingOptions::default(), sections)
}

/// [`restore_set`] with explicit [`EncodingOptions`] applied to every
/// restored engine (e.g. `profile_plans` to profile a resumed run).
pub fn restore_set_with_options(
    constraints: impl IntoIterator<Item = Constraint>,
    catalog: Arc<Catalog>,
    options: EncodingOptions,
    sections: &[String],
) -> Result<ConstraintSet, CheckpointError> {
    restore_set_sharded(constraints, catalog, options, sections, false)
}

/// [`restore_set_with_options`] with the entity-key sharded data plane
/// enabled (`sharding`) before the sections are applied. A checkpoint
/// written sharded must be resumed sharded and vice versa — the sections
/// record which plane produced them, and a mismatch is rejected with an
/// actionable error rather than silently dropping per-shard state.
pub fn restore_set_sharded(
    constraints: impl IntoIterator<Item = Constraint>,
    catalog: Arc<Catalog>,
    options: EncodingOptions,
    sections: &[String],
    sharding: bool,
) -> Result<ConstraintSet, CheckpointError> {
    let mut set =
        ConstraintSet::with_options(constraints, catalog, options).map_err(|(c, e)| {
            CheckpointError::Mismatch {
                message: format!("constraint `{}` failed to compile: {e}", c.name),
            }
        })?;
    if sharding {
        set.set_sharding(true);
    }
    let parts = set.restore_parts();
    let mut cursor: Option<(usize, Option<TimePoint>)> = None;
    let mut dispatch: Option<DispatchStats> = None;
    for i in 0..parts.engines.len() {
        let engine = &mut parts.engines[i];
        let name = engine.compiled.constraint.name;
        let section = sections
            .iter()
            .find(|s| section_constraint_name(s) == Some(name.as_str()))
            .ok_or_else(|| CheckpointError::Mismatch {
                message: format!(
                    "checkpoint has no section for constraint `{name}` \
                     (it may have been quarantined when the checkpoint was written, \
                     or the constraint file has changed)"
                ),
            })?;
        let mode = if i == 0 {
            RelMode::Apply
        } else {
            RelMode::Verify
        };
        let mut steps = 0usize;
        let mut section_dispatch = DispatchStats::default();
        restore_section(
            parts.db,
            engine,
            parts.shards[i].as_mut(),
            &mut steps,
            &mut section_dispatch,
            section,
            mode,
        )?;
        dispatch.get_or_insert(section_dispatch);
        let this = (steps, engine.last_time);
        match cursor {
            None => cursor = Some(this),
            Some(prev) if prev != this => {
                return Err(CheckpointError::Mismatch {
                    message: format!(
                        "checkpoint sections disagree on the resume cursor \
                         (constraint `{name}` is at steps={} t={:?}, earlier sections at steps={} t={:?})",
                        this.0, this.1, prev.0, prev.1
                    ),
                });
            }
            Some(_) => {}
        }
    }
    if let Some((steps, time)) = cursor {
        *parts.steps = steps;
        *parts.last_time = time;
    }
    if let Some(d) = dispatch {
        *parts.dispatch = d;
    }
    Ok(set)
}

/// The `constraint <name>` value of a v1 section, if present.
fn section_constraint_name(text: &str) -> Option<&str> {
    text.lines()
        .find_map(|l| l.trim().strip_prefix("constraint "))
}

/// How a section's `rel` blocks relate to the database being restored.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RelMode {
    /// Insert the tuples (first/only section: it owns the database).
    Apply,
    /// The database was already applied from another section of the same
    /// checkpoint; verify this section lists exactly the same tuples.
    Verify,
}

/// Restores one v1 section into an engine (and, per `rel_mode`, the
/// database). `steps_slot` receives the section's step cursor and
/// `dispatch_slot` the fleet dispatch counters when the section carries
/// them. When the constraint runs sharded, pass its [`ShardedEngine`]:
/// sharded sections restore the phantom and per-key shard node blocks
/// into it (and partition the shared database afterwards) instead of
/// touching `engine`'s node states.
fn restore_section(
    db: &mut Database,
    engine: &mut NodeEngine,
    mut sharded: Option<&mut ShardedEngine>,
    steps_slot: &mut usize,
    dispatch_slot: &mut DispatchStats,
    text: &str,
    rel_mode: RelMode,
) -> Result<(), CheckpointError> {
    let mut r = Reader::new(text);
    match r.next() {
        Some((_, "rtic-checkpoint v1")) => {}
        _ => return Err(r.err("missing `rtic-checkpoint v1` header")),
    }
    let name = r.expect_kv("constraint")?;
    let body = r.expect_kv("body")?;
    {
        if engine.compiled.constraint.name.as_str() != name {
            return Err(CheckpointError::Mismatch {
                message: format!(
                    "checkpoint is for constraint `{name}`, not `{}`",
                    engine.compiled.constraint.name
                ),
            });
        }
        if engine.compiled.body.to_string() != body {
            return Err(CheckpointError::Mismatch {
                message: format!(
                    "constraint `{name}`: its compiled body differs from the checkpointed one — \
                     the definition of `{name}` changed since this checkpoint was written \
                     (checkpointed body: `{body}`); restore with the original constraint file \
                     or start a fresh run"
                ),
            });
        }
    }
    let time_text = r.expect_kv("time")?;
    let last_time = if time_text == "none" {
        None
    } else {
        Some(TimePoint(
            time_text
                .parse()
                .map_err(|e| r.err(format!("bad time: {e}")))?,
        ))
    };
    let steps: usize = r
        .expect_kv("steps")?
        .parse()
        .map_err(|e| r.err(format!("bad steps: {e}")))?;
    if let Some(rest) = r.peek().and_then(|l| l.strip_prefix("dispatch ")) {
        r.next();
        let nums: Vec<u64> = rest
            .split_whitespace()
            .map(|w| w.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|e| r.err(format!("bad dispatch counter: {e}")))?;
        let [affected, skipped, quiescent_full, quarantined] = nums[..] else {
            return Err(r.err("`dispatch` carries exactly four counters"));
        };
        *dispatch_slot = DispatchStats {
            affected,
            skipped,
            quiescent_full,
            quarantined,
        };
    }

    engine.last_time = last_time;
    *steps_slot = steps;
    let mut saw_shardkey = false;
    while let Some(line) = r.peek() {
        if let Some(rel_name) = line.strip_prefix("rel ") {
            r.next();
            let sym = rtic_relation::Symbol::intern(rel_name);
            match rel_mode {
                RelMode::Apply => {
                    let rel = db
                        .relation_mut(sym)
                        .map_err(|e| CheckpointError::Mismatch {
                            message: e.to_string(),
                        })?;
                    loop {
                        match r.next() {
                            Some((_, "endrel")) => break,
                            Some((_, l)) => {
                                let (nums, tuple) = parse_entry_line(l).map_err(|m| r.err(m))?;
                                if !nums.is_empty() {
                                    return Err(r.err("relation rows carry no numeric prefix"));
                                }
                                rel.insert(tuple).map_err(|e| CheckpointError::Mismatch {
                                    message: e.to_string(),
                                })?;
                            }
                            None => return Err(r.err("unterminated `rel` section")),
                        }
                    }
                }
                RelMode::Verify => {
                    let rel = db.relation(sym).map_err(|e| CheckpointError::Mismatch {
                        message: e.to_string(),
                    })?;
                    let mut seen = 0usize;
                    loop {
                        match r.next() {
                            Some((_, "endrel")) => break,
                            Some((_, l)) => {
                                let (nums, tuple) = parse_entry_line(l).map_err(|m| r.err(m))?;
                                if !nums.is_empty() {
                                    return Err(r.err("relation rows carry no numeric prefix"));
                                }
                                if !rel.contains(&tuple) {
                                    return Err(CheckpointError::Mismatch {
                                        message: format!(
                                            "checkpoint sections disagree on relation `{rel_name}` \
                                             (constraint `{name}` lists a tuple other sections lack)"
                                        ),
                                    });
                                }
                                seen += 1;
                            }
                            None => return Err(r.err("unterminated `rel` section")),
                        }
                    }
                    if seen != rel.len() {
                        return Err(CheckpointError::Mismatch {
                            message: format!(
                                "checkpoint sections disagree on relation `{rel_name}` \
                                 (constraint `{name}` lists {seen} tuple(s), other sections {})",
                                rel.len()
                            ),
                        });
                    }
                }
            }
        } else if let Some(rest) = line.strip_prefix("node ") {
            r.next();
            if sharded.is_some() {
                return Err(CheckpointError::Mismatch {
                    message: format!(
                        "constraint `{name}`: the checkpoint was written without sharding, \
                         but this run shards it — resume with `--shard off`, or start a \
                         fresh run"
                    ),
                });
            }
            restore_node(&mut r, rest, &mut engine.states)?;
        } else if let Some(var_text) = line.strip_prefix("shardkey ") {
            r.next();
            saw_shardkey = true;
            let sh = sharded
                .as_deref_mut()
                .ok_or_else(|| CheckpointError::Mismatch {
                    message: format!(
                        "constraint `{name}`: the checkpoint was written with `--shard auto`, \
                         but this run does not shard it — resume with `--shard auto`, or \
                         start a fresh run"
                    ),
                })?;
            if sh.key().var.0.as_str() != var_text {
                return Err(CheckpointError::Mismatch {
                    message: format!(
                        "constraint `{name}`: checkpoint shard key `{var_text}` differs \
                         from the compiled key `{}`",
                        sh.key().var
                    ),
                });
            }
        } else if line == "phantom" {
            r.next();
            let sh = sharded
                .as_deref_mut()
                .ok_or_else(|| r.err("`phantom` outside a sharded section"))?;
            restore_nodes_until(&mut r, &mut sh.phantom_engine_mut().states, "endphantom")?;
        } else if let Some(lit) = line.strip_prefix("shard ") {
            r.next();
            let sh = sharded
                .as_deref_mut()
                .ok_or_else(|| r.err("`shard` outside a sharded section"))?;
            let values = Value::parse_literals(lit).map_err(|m| r.err(m))?;
            let &[key] = &values[..] else {
                return Err(r.err("`shard` takes exactly one key literal"));
            };
            let shard = sh.restore_shard(key);
            restore_nodes_until(&mut r, &mut shard.engine.states, "endshard")?;
        } else {
            return Err(r.err(format!("unexpected line `{line}`")));
        }
    }
    if let Some(sh) = sharded {
        if !saw_shardkey {
            return Err(CheckpointError::Mismatch {
                message: format!(
                    "constraint `{name}`: the checkpoint was written without sharding, \
                     but this run shards it — resume with `--shard off`, or start a \
                     fresh run"
                ),
            });
        }
        sh.attach_partition(db)
            .map_err(|message| CheckpointError::Mismatch { message })?;
        sh.set_last_time(last_time);
    }
    Ok(())
}

/// Restores consecutive `node …` blocks until the closing `end` marker
/// (which is consumed) — the body of a `phantom`/`shard` block.
fn restore_nodes_until(
    r: &mut Reader<'_>,
    states: &mut [NodeState],
    end: &str,
) -> Result<(), CheckpointError> {
    loop {
        match r.peek() {
            Some(l) if l == end => {
                r.next();
                return Ok(());
            }
            Some(l) => {
                let Some(rest) = l.strip_prefix("node ") else {
                    return Err(r.err(format!(
                        "unexpected line `{l}` (expected `node …` or `{end}`)"
                    )));
                };
                r.next();
                restore_node(r, rest, states)?;
            }
            None => return Err(r.err(format!("unterminated block: missing `{end}`"))),
        }
    }
}

/// Restores one `node <idx> <kind>` block (through its `endnode`) into
/// `states`. `rest` is the header line after the `node ` prefix.
fn restore_node(
    r: &mut Reader<'_>,
    rest: &str,
    states: &mut [NodeState],
) -> Result<(), CheckpointError> {
    {
        let mut parts = rest.split_whitespace();
        let idx: usize = parts
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| r.err("bad node index"))?;
        let kind = parts.next().unwrap_or("");
        let state = states
            .get_mut(idx)
            .ok_or_else(|| CheckpointError::Mismatch {
                message: format!("checkpoint has node {idx}, constraint does not"),
            })?;
        match (kind, state) {
            ("prev", NodeState::Prev(p)) => {
                if r.peek().is_some_and(|l| l.starts_with("time ")) {
                    let t: u64 = r
                        .expect_kv("time")?
                        .parse()
                        .map_err(|e| r.err(format!("bad prev time: {e}")))?;
                    let mut rows = Vec::new();
                    while r.peek().is_some_and(|l| l != "endnode") {
                        let (_, l) = r.next().expect("peeked");
                        let (nums, tuple) = parse_entry_line(l).map_err(|m| r.err(m))?;
                        if !nums.is_empty() {
                            return Err(r.err("prev rows carry no numeric prefix"));
                        }
                        rows.push(tuple);
                    }
                    p.restore(TimePoint(t), rows);
                }
            }
            ("once", NodeState::Once(w)) | ("since", NodeState::Since(w)) => {
                while r.peek().is_some_and(|l| l != "endnode") {
                    let (_, l) = r.next().expect("peeked");
                    let (nums, key) = parse_entry_line(l).map_err(|m| r.err(m))?;
                    if nums.is_empty() {
                        return Err(r.err("window entry needs at least one timestamp"));
                    }
                    let stamps: Vec<TimePoint> = nums.into_iter().map(TimePoint).collect();
                    w.restore_entry(key, &stamps);
                }
            }
            ("histf", NodeState::HistFinite(h)) => {
                let times =
                    parse_times(&r.expect_kv("times").unwrap_or_default()).map_err(|m| r.err(m))?;
                let mut entries = Vec::new();
                while r.peek().is_some_and(|l| l != "endnode") {
                    let (_, l) = r.next().expect("peeked");
                    let (nums, key) = parse_entry_line(l).map_err(|m| r.err(m))?;
                    if nums.len() % 2 != 0 {
                        return Err(r.err("runs come as start/end pairs"));
                    }
                    let runs: Vec<(TimePoint, TimePoint)> = nums
                        .chunks(2)
                        .map(|c| (TimePoint(c[0]), TimePoint(c[1])))
                        .collect();
                    entries.push((key, runs));
                }
                h.restore(entries, times);
            }
            ("histi", NodeState::HistInf(h)) => {
                let started = r.expect_kv("started")? == "true";
                let older_text = r.expect_kv("older")?;
                let latest_older = if older_text == "none" {
                    None
                } else {
                    Some(TimePoint(
                        older_text
                            .parse()
                            .map_err(|e| r.err(format!("bad older time: {e}")))?,
                    ))
                };
                let recent = parse_times(&r.expect_kv("recent").unwrap_or_default())
                    .map_err(|m| r.err(m))?;
                let mut entries = Vec::new();
                while r.peek().is_some_and(|l| l != "endnode") {
                    let (_, l) = r.next().expect("peeked");
                    let (nums, key) = parse_entry_line(l).map_err(|m| r.err(m))?;
                    if nums.len() != 2 {
                        return Err(r.err("histi entries are `end active | key`"));
                    }
                    entries.push((key, TimePoint(nums[0]), nums[1] != 0));
                }
                h.restore(HistInfDump {
                    started,
                    entries,
                    recent_times: recent,
                    latest_older,
                });
            }
            (k, _) => {
                return Err(CheckpointError::Mismatch {
                    message: format!("node {idx} kind `{k}` does not match the constraint"),
                })
            }
        }
    }
    match r.next() {
        Some((_, "endnode")) => Ok(()),
        _ => Err(r.err("expected `endnode`")),
    }
}

/// [`save`] with observation: emits a
/// [`StepEvent::CheckpointSave`](crate::observe::StepEvent) carrying the
/// serialized size.
pub fn save_observed(
    checker: &IncrementalChecker,
    obs: &mut dyn crate::observe::StepObserver,
) -> String {
    let text = save(checker);
    obs.observe(&crate::observe::StepEvent::CheckpointSave {
        constraint: checker.constraint().name,
        bytes: text.len(),
    });
    text
}

/// [`restore`] with observation: emits a
/// [`StepEvent::CheckpointRestore`](crate::observe::StepEvent) on success
/// only — a failed restore produced no usable checker.
pub fn restore_observed(
    constraint: Constraint,
    catalog: Arc<Catalog>,
    options: EncodingOptions,
    text: &str,
    obs: &mut dyn crate::observe::StepObserver,
) -> Result<IncrementalChecker, CheckpointError> {
    let checker = restore(constraint, catalog, options, text)?;
    obs.observe(&crate::observe::StepEvent::CheckpointRestore {
        constraint: checker.constraint().name,
        bytes: text.len(),
    });
    Ok(checker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Checker;
    use rtic_relation::{tuple, Schema, Sort, Update};
    use rtic_temporal::parser::parse_constraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("p", Schema::of(&[("x", Sort::Str)]))
                .unwrap()
                .with("q", Schema::of(&[("x", Sort::Str)]))
                .unwrap(),
        )
    }

    fn constraint() -> Constraint {
        parse_constraint(
            "deny d: p(x) && once[1,3] q(x) && !(q(x) since[0,5] p(x)) \
             && hist[0,2] p(x) || q(x) && prev p(x) && hist[1,*] p(x)",
        )
        .unwrap()
    }

    fn drive(c: &mut IncrementalChecker, from: u64, to: u64) -> Vec<crate::StepReport> {
        let mut out = Vec::new();
        for t in from..to {
            let u = match t % 4 {
                0 => Update::new()
                    .with_insert("p", tuple!["a"])
                    .with_insert("q", tuple!["b"]),
                1 => Update::new().with_insert("q", tuple!["a"]),
                2 => Update::new().with_delete("p", tuple!["a"]),
                _ => Update::new().with_delete("q", tuple!["a"]),
            };
            out.push(c.step(TimePoint(t), &u).unwrap());
        }
        out
    }

    #[test]
    fn save_restore_resumes_identically() {
        let cat = catalog();
        // Uninterrupted reference run.
        let mut reference = IncrementalChecker::new(constraint(), Arc::clone(&cat)).unwrap();
        let all = drive(&mut reference, 1, 40);
        // Interrupted run: checkpoint at t=20, restore, continue.
        let mut first = IncrementalChecker::new(constraint(), Arc::clone(&cat)).unwrap();
        let head = drive(&mut first, 1, 20);
        let text = save(&first);
        let mut resumed = restore(
            constraint(),
            Arc::clone(&cat),
            EncodingOptions::default(),
            &text,
        )
        .unwrap();
        assert_eq!(resumed.steps(), first.steps());
        let tail = drive(&mut resumed, 20, 40);
        let stitched: Vec<_> = head.into_iter().chain(tail).collect();
        assert_eq!(
            stitched, all,
            "restored checker diverged from uninterrupted run"
        );
    }

    #[test]
    fn checkpoint_is_stable_under_round_trip() {
        let cat = catalog();
        let mut c = IncrementalChecker::new(constraint(), Arc::clone(&cat)).unwrap();
        drive(&mut c, 1, 25);
        let t1 = save(&c);
        let restored = restore(
            constraint(),
            Arc::clone(&cat),
            EncodingOptions::default(),
            &t1,
        )
        .unwrap();
        assert_eq!(
            save(&restored),
            t1,
            "save∘restore is the identity on checkpoints"
        );
    }

    #[test]
    fn fresh_checkpoint_restores() {
        let cat = catalog();
        let c = IncrementalChecker::new(constraint(), Arc::clone(&cat)).unwrap();
        let text = save(&c);
        let restored = restore(
            constraint(),
            Arc::clone(&cat),
            EncodingOptions::default(),
            &text,
        )
        .unwrap();
        assert_eq!(restored.steps(), 0);
    }

    #[test]
    fn wrong_constraint_is_rejected() {
        let cat = catalog();
        let mut c = IncrementalChecker::new(constraint(), Arc::clone(&cat)).unwrap();
        drive(&mut c, 1, 5);
        let text = save(&c);
        let other = parse_constraint("deny d: p(x) && q(x)").unwrap();
        let err = restore(other, Arc::clone(&cat), EncodingOptions::default(), &text).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        let renamed = parse_constraint("deny other: p(x) && q(x)").unwrap();
        let err =
            restore(renamed, Arc::clone(&cat), EncodingOptions::default(), &text).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
    }

    fn fleet() -> Vec<Constraint> {
        vec![
            parse_constraint("deny both: p(x) && q(x)").unwrap(),
            parse_constraint("deny lingering: p(x) && once[2,4] q(x)").unwrap(),
            parse_constraint("deny steady: p(x) && hist[0,1] p(x)").unwrap(),
        ]
    }

    fn drive_set(
        set: &mut crate::ConstraintSet,
        from: u64,
        to: u64,
    ) -> Vec<Vec<crate::StepReport>> {
        let mut out = Vec::new();
        for t in from..to {
            let u = match t % 4 {
                0 => Update::new()
                    .with_insert("p", tuple!["a"])
                    .with_insert("q", tuple!["b"]),
                1 => Update::new().with_insert("q", tuple!["a"]),
                2 => Update::new().with_delete("p", tuple!["a"]),
                _ => Update::new().with_delete("q", tuple!["a"]),
            };
            out.push(set.step(TimePoint(t), &u).unwrap());
        }
        out
    }

    #[test]
    fn fleet_save_restore_resumes_identically() {
        let cat = catalog();
        let mut reference = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        let all = drive_set(&mut reference, 1, 40);

        let mut head = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        let mut got = drive_set(&mut head, 1, 20);
        let sections: Vec<String> = save_set(&head).into_iter().map(|(_, s)| s).collect();
        assert_eq!(sections.len(), 3);
        let mut resumed = restore_set(fleet(), Arc::clone(&cat), &sections).unwrap();
        assert_eq!(resumed.steps(), head.steps());
        assert_eq!(resumed.last_time(), head.last_time());
        got.extend(drive_set(&mut resumed, 20, 40));
        assert_eq!(got, all, "restored fleet diverged from uninterrupted run");
    }

    #[test]
    fn fleet_sections_each_restore_standalone() {
        let cat = catalog();
        let mut set = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        drive_set(&mut set, 1, 15);
        for (sym, section) in save_set(&set) {
            let c = fleet()
                .into_iter()
                .find(|c| c.name == sym)
                .expect("known constraint");
            let checker = restore(c, Arc::clone(&cat), EncodingOptions::default(), &section)
                .unwrap_or_else(|e| panic!("section for {sym} failed: {e}"));
            assert_eq!(checker.steps(), set.steps());
        }
    }

    #[test]
    fn fleet_restore_rejects_missing_and_renamed_sections() {
        let cat = catalog();
        let mut set = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        drive_set(&mut set, 1, 8);
        let sections: Vec<String> = save_set(&set).into_iter().map(|(_, s)| s).collect();
        // A fleet with an extra constraint finds no section for it.
        let mut extra = fleet();
        extra.push(parse_constraint("deny extra: q(x) && prev q(x)").unwrap());
        let err = restore_set(extra, Arc::clone(&cat), &sections).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("no section for constraint `extra`"),
            "error must name the constraint: {msg}"
        );
    }

    #[test]
    fn fleet_restore_rejects_changed_body_naming_the_constraint() {
        let cat = catalog();
        let mut set = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        drive_set(&mut set, 1, 8);
        let sections: Vec<String> = save_set(&set).into_iter().map(|(_, s)| s).collect();
        // Same name, different body: the operator edited the constraint.
        let mut changed = fleet();
        changed[1] = parse_constraint("deny lingering: p(x) && once[1,9] q(x)").unwrap();
        let err = restore_set(changed, Arc::clone(&cat), &sections).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        assert!(
            msg.contains("`lingering`") && msg.contains("changed since this checkpoint"),
            "error must name the mismatched constraint and be actionable: {msg}"
        );
    }

    #[test]
    fn quarantined_engines_are_excluded_from_save_set() {
        let cat = catalog();
        let mut set = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        set.arm_panic("lingering", 1);
        drive_set(&mut set, 1, 5);
        let saved = save_set(&set);
        let names: Vec<&str> = saved.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(names, vec!["both", "steady"]);
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let cat = catalog();
        let err = restore(
            constraint(),
            Arc::clone(&cat),
            EncodingOptions::default(),
            "not a checkpoint",
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Format { .. }));
        let mut c = IncrementalChecker::new(constraint(), Arc::clone(&cat)).unwrap();
        drive(&mut c, 1, 5);
        let mut text = save(&c);
        text.push_str("mystery line\n");
        let err = restore(
            constraint(),
            Arc::clone(&cat),
            EncodingOptions::default(),
            &text,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Format { .. }));
    }

    #[test]
    fn dispatch_stats_survive_resume() {
        let cat = catalog();
        let mut reference = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        drive_set(&mut reference, 1, 40);

        let mut head = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        drive_set(&mut head, 1, 20);
        let sections: Vec<String> = save_set(&head).into_iter().map(|(_, s)| s).collect();
        let mut resumed = restore_set(fleet(), Arc::clone(&cat), &sections).unwrap();
        assert_eq!(
            resumed.dispatch_stats(),
            head.dispatch_stats(),
            "dispatch counters resume where they stopped, they do not restart at zero"
        );
        drive_set(&mut resumed, 20, 40);
        let d = resumed.dispatch_stats();
        assert_eq!(
            d,
            reference.dispatch_stats(),
            "stitched counters match an uninterrupted run"
        );
        assert_eq!(
            d.total(),
            39 * 3,
            "every healthy engine tallies exactly once per step across the resume"
        );
    }

    #[test]
    fn sharded_fleet_save_restore_resumes_identically() {
        let cat = catalog();
        // The reference is the *unsharded* fleet: the stitched sharded run
        // must match it byte for byte.
        let mut reference = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        let all = drive_set(&mut reference, 1, 40);

        let mut head = crate::ConstraintSet::new(fleet(), Arc::clone(&cat))
            .unwrap()
            .with_sharding(true);
        head.set_shard_eviction(3);
        assert_eq!(head.sharded_constraints(), 3);
        let mut got = drive_set(&mut head, 1, 20);
        let sections: Vec<String> = save_set(&head).into_iter().map(|(_, s)| s).collect();
        let mut resumed = restore_set_sharded(
            fleet(),
            Arc::clone(&cat),
            EncodingOptions::default(),
            &sections,
            true,
        )
        .unwrap();
        assert_eq!(resumed.steps(), head.steps());
        assert_eq!(resumed.last_time(), head.last_time());
        assert_eq!(resumed.sharded_constraints(), 3);
        assert_eq!(
            save_set(&resumed)
                .into_iter()
                .map(|(_, s)| s)
                .collect::<Vec<_>>(),
            sections,
            "save∘restore is the identity on sharded checkpoints"
        );
        resumed.set_shard_eviction(3);
        got.extend(drive_set(&mut resumed, 20, 40));
        assert_eq!(
            got, all,
            "restored sharded fleet diverged from the uninterrupted unsharded run"
        );
    }

    #[test]
    fn sharded_and_unsharded_checkpoints_do_not_mix() {
        let cat = catalog();
        let mut sharded = crate::ConstraintSet::new(fleet(), Arc::clone(&cat))
            .unwrap()
            .with_sharding(true);
        drive_set(&mut sharded, 1, 10);
        let sharded_sections: Vec<String> =
            save_set(&sharded).into_iter().map(|(_, s)| s).collect();
        let mut plain = crate::ConstraintSet::new(fleet(), Arc::clone(&cat)).unwrap();
        drive_set(&mut plain, 1, 10);
        let plain_sections: Vec<String> = save_set(&plain).into_iter().map(|(_, s)| s).collect();

        // Sharded checkpoint, unsharded resume.
        let err = restore_set(fleet(), Arc::clone(&cat), &sharded_sections).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        assert!(
            err.to_string().contains("--shard auto"),
            "error must say how to resume: {err}"
        );

        // Unsharded checkpoint, sharded resume.
        let err = restore_set_sharded(
            fleet(),
            Arc::clone(&cat),
            EncodingOptions::default(),
            &plain_sections,
            true,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
        assert!(
            err.to_string().contains("--shard off"),
            "error must say how to resume: {err}"
        );
    }
}
