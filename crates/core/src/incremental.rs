//! The incremental checker — the paper's contribution.
//!
//! Holds only the current database state plus the bounded auxiliary state
//! of [`crate::encode`]. Each [`IncrementalChecker::step`]:
//!
//! 1. applies the update to the current state;
//! 2. advances every temporal node **children-first**: the node's operand
//!    extensions at the *new* state are computed by the shared evaluator
//!    (inner temporal nodes answer from their already-advanced state), then
//!    the node's auxiliary state absorbs them;
//! 3. evaluates the denial body over the new state, answering temporal
//!    subformulas from the auxiliary state (by O(1) membership probes when
//!    the variables are already bound — see [`crate::eval::Oracle`]); any
//!    satisfying assignment is a violation witness.
//!
//! No past state is read at any point — the update is a function of the
//! previous auxiliary state and the new database state only, which is what
//! makes the space bound (experiment T1) and the history-independent step
//! time (experiment F1) hold.
//!
//! The aux machinery lives in [`NodeEngine`] so that a [`crate::ConstraintSet`]
//! can advance several constraints' engines over one shared database.

use std::collections::HashMap;
use std::sync::Arc;

use rtic_history::HistoryError;
use rtic_relation::{Catalog, Database, Tuple, Update};
use rtic_temporal::ast::{Formula, Var};
use rtic_temporal::{Constraint, TimePoint};

use crate::binding::Bindings;
use crate::checker::Checker;
use crate::compile::CompiledConstraint;
use crate::encode::{HistFiniteState, HistInfState, PrevState, StampPolicy, WindowState};
use crate::error::CompileError;
use crate::eval::{eval, Oracle};
use crate::report::{SpaceStats, StepReport};

/// Auxiliary state of one temporal node.
#[derive(Clone, Debug)]
pub(crate) enum NodeState {
    Prev(PrevState),
    Once(WindowState),
    Since(WindowState),
    HistFinite(HistFiniteState),
    HistInf(HistInfState),
}

/// A snapshot of one temporal node's auxiliary footprint
/// (see [`IncrementalChecker::node_stats`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeStat {
    /// The subformula, pretty-printed.
    pub formula: String,
    /// Live keys in the node's auxiliary structure.
    pub keys: usize,
    /// Timestamps/endpoints currently stored.
    pub timestamps: usize,
}

/// Options tuning the encoding (used by the T6 ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingOptions {
    /// Disable the one-timestamp specialisations: every `once`/`since`
    /// node keeps the general pruned deque. Semantics are unchanged; only
    /// space/time differ.
    pub disable_stamp_specialization: bool,
}

fn sorted_free_vars(f: &Formula) -> Vec<Var> {
    f.free_vars().into_iter().collect()
}

/// One compiled constraint's bounded auxiliary state, advanced against an
/// externally-owned database. [`IncrementalChecker`] pairs an engine with
/// its own database; [`crate::ConstraintSet`] shares one database across
/// many engines.
#[derive(Clone, Debug)]
pub(crate) struct NodeEngine {
    pub(crate) compiled: CompiledConstraint,
    pub(crate) states: Vec<NodeState>,
    /// Cached pre-update extensions for `prev` nodes (`None` for node
    /// kinds whose extension is answered lazily from their state).
    extensions: Vec<Option<Bindings>>,
    pub(crate) last_time: Option<TimePoint>,
}

impl NodeEngine {
    pub(crate) fn new(compiled: CompiledConstraint, options: EncodingOptions) -> NodeEngine {
        let states: Vec<NodeState> = compiled
            .nodes
            .iter()
            .map(|node| {
                let vars = sorted_free_vars(node);
                match node {
                    Formula::Prev(i, _) => NodeState::Prev(PrevState::new(*i, vars)),
                    Formula::Once(i, _) | Formula::Since(i, _, _) => {
                        // The general deque cannot prune with b = ∞, so the
                        // one-timestamp specialisations are mandatory there
                        // (and exact); the ablation only affects finite b.
                        let policy = if options.disable_stamp_specialization && i.is_bounded() {
                            StampPolicy::Many
                        } else {
                            StampPolicy::for_interval(i)
                        };
                        let w = WindowState::new(*i, vars, policy);
                        if matches!(node, Formula::Once(..)) {
                            NodeState::Once(w)
                        } else {
                            NodeState::Since(w)
                        }
                    }
                    Formula::Hist(i, _) => {
                        if i.is_bounded() {
                            NodeState::HistFinite(HistFiniteState::new(*i, vars))
                        } else {
                            NodeState::HistInf(HistInfState::new(*i, vars))
                        }
                    }
                    other => unreachable!("non-temporal node collected: {other}"),
                }
            })
            .collect();
        let extensions = vec![None; compiled.nodes.len()];
        NodeEngine {
            compiled,
            states,
            extensions,
            last_time: None,
        }
    }

    /// Advances every node to the new state `(db, t_now)`, children-first,
    /// then records `t_now`.
    pub(crate) fn advance(&mut self, db: &Database, t_now: TimePoint) {
        for idx in 0..self.compiled.nodes.len() {
            // Inner nodes (indices < idx) are already advanced; the oracle
            // exposes exactly their new extensions.
            let node = self.compiled.nodes[idx].clone();
            match &node {
                Formula::Prev(_, g) => {
                    let sat_now = {
                        let oracle = self.oracle(t_now);
                        eval(g, db, &oracle, &Bindings::unit())
                    };
                    let NodeState::Prev(p) = &mut self.states[idx] else {
                        unreachable!("node/state kind mismatch")
                    };
                    self.extensions[idx] = Some(p.step(sat_now, t_now));
                }
                Formula::Once(_, g) => {
                    let sat_now = {
                        let oracle = self.oracle(t_now);
                        eval(g, db, &oracle, &Bindings::unit())
                    };
                    let NodeState::Once(w) = &mut self.states[idx] else {
                        unreachable!("node/state kind mismatch")
                    };
                    w.add_and_prune(&sat_now, t_now);
                    // Extension answered lazily by the oracle.
                }
                Formula::Since(_, f, g) => {
                    let (survivors, anchors, vars) = {
                        let NodeState::Since(w) = &self.states[idx] else {
                            unreachable!("node/state kind mismatch")
                        };
                        let keys = w.keys();
                        let vars = w.vars().to_vec();
                        let oracle = self.oracle(t_now);
                        // `f` filters the existing anchors' keys…
                        let survivors = eval(f, db, &oracle, &keys).project(&vars);
                        // …while `g` creates fresh anchors.
                        let anchors = eval(g, db, &oracle, &Bindings::unit());
                        (survivors, anchors, vars)
                    };
                    debug_assert_eq!(anchors.vars(), vars.as_slice());
                    let NodeState::Since(w) = &mut self.states[idx] else {
                        unreachable!("node/state kind mismatch")
                    };
                    w.retain_keys(&survivors);
                    w.add_and_prune(&anchors, t_now);
                }
                Formula::Hist(_, g) => {
                    let sat_now = {
                        let oracle = self.oracle(t_now);
                        eval(g, db, &oracle, &Bindings::unit())
                    };
                    match &mut self.states[idx] {
                        NodeState::HistFinite(h) => h.step(&sat_now, t_now, self.last_time),
                        NodeState::HistInf(h) => h.step(&sat_now, t_now),
                        _ => unreachable!("node/state kind mismatch"),
                    }
                    // `hist` is a filter; it has no generator extension.
                }
                other => unreachable!("non-temporal node: {other}"),
            }
        }
        self.last_time = Some(t_now);
    }

    /// Evaluates the denial body at `(db, t_now)` (after [`NodeEngine::advance`]).
    pub(crate) fn violations(&self, db: &Database, t_now: TimePoint) -> Bindings {
        let oracle = self.oracle(t_now);
        eval(&self.compiled.body, db, &oracle, &Bindings::unit())
    }

    fn oracle(&self, t_now: TimePoint) -> IncOracle<'_> {
        IncOracle {
            node_ids: &self.compiled.node_ids,
            states: &self.states,
            extensions: &self.extensions,
            t_now,
        }
    }

    /// Total auxiliary `(keys, timestamps)` across nodes.
    pub(crate) fn aux_space(&self) -> (usize, usize) {
        let mut keys = 0;
        let mut stamps = 0;
        for s in &self.states {
            let (k, t) = match s {
                NodeState::Prev(p) => p.space(),
                NodeState::Once(w) | NodeState::Since(w) => w.space(),
                NodeState::HistFinite(h) => h.space(),
                NodeState::HistInf(h) => h.space(),
            };
            keys += k;
            stamps += t;
        }
        (keys, stamps)
    }
}

/// Online checker with bounded history encoding.
#[derive(Clone, Debug)]
pub struct IncrementalChecker {
    db: Database,
    engine: NodeEngine,
    steps: usize,
}

impl IncrementalChecker {
    /// Compiles and initializes a checker for `constraint`.
    pub fn new(
        constraint: Constraint,
        catalog: Arc<Catalog>,
    ) -> Result<IncrementalChecker, CompileError> {
        Self::with_options(constraint, catalog, EncodingOptions::default())
    }

    /// [`IncrementalChecker::new`] with explicit [`EncodingOptions`].
    pub fn with_options(
        constraint: Constraint,
        catalog: Arc<Catalog>,
        options: EncodingOptions,
    ) -> Result<IncrementalChecker, CompileError> {
        let compiled = CompiledConstraint::compile(constraint, Arc::clone(&catalog))?;
        Ok(Self::from_compiled(compiled, options))
    }

    /// Builds a checker from an already-compiled constraint.
    pub fn from_compiled(
        compiled: CompiledConstraint,
        options: EncodingOptions,
    ) -> IncrementalChecker {
        let db = Database::new(Arc::clone(&compiled.catalog));
        IncrementalChecker {
            db,
            engine: NodeEngine::new(compiled, options),
            steps: 0,
        }
    }

    /// The compiled form (for inspection and for building siblings).
    pub fn compiled(&self) -> &CompiledConstraint {
        &self.engine.compiled
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of transitions processed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    pub(crate) fn engine(&self) -> &NodeEngine {
        &self.engine
    }

    /// Per-temporal-node observability: what each auxiliary structure is
    /// holding right now. Ordered children-first (the update order).
    pub fn node_stats(&self) -> Vec<NodeStat> {
        self.engine
            .compiled
            .nodes
            .iter()
            .zip(&self.engine.states)
            .map(|(node, state)| {
                let (keys, timestamps) = match state {
                    NodeState::Prev(p) => p.space(),
                    NodeState::Once(w) | NodeState::Since(w) => w.space(),
                    NodeState::HistFinite(h) => h.space(),
                    NodeState::HistInf(h) => h.space(),
                };
                NodeStat {
                    formula: node.to_string(),
                    keys,
                    timestamps,
                }
            })
            .collect()
    }

    pub(crate) fn parts_mut(&mut self) -> (&mut Database, &mut NodeEngine, &mut usize) {
        (&mut self.db, &mut self.engine, &mut self.steps)
    }
}

impl Checker for IncrementalChecker {
    fn constraint(&self) -> &Constraint {
        &self.engine.compiled.constraint
    }

    fn step(&mut self, time: TimePoint, update: &Update) -> Result<StepReport, HistoryError> {
        if let Some(last) = self.engine.last_time {
            if time <= last {
                return Err(HistoryError::NonMonotonicTime { last, new: time });
            }
        }
        self.db.apply(update)?;
        self.engine.advance(&self.db, time);
        let violations = self.engine.violations(&self.db, time);
        self.steps += 1;
        Ok(StepReport {
            constraint: self.engine.compiled.constraint.name,
            time,
            violations,
        })
    }

    fn space(&self) -> SpaceStats {
        let (aux_keys, aux_timestamps) = self.engine.aux_space();
        SpaceStats {
            aux_keys,
            aux_timestamps,
            stored_states: 1,
            stored_tuples: self.db.total_tuples(),
        }
    }

    fn name(&self) -> &'static str {
        "incremental"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Oracle over the already-advanced node states.
struct IncOracle<'a> {
    node_ids: &'a HashMap<Formula, usize>,
    states: &'a [NodeState],
    extensions: &'a [Option<Bindings>],
    t_now: TimePoint,
}

impl IncOracle<'_> {
    fn idx(&self, node: &Formula) -> usize {
        *self
            .node_ids
            .get(node)
            .unwrap_or_else(|| panic!("unknown temporal node `{node}`"))
    }
}

impl Oracle for IncOracle<'_> {
    fn extension(&self, node: &Formula) -> Bindings {
        let idx = self.idx(node);
        match &self.states[idx] {
            NodeState::Prev(_) => self.extensions[idx]
                .clone()
                .expect("prev extension cached during advance"),
            NodeState::Once(w) | NodeState::Since(w) => w.extension(self.t_now),
            _ => unreachable!("extension query against a hist node"),
        }
    }

    fn contains(&self, node: &Formula, key: &Tuple) -> bool {
        let idx = self.idx(node);
        match &self.states[idx] {
            NodeState::Prev(_) => self.extensions[idx]
                .as_ref()
                .expect("prev extension cached during advance")
                .contains(key),
            NodeState::Once(w) | NodeState::Since(w) => w.satisfied(key, self.t_now),
            _ => unreachable!("containment query against a hist node"),
        }
    }

    fn hist_holds(&self, node: &Formula, key: &Tuple) -> bool {
        let idx = self.idx(node);
        match &self.states[idx] {
            NodeState::HistFinite(h) => h.holds(key, self.t_now),
            NodeState::HistInf(h) => h.holds(key),
            _ => unreachable!("hist query against non-hist node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtic_relation::{tuple, Schema, Sort};
    use rtic_temporal::parser::parse_constraint;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            Catalog::new()
                .with("reserved", Schema::of(&[("p", Sort::Str)]))
                .unwrap()
                .with("confirmed", Schema::of(&[("p", Sort::Str)]))
                .unwrap(),
        )
    }

    fn checker(src: &str) -> IncrementalChecker {
        IncrementalChecker::new(parse_constraint(src).unwrap(), catalog()).unwrap()
    }

    #[test]
    fn nontemporal_denial() {
        let mut c = checker("deny both: reserved(p) && confirmed(p)");
        let r = c
            .step(
                TimePoint(1),
                &Update::new().with_insert("reserved", tuple!["ann"]),
            )
            .unwrap();
        assert!(r.ok());
        let r = c
            .step(
                TimePoint(2),
                &Update::new().with_insert("confirmed", tuple!["ann"]),
            )
            .unwrap();
        assert_eq!(r.violation_count(), 1);
    }

    #[test]
    fn unconfirmed_reservation_detected_at_deadline() {
        // Violated when a reservation is ≥ 2 old and never confirmed.
        let mut c =
            checker("deny unconfirmed: once[2,*] reserved(p) && reserved(p) && !once confirmed(p)");
        assert!(c
            .step(
                TimePoint(0),
                &Update::new().with_insert("reserved", tuple!["ann"])
            )
            .unwrap()
            .ok());
        assert!(c.step(TimePoint(1), &Update::new()).unwrap().ok());
        let r = c.step(TimePoint(2), &Update::new()).unwrap();
        assert_eq!(r.violation_count(), 1, "deadline passed unconfirmed");
    }

    #[test]
    fn confirmation_prevents_violation() {
        let mut c =
            checker("deny unconfirmed: once[2,*] reserved(p) && reserved(p) && !once confirmed(p)");
        c.step(
            TimePoint(0),
            &Update::new().with_insert("reserved", tuple!["ann"]),
        )
        .unwrap();
        c.step(
            TimePoint(1),
            &Update::new().with_insert("confirmed", tuple!["ann"]),
        )
        .unwrap();
        assert!(c.step(TimePoint(2), &Update::new()).unwrap().ok());
        assert!(c.step(TimePoint(50), &Update::new()).unwrap().ok());
    }

    #[test]
    fn monotonic_time_enforced() {
        let mut c = checker("deny d: reserved(p) && confirmed(p)");
        c.step(TimePoint(5), &Update::new()).unwrap();
        assert!(matches!(
            c.step(TimePoint(5), &Update::new()),
            Err(HistoryError::NonMonotonicTime { .. })
        ));
    }

    #[test]
    fn space_does_not_grow_with_history() {
        let mut c = checker("deny d: reserved(p) && once[0,3] confirmed(p)");
        let mut max_units = 0;
        for t in 0..200u64 {
            let upd = if t % 4 == 0 {
                Update::new()
                    .with_insert("confirmed", tuple!["x"])
                    .with_delete("confirmed", tuple!["x"])
            } else {
                Update::new()
            };
            c.step(TimePoint(t), &upd).unwrap();
            max_units = max_units.max(c.space().retained_units());
        }
        assert!(max_units <= 8, "aux space stayed bounded (got {max_units})");
    }

    #[test]
    fn ablation_option_keeps_semantics() {
        let src = "deny d: reserved(p) && once[0,5] confirmed(p)";
        let mut spec = checker(src);
        let mut plain = IncrementalChecker::with_options(
            parse_constraint(src).unwrap(),
            catalog(),
            EncodingOptions {
                disable_stamp_specialization: true,
            },
        )
        .unwrap();
        for t in 0..40u64 {
            let upd = if t % 7 == 0 {
                Update::new()
                    .with_insert("confirmed", tuple!["k"])
                    .with_insert("reserved", tuple!["k"])
            } else if t % 5 == 0 {
                Update::new().with_delete("confirmed", tuple!["k"])
            } else {
                Update::new()
            };
            let a = spec.step(TimePoint(t), &upd).unwrap();
            let b = plain.step(TimePoint(t), &upd).unwrap();
            assert_eq!(a, b, "ablation changed semantics at t={t}");
        }
    }

    #[test]
    fn failed_step_leaves_checker_usable() {
        let mut c = checker("deny d: reserved(p) && once[0,3] confirmed(p)");
        c.step(
            TimePoint(1),
            &Update::new().with_insert("confirmed", tuple!["a"]),
        )
        .unwrap();
        // A bad update fails atomically: no state change, no time advance.
        assert!(c
            .step(
                TimePoint(2),
                &Update::new().with_insert("nosuchrel", tuple!["a"])
            )
            .is_err());
        assert!(
            c.step(TimePoint(0), &Update::new()).is_err(),
            "non-monotonic after failure still rejected vs t=1"
        );
        // And a good step at t=2 still works, with consistent aux state.
        let r = c
            .step(
                TimePoint(2),
                &Update::new().with_insert("reserved", tuple!["a"]),
            )
            .unwrap();
        assert_eq!(
            r.violation_count(),
            1,
            "confirmation at t=1 is age 1, in window"
        );
    }

    #[test]
    fn node_stats_reflect_aux_content() {
        let mut c = checker("deny d: reserved(p) && once[0,4] confirmed(p)");
        assert_eq!(c.node_stats().len(), 1);
        assert_eq!(c.node_stats()[0].keys, 0);
        c.step(
            TimePoint(1),
            &Update::new().with_insert("confirmed", tuple!["a"]),
        )
        .unwrap();
        let stats = c.node_stats();
        assert_eq!(stats[0].keys, 1);
        assert_eq!(stats[0].timestamps, 1);
        assert!(stats[0].formula.contains("once[0,4]"));
    }

    #[test]
    fn steps_counter_advances() {
        let mut c = checker("deny d: reserved(p) && confirmed(p)");
        assert_eq!(c.steps(), 0);
        c.step(TimePoint(1), &Update::new()).unwrap();
        c.step(TimePoint(2), &Update::new()).unwrap();
        assert_eq!(c.steps(), 2);
    }
}
